//! Vendored offline stand-in for `proptest`.
//!
//! Supports the property-test surface this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), integer-range and `any::<T>()` strategies, tuples of
//! strategies, `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` macros. Inputs are drawn from a generator seeded by the
//! test's name, so failures reproduce run-to-run. There is no shrinking:
//! a failing case panics with the usual assertion message.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration and RNG plumbing, mirroring `proptest::test_runner`.
pub mod test_runner {
    use super::{RngCore, SeedableRng, SmallRng};

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic test RNG, seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Rng;

    /// Something that can produce random values.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_uint {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use super::RngCore;
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use super::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );
}

/// Builds the [`strategy::Any`] strategy for `T`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::seq::SliceRandom;

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.as_slice().choose(rng).expect("non-empty").clone()
        }
    }
}

/// The `prop::` paths the prelude exposes.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Boolean property assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that draws `cases` random inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let run = || { $body };
                    if let Err(e) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest {}: failure on case {case}/{}",
                            stringify!($name),
                            config.cases,
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0u8..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((any::<u8>(), 1u16..5), 2..6),
            pick in prop::sample::select(vec![10usize, 20, 30]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (_, small) in &v {
                prop_assert!((1..5).contains(small));
            }
            prop_assert!(pick % 10 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert_ne!(x, 1000);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let xs: Vec<u64> = (0..32).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..32).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
