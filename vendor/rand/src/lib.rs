//! Vendored offline stand-in for `rand`.
//!
//! Provides the slice of the rand 0.8 API this workspace uses —
//! `SmallRng`/`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}` and `SliceRandom::{shuffle, choose}` — backed by
//! xoshiro256**. Streams are deterministic in the seed (the repository's
//! reproducibility tests depend on that) but are not the same streams real
//! rand would produce.

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits uniformly onto `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is < 2⁻⁶⁴·span
/// which is irrelevant for simulation workloads).
fn bounded(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce it
        // from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (xoshiro256** here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator (also xoshiro256**, domain-separated from
    /// [`SmallRng`] so the two never produce identical streams).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0x5D87_C0DE_5EED_0001))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// One uniformly chosen element (`None` when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..17);
            assert!((10..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let z = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle staying sorted is ~impossible"
        );
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
