//! Vendored offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] tree as JSON
//! text. Floats are emitted in Rust's shortest round-trip form, so
//! `from_str(&to_string(v))` reproduces `v` bit-exactly for finite floats —
//! the property the campaign result cache relies on.

pub use serde::value::{Error, Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Converts any [`Serialize`] type into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors real serde_json.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a [`Deserialize`] type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors real serde_json.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    T::from_value(&v)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_at(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| Error::custom("invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("invalid number bytes"))?;
    if text.is_empty() {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    let is_float = text.contains(['.', 'e', 'E']);
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::from_u64(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::from_i64(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::from_f64(f)))
        .map_err(|_| Error::custom(format!("malformed number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-3", "18446744073709551615"] {
            let v = parse_value(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2.5] {
            let v = Value::Number(Number::from_f64(f));
            let back = parse_value(&v.to_string()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2.5,"x\n"],"b":{"c":null}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "1 2", "{\"a\"}"] {
            assert!(parse_value(bad).is_err(), "{bad}");
        }
    }
}
