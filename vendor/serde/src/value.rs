//! The JSON-like value tree shared by the vendored `serde`/`serde_json`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An insertion-ordered map.
    Object(Map),
}

impl Value {
    /// The object behind this value, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Member lookup for objects; `None` for everything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(Repr);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repr {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// A number holding `n`.
    pub fn from_u64(n: u64) -> Self {
        Number(Repr::U(n))
    }

    /// A number holding `n`.
    pub fn from_i64(n: i64) -> Self {
        Number(Repr::I(n))
    }

    /// A number holding `n`.
    pub fn from_f64(n: f64) -> Self {
        Number(Repr::F(n))
    }

    /// This number as `f64` (integers cast losslessly up to 2^53);
    /// `None` for non-finite floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Repr::U(n) => Some(n as f64),
            Repr::I(n) => Some(n as f64),
            Repr::F(n) => n.is_finite().then_some(n),
        }
    }

    /// This number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::U(n) => Some(n),
            Repr::I(n) => u64::try_from(n).ok(),
            Repr::F(_) => None,
        }
    }

    /// This number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::U(n) => i64::try_from(n).ok(),
            Repr::I(n) => Some(n),
            Repr::F(_) => None,
        }
    }

    /// Whether this number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, Repr::F(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::U(n) => write!(f, "{n}"),
            Repr::I(n) => write!(f, "{n}"),
            // `{:?}` is Rust's shortest round-trip form, so parsing the
            // emitted text recovers the exact bit pattern.
            Repr::F(n) => write!(f, "{n:?}"),
        }
    }
}

/// An insertion-ordered string-keyed map (declaration order of derived
/// struct fields is preserved, which keeps CSV headers and fingerprints
/// stable).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `key` (replacing any existing entry, preserving its slot).
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Wraps this error with a location breadcrumb.
    #[must_use]
    pub fn context(self, at: &str) -> Self {
        Error(format!("{at}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}
