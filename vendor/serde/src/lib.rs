//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace ships a minimal serialization framework under the same
//! crate name. It supports exactly what this repository needs: `derive`d
//! `Serialize`/`Deserialize` on braced structs and enums (unit, tuple and
//! struct variants), converting to and from an in-memory JSON-like
//! [`Value`] tree. The companion `serde_json` stand-in renders and parses
//! the textual form.
//!
//! The API is intentionally much smaller than real serde: `Serialize`
//! produces a [`Value`] directly (no `Serializer` visitors), and
//! `Deserialize` reads back from a `&Value`. Nothing in this repository
//! relies on serde's streaming model, so the simple tree form keeps the
//! vendored code small and auditable.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Map, Number, Value};

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty => $as:ident),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons, clippy::cast_lossless)]
                if *self >= 0 {
                    Value::Number(Number::from_u64(*self as u64))
                } else {
                    Value::Number(Number::from_i64(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .$as()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )+};
}

impl_int!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64);
impl_int!(i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| Error::custom("non-finite number")),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// Deserializing into `&'static str` leaks the parsed string. The only
/// such fields in this workspace are benchmark names, a small closed set
/// that lives for the program's lifetime anyway.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) if items.len() == N => items,
            _ => return Err(Error::custom("expected array of fixed length")),
        };
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    _ => return Err(Error::custom("expected array for tuple")),
                };
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
