//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's tree model (`Serialize::to_value` /
//! `Deserialize::from_value`) without `syn`/`quote`: the input item is
//! parsed by walking `proc_macro` token trees directly. Supported shapes —
//! everything this workspace derives on:
//!
//! * braced structs with named fields;
//! * enums with unit, tuple and struct variants (no generics, no
//!   `#[serde(...)]` attributes).
//!
//! Serialized forms match `serde_json`'s defaults: structs become objects
//! in field order, unit variants become strings, data variants become
//! single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Braced struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: (variant name, shape).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant with named fields.
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic items ({name})");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("missing braced body for {name}"),
        }
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) starting at `*i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past one type expression: everything up to the next `,` at
/// zero angle-bracket depth.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip a possible discriminant (`= expr`) up to the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1; // ','
        variants.push((name, shape));
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    count
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(String::from(\"{v}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pat = binders.join(", ");
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({pat}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(String::from(\"{v}\"), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from("let mut __f = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.insert(String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n{inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(String::from(\"{v}\"), ::serde::Value::Object(__f));\n\
                             ::serde::Value::Object(__m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     __m.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| e.context(\"{name}.{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    VariantShape::Tuple(n) => {
                        let mut fields = String::new();
                        for k in 0..*n {
                            fields.push_str(&format!(
                                "::serde::Deserialize::from_value(__items.get({k})\
                                 .unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| e.context(\"{name}::{v}.{k}\"))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                             Ok({name}::{v}({fields}))\n}}\n"
                        ));
                    }
                    VariantShape::Named(names) => {
                        let mut fields = String::new();
                        for f in names {
                            fields.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __f.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| e.context(\"{name}::{v}.{f}\"))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __f = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{ {fields} }})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = __m.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n}}\n}}\n\
                 _ => Err(::serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
