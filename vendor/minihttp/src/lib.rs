//! Minimal HTTP/1.1 server and client over std TCP.
//!
//! Vendored offline stand-in (the build environment has no registry
//! access): implements exactly the surface the campaign server and its
//! remote-store client need, nothing more.
//!
//! * **Framing**: request and response bodies are `Content-Length` only —
//!   no chunked transfer, no trailers. Requests without a length header
//!   have an empty body.
//! * **Connections**: keep-alive by default (HTTP/1.1 semantics); either
//!   side may send `Connection: close`. The server runs one thread per
//!   connection; the client holds one reusable connection and
//!   transparently reconnects once when a kept-alive socket has gone
//!   stale.
//! * **Limits**: request lines, headers and bodies are size-capped so a
//!   misbehaving peer cannot balloon memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Longest accepted request/status line or single header line, in bytes.
const MAX_LINE: usize = 16 * 1024;
/// Most headers accepted per message.
const MAX_HEADERS: usize = 128;
/// Largest accepted body, request or response (shard files stay far
/// below this; a longer body is a protocol error, not a use case).
const MAX_BODY: usize = 256 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response, built by handlers and returned by the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `304`, `404`, ...).
    pub status: u16,
    /// Headers with lower-cased names. `content-length` and `connection`
    /// are managed by the transport; setting them here is ignored.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A response carrying `body` with the given content type.
    pub fn with_body(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status)
            .header("content-type", content_type)
            .body(body)
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::with_body(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::with_body(status, "application/json", body.into().into_bytes())
    }

    /// Adds one header (name stored lower-cased).
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Replaces the body.
    #[must_use]
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Self {
        self.body = body.into();
        self
    }

    /// The first header named `name` (case-insensitive), if any.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text_body(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            204 => "No Content",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Status",
        }
    }
}

fn read_line_limited(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between messages
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
            }
        }
    }
}

fn read_headers(reader: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed in headers")
        })?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed header line `{line}`"),
                ))
            }
        }
    }
}

fn content_length(headers: &[(String, String)]) -> io::Result<usize> {
    let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") else {
        return Ok(0);
    };
    let len: usize = v
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
    if len > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    Ok(len)
}

fn read_body(reader: &mut impl BufRead, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn wants_close(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"))
}

/// Parses one request off `reader`. `Ok(None)` is a clean end-of-stream
/// (the peer closed a kept-alive connection between requests).
fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line_limited(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed request line `{line}`"),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol `{version}`"),
        ));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let headers = read_headers(reader)?;
    let body = read_body(reader, content_length(&headers)?)?;
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query,
        headers,
        body,
    }))
}

fn write_response(stream: &mut impl Write, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason());
    for (k, v) in &resp.headers {
        if k == "content-length" || k == "connection" {
            continue;
        }
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", resp.body.len()));
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    // One write for head + body: two separate segments would interact
    // with Nagle + delayed ACK into ~40 ms stalls per response.
    let mut message = head.into_bytes();
    message.extend_from_slice(&resp.body);
    stream.write_all(&message)?;
    stream.flush()
}

/// Parses one response off `reader`.
fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let line = read_line_limited(reader)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status",
        )
    })?;
    let mut parts = line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed status line `{line}`"),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol `{version}`"),
        ));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad status code"))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, content_length(&headers)?)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// A bound, not-yet-serving HTTP server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

/// Stops a [`Server`]'s accept loop from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Signals the accept loop to exit. In-flight connections finish
    /// their current request; idle keep-alive connections die with the
    /// process.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`Server::serve`] from another thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (the handle needs the bound address).
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            stop: Arc::clone(&self.stop),
        })
    }

    /// Serves connections until [`ServerHandle::shutdown`], running one
    /// thread per connection and `handler` for every request. Handler
    /// panics are isolated to their connection (the peer sees a closed
    /// socket, the server keeps accepting).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop errors.
    pub fn serve<H>(self, handler: H) -> io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let stream = match conn {
                Ok(s) => s,
                // Per-connection accept hiccups (peer reset mid-handshake)
                // must not kill the server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            // Responses are single coalesced writes; disable Nagle so
            // small ones are not held back for a delayed ACK.
            let _ = stream.set_nodelay(true);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &*handler);
            });
        }
        Ok(())
    }
}

fn serve_connection<H>(stream: TcpStream, handler: &H) -> io::Result<()>
where
    H: Fn(&Request) -> Response,
{
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // peer closed between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let resp = Response::text(400, format!("bad request: {e}"));
                let _ = write_response(&mut writer, &resp, true);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let close = wants_close(&request.headers);
        let response = handler(&request);
        write_response(&mut writer, &response, close)?;
        if close {
            return Ok(());
        }
    }
}

/// A keep-alive HTTP client bound to one `host:port`.
///
/// Not internally synchronized: wrap in a `Mutex` (or use one per thread)
/// for concurrent use. A request on a connection the server has since
/// closed is retried once on a fresh connection.
#[derive(Debug)]
pub struct Client {
    addr: String,
    conn: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`); connects lazily.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            conn: None,
        }
    }

    /// The address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn send_once(
        conn: &mut TcpStream,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: local\r\n");
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        // One write for head + body (see `write_response` on Nagle).
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        conn.write_all(&message)?;
        conn.flush()?;
        let mut reader = BufReader::new(conn.try_clone()?);
        read_response(&mut reader)
    }

    /// Performs one request, reusing the kept-alive connection when
    /// possible. `target` is the path plus optional query string.
    ///
    /// # Errors
    ///
    /// Connect/transport errors; HTTP error statuses are returned as
    /// responses, not errors.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let reused = self.conn.is_some();
        if self.conn.is_none() {
            let conn = TcpStream::connect(&self.addr)?;
            let _ = conn.set_nodelay(true);
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connected above");
        match Self::send_once(conn, method, target, headers, body) {
            Ok(resp) => {
                if resp
                    .header_value("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) if reused => {
                // The kept-alive socket went stale (server restarted or
                // timed the connection out): retry once on a fresh one.
                let _ = e;
                self.conn = None;
                let mut fresh = TcpStream::connect(&self.addr)?;
                let _ = fresh.set_nodelay(true);
                let resp = Self::send_once(&mut fresh, method, target, headers, body)?;
                if !resp
                    .header_value("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = Some(fresh);
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_echo() -> (String, ServerHandle) {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle().unwrap();
        std::thread::spawn(move || {
            server
                .serve(|req| {
                    let mut resp = Response::with_body(200, "text/plain", req.body.clone())
                        .header("x-method", &req.method)
                        .header("x-path", &req.path);
                    if let Some(v) = req.query_param("q") {
                        resp = resp.header("x-q", v);
                    }
                    resp
                })
                .unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn request_response_roundtrip_and_keepalive() {
        let (addr, handle) = spawn_echo();
        let mut client = Client::new(addr);
        for i in 0..3 {
            let body = format!("ping-{i}");
            let resp = client
                .request("POST", "/echo?q=v1", &[("x-try", "1")], body.as_bytes())
                .unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text_body(), body);
            assert_eq!(resp.header_value("x-method"), Some("POST"));
            assert_eq!(resp.header_value("x-path"), Some("/echo"));
            assert_eq!(resp.header_value("x-q"), Some("v1"));
        }
        handle.shutdown();
    }

    #[test]
    fn empty_get_and_binary_body() {
        let (addr, handle) = spawn_echo();
        let mut client = Client::new(addr);
        let resp = client.request("GET", "/x", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.is_empty());
        let blob: Vec<u8> = (0..=255u8).collect();
        let resp = client.request("POST", "/bin", &[], &blob).unwrap();
        assert_eq!(resp.body, blob);
        handle.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let (addr, handle) = spawn_echo();
        let mut client = Client::new(addr.clone());
        assert_eq!(client.request("GET", "/", &[], &[]).unwrap().status, 200);
        handle.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // A fresh connection now fails to complete a request: either the
        // connect is refused or the accepted-then-dropped socket EOFs.
        let err = Client::new(addr).request("GET", "/", &[], &[]);
        assert!(err.is_err(), "server must stop serving after shutdown");
    }
}
