//! Vendored offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the bench targets use:
//! `Criterion::{benchmark_group, bench_function}`, groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! `Bencher::iter`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! reports min/mean/max wall-clock time per sample on stdout — enough to
//! track relative performance (e.g. cold vs. warm campaign cache) in CI
//! logs without any dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        run_benchmark(name, samples, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility;
    /// this stand-in is sample-count driven.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.samples, self.throughput, f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Declared per-iteration work, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    times: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (called once per requested sample
    /// by the harness).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.times.push(start.elapsed());
    }
}

fn run_benchmark<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    // Criterion's closures call `iter` once; we invoke the closure once per
    // sample so `iter` accumulates `samples` timings.
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.times.is_empty() {
        println!("bench {label:<40} (no measurements)");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = bencher.times.iter().min().expect("non-empty");
    let max = bencher.times.iter().max().expect("non-empty");
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
        })
        .unwrap_or_default();
    println!("bench {label:<40} mean {mean:>12?} min {min:>12?} max {max:>12?}{rate}");
}

/// Declares a group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
