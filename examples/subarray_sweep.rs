//! Subarray sensitivity (the paper's Table 5): SARP's benefit as the number
//! of subarrays per bank grows from 1 (no parallelism possible) to 64.
//!
//! ```text
//! cargo run --release -p dsarp-sim --example subarray_sweep
//! ```

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

fn main() {
    let workload = &mixes::intensive_mixes(8, 21)[3];
    let cycles = 120_000;
    println!(
        "SARPpb vs REFpb at 32 Gb on {} as subarrays/bank vary:\n",
        workload.name
    );
    println!(
        "  {:>10} {:>12} {:>12} {:>14}",
        "subarrays", "REFpb IPC", "SARPpb IPC", "improvement"
    );
    for subarrays in [1usize, 2, 4, 8, 16, 32, 64] {
        let ipc = |mech| {
            let cfg = SimConfig::paper(mech, Density::G32).with_subarrays(subarrays);
            SystemBuilder::new(&cfg)
                .workload(workload)
                .build()
                .run(cycles)
                .total_ipc()
        };
        let base = ipc(Mechanism::RefPb);
        let sarp = ipc(Mechanism::SarpPb);
        println!(
            "  {subarrays:>10} {base:>12.3} {sarp:>12.3} {:>+13.1}%",
            (sarp / base - 1.0) * 100.0
        );
    }
    println!(
        "\nWith one subarray SARP cannot overlap anything inside a bank; the benefit\n\
         saturates once the chance of touching the refreshing subarray is small\n\
         (paper Table 5: 0% -> 16.9%)."
    );
}
