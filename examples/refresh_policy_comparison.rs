//! Command-timeline comparison of the refresh mechanisms — a textual
//! rendering of the paper's Figures 4, 9 and 10.
//!
//! Runs a short, bursty scenario under each mechanism with the DRAM command
//! log enabled, prints the first stretch of channel-0 commands, and shows
//! how refreshes interleave with (or block) demand accesses.
//!
//! ```text
//! cargo run --release -p dsarp-sim --example refresh_policy_comparison
//! ```

use dsarp_core::Mechanism;
use dsarp_dram::{Command, Density};
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

fn render(log: &[(u64, Command)], from: u64, to: u64) -> String {
    let mut out = String::new();
    for (t, cmd) in log.iter().filter(|(t, _)| (from..to).contains(t)) {
        let tag = match cmd {
            Command::RefreshAllBank { .. } | Command::RefreshPerBank { .. } => "**",
            _ => "  ",
        };
        out.push_str(&format!("  {tag} {t:>7}  {cmd}\n"));
    }
    out
}

fn main() {
    let workload = &mixes::intensive_mixes(8, 5)[2];
    // Window around the first all-bank refresh interval.
    let (from, to) = (2_500u64, 3_000u64);

    for mech in [
        Mechanism::RefAb,
        Mechanism::RefPb,
        Mechanism::Darp,
        Mechanism::Dsarp,
    ] {
        let cfg = SimConfig::paper(mech, Density::G32);
        let mut sys = SystemBuilder::new(&cfg).workload(workload).build();
        sys.enable_command_log();
        let stats = sys.run(6_000);
        let log = sys.take_command_log(0);
        let refreshes: Vec<&(u64, Command)> = log.iter().filter(|(_, c)| c.is_refresh()).collect();
        println!("=== {} ===", mech.label());
        println!(
            "  {} commands on channel 0, {} of them refreshes; system IPC {:.2}",
            log.len(),
            refreshes.len(),
            stats.total_ipc()
        );
        println!("  command timeline around the first tREFIab ({from}..{to}):");
        print!("{}", render(&log, from, to));
        match mech {
            Mechanism::RefAb => println!(
                "  ^ REFab needs the whole rank precharged (PREA) and locks it for tRFCab.\n"
            ),
            Mechanism::RefPb => {
                println!("  ^ REFpb rotates through banks in order; other banks keep serving.\n")
            }
            Mechanism::Darp => println!(
                "  ^ DARP steers REFpb to idle banks out of order and hides them in write drains.\n"
            ),
            Mechanism::Dsarp => println!(
                "  ^ DSARP additionally serves rows in other subarrays of a refreshing bank.\n"
            ),
            _ => unreachable!(),
        }
    }
}
