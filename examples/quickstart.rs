//! Quickstart: simulate one memory-intensive 8-core workload under the
//! all-bank refresh baseline and under DSARP, and report the headline
//! numbers.
//!
//! ```text
//! cargo run --release -p dsarp-sim --example quickstart
//! ```

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

fn main() {
    // One of the paper's randomly-mixed memory-intensive workloads.
    let workload = &mixes::intensive_mixes(8, 42)[0];
    println!(
        "workload {}: {:?}",
        workload.name,
        workload
            .benchmarks
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
    );

    let cycles = 200_000; // DRAM cycles (= 1.2M CPU cycles at 4 GHz)
    for density in [Density::G8, Density::G16, Density::G32] {
        println!("\n--- {density} DRAM chips ---");
        let mut baseline_ipc = None;
        for mech in [
            Mechanism::RefAb,
            Mechanism::RefPb,
            Mechanism::Dsarp,
            Mechanism::NoRefresh,
        ] {
            let cfg = SimConfig::paper(mech, density);
            let stats = SystemBuilder::new(&cfg)
                .workload(workload)
                .build()
                .run(cycles);
            let ipc = stats.total_ipc();
            let base = *baseline_ipc.get_or_insert(ipc);
            println!(
                "{:8}  throughput {:5.2} IPC ({:+5.1}% vs REFab) | {:6} refreshes | \
                 {:5.1} nJ/access | avg read latency {:5.1} ns",
                mech.label(),
                ipc,
                (ipc / base - 1.0) * 100.0,
                stats.refreshes(),
                stats.energy_per_access_nj(),
                stats.avg_read_latency() * 1.5,
            );
        }
    }
    println!(
        "\nDSARP recovers most of the refresh-free ideal, and the gap it closes \
         grows with density — the paper's headline result."
    );
}
