//! Density scaling: how the refresh penalty grows from today's 8 Gb chips
//! to projected 64 Gb chips, and how much of it each mechanism recovers —
//! the motivation (Figures 5–7) and headline trend in one run.
//!
//! ```text
//! cargo run --release -p dsarp-sim --example density_scaling
//! ```

use dsarp_core::Mechanism;
use dsarp_dram::timing::{trfc_projection1_ns, trfc_projection2_ns};
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

fn main() {
    println!("tRFCab scaling (Figure 5):");
    println!(
        "  {:>8} {:>12} {:>14} {:>14}",
        "density", "present", "projection 1", "projection 2"
    );
    for gb in [1u32, 2, 4, 8, 16, 32, 64] {
        let present = match gb {
            1 => "110 ns",
            2 => "160 ns",
            4 => "260 ns",
            8 => "350 ns",
            _ => "-",
        };
        println!(
            "  {gb:>6}Gb {present:>12} {:>11.0} ns {:>11.0} ns",
            trfc_projection1_ns(gb as f64),
            trfc_projection2_ns(gb as f64)
        );
    }

    let workload = &mixes::intensive_mixes(8, 11)[0];
    let cycles = 150_000;
    println!(
        "\nRefresh penalty and recovery on {} (memory-intensive):",
        workload.name
    );
    println!(
        "  {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "density", "REFab", "REFpb", "DSARP", "No REF", "DSARP gap"
    );
    for density in [Density::G8, Density::G16, Density::G32, Density::G64] {
        let ipc = |mech| {
            SystemBuilder::new(&SimConfig::paper(mech, density))
                .workload(workload)
                .build()
                .run(cycles)
                .total_ipc()
        };
        let refab = ipc(Mechanism::RefAb);
        let refpb = ipc(Mechanism::RefPb);
        let dsarp = ipc(Mechanism::Dsarp);
        let ideal = ipc(Mechanism::NoRefresh);
        println!(
            "  {density:>8} {refab:>10.3} {refpb:>10.3} {dsarp:>10.3} {ideal:>10.3} {:>11.1}%",
            (1.0 - dsarp / ideal) * 100.0
        );
    }
    println!("\nThe REFab column collapses as density grows; DSARP stays near the ideal.");
}
