//! Data-integrity invariants: no matter how aggressively a policy reorders,
//! postpones or pulls in refreshes, every bank keeps receiving them within
//! the bound the erratum establishes (≤ 8 postponed ⇒ gap ≤ 9 periods).

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

/// Per-bank refresh period: a bank's turn comes every 8 ticks of tREFIpb,
/// i.e. every tREFIab = 2600 cycles at 32 ms retention.
const PER_BANK_PERIOD: u64 = 2_600;

fn max_gap(mech: Mechanism, cycles: u64) -> u64 {
    let wl = &mixes::intensive_mixes(8, 3)[0];
    let cfg = SimConfig::paper(mech, Density::G8);
    let mut sys = SystemBuilder::new(&cfg).workload(wl).build();
    sys.enable_retention_tracking();
    sys.run(cycles).max_refresh_gap.expect("tracking enabled")
}

#[test]
fn baseline_refab_meets_schedule() {
    // REFab refreshes each bank every tREFIab; small slack for precharge
    // preparation under load.
    let gap = max_gap(Mechanism::RefAb, 40_000);
    assert!(
        gap <= 2 * PER_BANK_PERIOD,
        "REFab max bank gap {gap} cycles exceeds twice the period"
    );
}

#[test]
fn baseline_refpb_meets_schedule() {
    let gap = max_gap(Mechanism::RefPb, 40_000);
    assert!(gap <= 2 * PER_BANK_PERIOD, "REFpb max bank gap {gap}");
}

#[test]
fn darp_respects_the_erratum_bound() {
    // The erratum: at most 8 of a bank's refreshes may be postponed, so the
    // gap between consecutive refreshes of one bank is bounded by 9 periods
    // (plus scheduling slack).
    let gap = max_gap(Mechanism::Darp, 120_000);
    let bound = 9 * PER_BANK_PERIOD + 2 * PER_BANK_PERIOD;
    assert!(
        gap <= bound,
        "DARP max bank gap {gap} exceeds erratum bound {bound}"
    );
}

#[test]
fn dsarp_respects_the_erratum_bound() {
    let gap = max_gap(Mechanism::Dsarp, 120_000);
    let bound = 9 * PER_BANK_PERIOD + 2 * PER_BANK_PERIOD;
    assert!(
        gap <= bound,
        "DSARP max bank gap {gap} exceeds erratum bound {bound}"
    );
}

#[test]
fn elastic_respects_the_postponement_cap() {
    // Elastic postpones up to 8 rank-level refreshes: same 9-period bound.
    let gap = max_gap(Mechanism::Elastic, 120_000);
    let bound = 9 * PER_BANK_PERIOD + 2 * PER_BANK_PERIOD;
    assert!(
        gap <= bound,
        "Elastic max bank gap {gap} exceeds bound {bound}"
    );
}

#[test]
fn total_refresh_work_is_conserved_under_darp() {
    // Reordering must not change the long-run refresh *rate*: after T
    // cycles, total refreshes are within the schedule ± the flexibility
    // window (8 per bank, pulled in or postponed).
    let wl = &mixes::intensive_mixes(8, 3)[0];
    let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G8);
    let mut sys = SystemBuilder::new(&cfg).workload(wl).build();
    sys.enable_retention_tracking();
    let cycles = 100_000;
    let stats = sys.run(cycles);
    let scheduled_per_rank = cycles / 325; // tREFIpb ticks
    let scheduled = scheduled_per_rank * 4; // 2 channels x 2 ranks
    let window = 8 * 8 * 4; // 8 per bank x 8 banks x 4 ranks
    let got = stats.refreshes();
    assert!(
        got + window >= scheduled && got <= scheduled + window,
        "refresh work drifted: {got} vs schedule {scheduled} ± {window}"
    );
}
