//! End-to-end integration: the full stack (trace → core → LLC → controller
//! → DRAM) produces sane, internally consistent results for every mechanism.

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

fn workload() -> dsarp_workloads::Workload {
    mixes::intensive_mixes(8, 7)[1].clone()
}

#[test]
fn every_mechanism_runs_and_reports() {
    for mech in [
        Mechanism::NoRefresh,
        Mechanism::RefAb,
        Mechanism::RefPb,
        Mechanism::Elastic,
        Mechanism::Darp,
        Mechanism::DarpOooOnly,
        Mechanism::SarpAb,
        Mechanism::SarpPb,
        Mechanism::Dsarp,
        Mechanism::Fgr2x,
        Mechanism::Fgr4x,
        Mechanism::AdaptiveRefresh,
    ] {
        let cfg = SimConfig::paper(mech, Density::G16);
        // Long enough that even Elastic (which may legally postpone its
        // first refresh by up to 9 x tREFIab = 23.4K cycles) must refresh.
        let stats = SystemBuilder::new(&cfg)
            .workload(&workload())
            .build()
            .run(26_000);
        assert!(
            stats.total_ipc() > 0.05,
            "{mech}: ipc {}",
            stats.total_ipc()
        );
        assert!(
            stats.accesses() > 50,
            "{mech}: accesses {}",
            stats.accesses()
        );
        assert_eq!(stats.ipc.len(), 8);
        assert!(stats.energy.total_nj() > 0.0, "{mech}");
        if mech == Mechanism::NoRefresh {
            assert_eq!(stats.refreshes(), 0);
        } else {
            assert!(stats.refreshes() > 0, "{mech} must refresh");
        }
    }
}

#[test]
fn refresh_rates_match_the_standard() {
    // Over T cycles each rank owes T / tREFIab all-bank refreshes (or 8x
    // per-bank ones). Check the controller issues within tolerance of that.
    let cycles = 60_000u64;
    for (mech, per_rank_expected) in [
        (Mechanism::RefAb, cycles / 2_600),
        (Mechanism::RefPb, cycles / 325),
    ] {
        let cfg = SimConfig::paper(mech, Density::G8);
        let stats = SystemBuilder::new(&cfg)
            .workload(&workload())
            .build()
            .run(cycles);
        // 2 channels x 2 ranks.
        let expected = per_rank_expected * 4;
        let got = stats.refreshes();
        assert!(
            got * 8 >= expected * 7 && got <= expected + 8,
            "{mech}: {got} refreshes vs expected ~{expected}"
        );
    }
}

#[test]
fn darp_pull_ins_exceed_baseline_rate_but_bounded() {
    // DARP pulls refreshes in up to 8 per bank ahead; its total refresh
    // count can exceed the schedule by at most 8 x banks x ranks x channels.
    let cycles = 40_000u64;
    let cfg = SimConfig::paper(Mechanism::Darp, Density::G8);
    let stats = SystemBuilder::new(&cfg)
        .workload(&workload())
        .build()
        .run(cycles);
    let scheduled = (cycles / 325) * 4; // per-rank ticks x 4 ranks
    let slack = 8 * 8 * 4;
    assert!(
        stats.refreshes() <= scheduled + slack,
        "DARP issued {} refreshes vs schedule {scheduled} + slack {slack}",
        stats.refreshes()
    );
    // And it must not starve the schedule either (debts stay bounded).
    assert!(
        stats.refreshes() * 10 >= scheduled * 7,
        "DARP issued {} refreshes vs schedule {scheduled}",
        stats.refreshes()
    );
}

#[test]
fn energy_breakdown_components_are_consistent() {
    let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G32);
    let stats = SystemBuilder::new(&cfg)
        .workload(&workload())
        .build()
        .run(15_000);
    let e = &stats.energy;
    let total = e.total_nj();
    assert!(total > 0.0);
    let sum = e.act_pre_nj + e.read_nj + e.write_nj + e.refresh_nj + e.background_nj;
    assert!((sum - total).abs() < 1e-6);
    assert!(e.background_nj > 0.0, "background energy always accrues");
    assert!(
        e.refresh_nj > 0.0,
        "refreshing mechanism must spend refresh energy"
    );
    assert_eq!(e.accesses, stats.accesses());
}

#[test]
fn read_latency_is_at_least_the_unloaded_minimum() {
    let cfg = SimConfig::paper(Mechanism::NoRefresh, Density::G8);
    let stats = SystemBuilder::new(&cfg)
        .workload(&workload())
        .build()
        .run(15_000);
    let t = cfg.timing();
    // ACT + RD + data return is the floor for any miss.
    let floor = (t.rcd + t.cl + t.bl) as f64;
    assert!(
        stats.avg_read_latency() >= floor,
        "avg latency {} below physical floor {floor}",
        stats.avg_read_latency()
    );
}

#[test]
fn llc_misses_match_dram_reads() {
    let cfg = SimConfig::paper(Mechanism::RefPb, Density::G8);
    let mut sys = SystemBuilder::new(&cfg).workload(&workload()).build();
    let stats = sys.run(15_000);
    let dram_reads: u64 = stats.ctrl.iter().map(|c| c.reads_done).sum();
    let forwarded: u64 = stats.ctrl.iter().map(|c| c.forwarded_reads).sum();
    // Every LLC miss becomes a DRAM read (or a forwarded hit on the write
    // queue); some may still be in flight at the end of the run.
    assert!(
        dram_reads + forwarded <= stats.llc.misses,
        "reads {dram_reads} + forwarded {forwarded} vs misses {}",
        stats.llc.misses
    );
    assert!(
        (dram_reads + forwarded) * 10 >= stats.llc.misses * 8,
        "most misses should be serviced within the run"
    );
}

#[test]
fn command_log_is_temporally_ordered_and_legal_density() {
    let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G8);
    let mut sys = SystemBuilder::new(&cfg).workload(&workload()).build();
    sys.enable_command_log();
    let _ = sys.run(5_000);
    for ch in 0..2 {
        let log = sys.take_command_log(ch);
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[1].0 > w[0].0, "one command per channel cycle, in order");
        }
    }
}
