//! Reproducibility: identical configurations produce bit-identical results,
//! and seeds change only what they should.

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

#[test]
fn identical_configs_are_bit_identical() {
    let wl = &mixes::paper_workloads(8, 9)[55];
    for mech in [Mechanism::RefAb, Mechanism::Dsarp, Mechanism::Elastic] {
        let cfg = SimConfig::paper(mech, Density::G16);
        let a = SystemBuilder::new(&cfg).workload(wl).build().run(10_000);
        let b = SystemBuilder::new(&cfg).workload(wl).build().run(10_000);
        assert_eq!(a, b, "{mech} must be deterministic");
    }
}

#[test]
fn seed_changes_trace_but_not_structure() {
    let wl = &mixes::paper_workloads(8, 9)[80];
    let a = SystemBuilder::new(&SimConfig::paper(Mechanism::Dsarp, Density::G16).with_seed(1))
        .workload(wl)
        .build()
        .run(10_000);
    let b = SystemBuilder::new(&SimConfig::paper(Mechanism::Dsarp, Density::G16).with_seed(2))
        .workload(wl)
        .build()
        .run(10_000);
    assert_ne!(a.insts, b.insts, "different seeds explore different traces");
    // Structural facts stay put.
    assert_eq!(a.ipc.len(), b.ipc.len());
    assert_eq!(a.dram_cycles, b.dram_cycles);
}

#[test]
fn run_is_resumable_in_chunks() {
    // Running 2 x 5000 cycles must equal one 10000-cycle run.
    let wl = &mixes::paper_workloads(8, 9)[70];
    let cfg = SimConfig::paper(Mechanism::SarpPb, Density::G8);
    let mut split = SystemBuilder::new(&cfg).workload(wl).build();
    let _ = split.run(5_000);
    let split_stats = split.run(5_000);
    let whole_stats = SystemBuilder::new(&cfg).workload(wl).build().run(10_000);
    assert_eq!(split_stats, whole_stats, "chunked runs must be seamless");
}

#[test]
fn workload_construction_is_stable_across_calls() {
    let a = mixes::paper_workloads(8, 1234);
    let b = mixes::paper_workloads(8, 1234);
    assert_eq!(a, b);
    let names_a: Vec<_> = a[3].benchmarks.iter().map(|x| x.name).collect();
    let names_b: Vec<_> = b[3].benchmarks.iter().map(|x| x.name).collect();
    assert_eq!(names_a, names_b);
}
