//! The paper's headline qualitative results, asserted end-to-end at 32 Gb
//! on memory-intensive mixes: who wins, and in roughly what order.
//!
//! Absolute numbers differ from the paper (different traces, shorter runs),
//! but the *ordering* — the paper's Figure 13 at 32 Gb — must hold:
//!
//! `REFab  <  Elastic  <  REFpb  <  DARP, SARPab  <  SARPpb ≈ DSARP ≲ NoREF`

use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::{SimConfig, SystemBuilder};
use dsarp_workloads::mixes;

const CYCLES: u64 = 60_000;

/// Mean total IPC over a few intensive mixes (alone-IPC denominators cancel
/// in ordering comparisons, so total IPC is an equivalent, cheaper proxy).
fn mean_ipc(mech: Mechanism) -> f64 {
    let wls = mixes::intensive_mixes(8, 1);
    let mut total = 0.0;
    let n = 4;
    for wl in wls.iter().take(n) {
        let cfg = SimConfig::paper(mech, Density::G32);
        total += SystemBuilder::new(&cfg)
            .workload(wl)
            .build()
            .run(CYCLES)
            .total_ipc();
    }
    total / n as f64
}

#[test]
fn mechanism_ordering_at_32gb() {
    let noref = mean_ipc(Mechanism::NoRefresh);
    let refab = mean_ipc(Mechanism::RefAb);
    let refpb = mean_ipc(Mechanism::RefPb);
    let elastic = mean_ipc(Mechanism::Elastic);
    let darp = mean_ipc(Mechanism::Darp);
    let sarpab = mean_ipc(Mechanism::SarpAb);
    let sarppb = mean_ipc(Mechanism::SarpPb);
    let dsarp = mean_ipc(Mechanism::Dsarp);

    let all = [
        ("REFab", refab),
        ("REFpb", refpb),
        ("Elastic", elastic),
        ("DARP", darp),
        ("SARPab", sarpab),
        ("SARPpb", sarppb),
        ("DSARP", dsarp),
    ];
    println!("NoREF {noref:.4} | {all:?}");

    // 1. The ideal bound: nothing beats no-refresh by more than noise.
    for (name, v) in all {
        assert!(
            v <= noref * 1.01,
            "{name} ({v}) above the no-refresh bound ({noref})"
        );
    }
    // 2. REFab is the worst mechanism at 32 Gb.
    for (name, v) in &all[1..] {
        assert!(
            *v >= refab * 0.99,
            "{name} ({v}) should not lose to REFab ({refab})"
        );
    }
    // 3. Per-bank refresh clearly beats all-bank at high density (paper §3).
    assert!(refpb > refab * 1.02, "REFpb {refpb} vs REFab {refab}");
    // 4. DARP improves on REFpb (paper Table 2: +3.8% gmean at 32 Gb).
    assert!(darp > refpb * 1.005, "DARP {darp} vs REFpb {refpb}");
    // 5. SARPpb improves on REFpb by even more (paper: +13.7%).
    assert!(sarppb > refpb * 1.02, "SARPpb {sarppb} vs REFpb {refpb}");
    // 6. DSARP lands within a few percent of the ideal (paper: 3.7%).
    assert!(dsarp > noref * 0.93, "DSARP {dsarp} vs ideal {noref}");
    // 7. Elastic refresh only mildly improves on REFab (paper: ~1.8%).
    assert!(elastic > refab * 0.99 && elastic < refpb * 1.02);
}

#[test]
fn fgr_and_ar_shape_at_32gb() {
    let refab = mean_ipc(Mechanism::RefAb);
    let fgr2 = mean_ipc(Mechanism::Fgr2x);
    let fgr4 = mean_ipc(Mechanism::Fgr4x);
    let ar = mean_ipc(Mechanism::AdaptiveRefresh);
    let dsarp = mean_ipc(Mechanism::Dsarp);
    // Paper Fig. 16: FGR hurts (4x worse than 2x), AR lands near REFab,
    // DSARP beats them all.
    assert!(fgr4 < fgr2, "FGR 4x {fgr4} must trail 2x {fgr2}");
    assert!(
        fgr2 < refab * 1.01,
        "FGR 2x {fgr2} must not beat REFab {refab}"
    );
    assert!(ar > fgr4, "AR {ar} must improve on always-4x {fgr4}");
    assert!(dsarp > refab && dsarp > ar, "DSARP dominates (got {dsarp})");
}

#[test]
fn benefits_grow_with_density() {
    // Paper: DSARP's advantage over REFab grows 8 -> 32 Gb.
    let gain = |density| {
        let wl = &mixes::intensive_mixes(8, 1)[0];
        let base = SystemBuilder::new(&SimConfig::paper(Mechanism::RefAb, density))
            .workload(wl)
            .build()
            .run(CYCLES)
            .total_ipc();
        let dsarp = SystemBuilder::new(&SimConfig::paper(Mechanism::Dsarp, density))
            .workload(wl)
            .build()
            .run(CYCLES)
            .total_ipc();
        dsarp / base
    };
    let g8 = gain(Density::G8);
    let g32 = gain(Density::G32);
    assert!(
        g32 > g8,
        "DSARP gain must grow with density: 8Gb {g8:.4} vs 32Gb {g32:.4}"
    );
    assert!(g32 > 1.05, "32 Gb gain should be substantial, got {g32:.4}");
}
