//! Oracle test for the per-bank request index: random push/take/drain
//! sequences driven against [`RequestQueues`] and a naive flat-`Vec` model
//! in lockstep. After every operation, every indexed query — occupancy
//! counters, row-hit probes, forwarding probes, bank heads, chain walks,
//! arrival-order iteration — must answer exactly what a front-to-back scan
//! of the flat model answers. This is what licenses the O(1)/O(banks)
//! scheduler rewrite: any divergence here would change FR-FCFS behavior.

use dsarp_core::{Request, RequestQueues};
use dsarp_dram::Location;
use proptest::prelude::*;

/// Small location space so pushes collide on banks and rows constantly.
const RANKS: usize = 2;
const BANKS: usize = 3;
const ROWS: u32 = 3;
const COLS: u32 = 2;

/// Small capacities/watermarks so full-queue rejection and drain-mode
/// hysteresis both trigger within short random sequences.
const CAP: usize = 8;
const HIGH: usize = 6;
const LOW: usize = 2;

/// Naive reference model: flat vectors in arrival order + the drain bit.
#[derive(Default)]
struct Model {
    reads: Vec<Request>,
    writes: Vec<Request>,
    draining: bool,
}

impl Model {
    fn side(&self, writes: bool) -> &Vec<Request> {
        if writes {
            &self.writes
        } else {
            &self.reads
        }
    }

    /// What `update_drain_mode` must do, per the paper's hysteresis.
    fn drain_tick(&mut self) {
        if self.draining {
            if self.writes.len() <= LOW {
                self.draining = false;
            }
        } else if self.writes.len() >= HIGH {
            self.draining = true;
        }
    }
}

fn loc(rank: usize, bank: usize, row: u32, col: u32) -> Location {
    Location {
        channel: 0,
        rank,
        bank,
        row,
        col,
    }
}

/// Every query the scheduler and refresh policies use, checked against a
/// front-to-back scan of the flat model.
fn check(q: &RequestQueues, m: &Model) {
    assert_eq!(q.read_len(), m.reads.len());
    assert_eq!(q.write_len(), m.writes.len());
    assert_eq!(q.in_drain_mode(), m.draining);
    assert_eq!(
        q.drain_imminent(),
        !m.draining && m.writes.len() >= HIGH,
        "drain_imminent must predict the next update_drain_mode"
    );

    // Arrival-order iteration, with strictly increasing sequence numbers.
    for (side, model) in [(false, &m.reads), (true, &m.writes)] {
        let cands: Vec<_> = if side {
            q.iter_writes().collect()
        } else {
            q.iter_reads().collect()
        };
        assert_eq!(cands.len(), model.len());
        for (c, r) in cands.iter().zip(model) {
            assert_eq!(c.req, *r, "iteration order diverged from arrival order");
        }
        for w in cands.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq must increase in arrival order");
        }
    }

    for rank in 0..RANKS {
        let model_rank = m
            .reads
            .iter()
            .chain(&m.writes)
            .filter(|r| r.loc.rank == rank);
        assert_eq!(q.rank_has_demand(rank), model_rank.count() > 0);

        for bank in 0..BANKS {
            let in_bank = |r: &&Request| r.targets_bank(rank, bank);
            let demand =
                m.reads.iter().filter(in_bank).count() + m.writes.iter().filter(in_bank).count();
            assert_eq!(q.demand_count(rank, bank), demand);
            assert_eq!(q.bank_has_demand(rank, bank), demand > 0);

            for writes in [false, true] {
                let flat: Vec<&Request> = m.side(writes).iter().filter(in_bank).collect();
                assert_eq!(q.bank_len(rank, bank, writes), flat.len());

                // Oldest-in-bank head, then the whole per-bank chain walk:
                // FR-FCFS pass 2 consumes exactly this sequence.
                let mut chain = Vec::new();
                let mut cur = q.bank_head(rank, bank, writes);
                while let Some(c) = cur {
                    chain.push(c.req);
                    cur = q.next_in_bank(c.slot, writes);
                }
                assert_eq!(
                    chain,
                    flat.iter().map(|r| **r).collect::<Vec<_>>(),
                    "per-bank chain must be the bank's requests in arrival order"
                );

                // Row-hit probes: FR-FCFS pass 1 and auto-precharge.
                for row in 0..ROWS {
                    let hits: Vec<&&Request> = flat.iter().filter(|r| r.loc.row == row).collect();
                    assert_eq!(q.row_hits(rank, bank, row, writes), hits.len());
                    assert_eq!(
                        q.first_row_hit(rank, bank, row, writes).map(|c| c.req),
                        hits.first().map(|r| ***r),
                        "first_row_hit must be the oldest matching request"
                    );
                    for exclude_self in [false, true] {
                        let l = loc(rank, bank, row, 0);
                        assert_eq!(
                            q.another_row_hit_queued(&l, writes, exclude_self),
                            hits.len() > usize::from(exclude_self)
                        );
                    }
                }
            }

            // Read-after-write forwarding over the whole location space.
            for row in 0..ROWS {
                for col in 0..COLS {
                    let l = loc(rank, bank, row, col);
                    assert_eq!(
                        q.forwards_read(&l),
                        m.writes.iter().any(|r| r.loc == l),
                        "forwarding probe diverged at {l:?}"
                    );
                }
            }
        }
    }
}

/// One scripted operation, decoded from raw bytes so proptest shrinking
/// stays effective.
fn apply(op: (u8, u8, u8, u8, u8), q: &mut RequestQueues, m: &mut Model, next_id: &mut u64) {
    let (kind, a, b, c, d) = op;
    let l = loc(
        a as usize % RANKS,
        b as usize % BANKS,
        c as u32 % ROWS,
        d as u32 % COLS,
    );
    match kind % 8 {
        // Pushes are weighted 2:1 over takes so queues actually fill.
        0..=2 => {
            let req = Request::read(*next_id, l, 0, 0);
            *next_id += 1;
            let accepted = q.try_push_read(req);
            assert_eq!(accepted, m.reads.len() < CAP, "full-queue rejection");
            if accepted {
                m.reads.push(req);
            }
        }
        3 | 4 => {
            let req = Request::write(*next_id, l, 0, 0);
            *next_id += 1;
            let accepted = q.try_push_write(req);
            assert_eq!(accepted, m.writes.len() < CAP);
            if accepted {
                m.writes.push(req);
            }
        }
        5 if !m.reads.is_empty() => {
            let i = d as usize % m.reads.len();
            let cand = q.iter_reads().nth(i).expect("model says present");
            let taken = q.take_read(cand.slot);
            assert_eq!(taken, m.reads.remove(i));
        }
        6 if !m.writes.is_empty() => {
            let i = d as usize % m.writes.len();
            let cand = q.iter_writes().nth(i).expect("model says present");
            let taken = q.take_write(cand.slot);
            assert_eq!(taken, m.writes.remove(i));
        }
        7 => {
            q.update_drain_mode();
            m.drain_tick();
        }
        _ => {} // take from an empty side: no-op
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole purity argument in miniature: under arbitrary
    /// interleavings of pushes, out-of-order takes (FR-FCFS takes from the
    /// middle, not the front) and drain-mode ticks, the index answers every
    /// query identically to the flat scan it replaced.
    #[test]
    fn index_matches_flat_scan_oracle(
        ops in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            10..140,
        )
    ) {
        let mut q = RequestQueues::new(CAP, CAP, HIGH, LOW);
        let mut m = Model::default();
        let mut next_id = 1u64;
        check(&q, &m);
        for op in ops {
            apply(op, &mut q, &mut m, &mut next_id);
            check(&q, &m);
        }
        // Drain the remainder through the front to exercise slot reuse.
        loop {
            let Some(c) = q.iter_reads().next() else { break };
            assert_eq!(q.take_read(c.slot), m.reads.remove(0));
            check(&q, &m);
        }
        loop {
            let Some(c) = q.iter_writes().next() else { break };
            assert_eq!(q.take_write(c.slot), m.writes.remove(0));
            check(&q, &m);
        }
        prop_assert_eq!(q.read_len() + q.write_len(), 0);
    }
}
