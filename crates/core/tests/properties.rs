//! Property-based tests for the memory controller: random request streams
//! under every mechanism must preserve the core invariants.

use dsarp_core::{Mechanism, MemoryController, Request};
use dsarp_dram::{Density, DramChannel, Geometry, Retention, TimingParams};
use proptest::prelude::*;

fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::NoRefresh,
        Mechanism::RefAb,
        Mechanism::RefPb,
        Mechanism::Elastic,
        Mechanism::Darp,
        Mechanism::DarpOooOnly,
        Mechanism::SarpAb,
        Mechanism::SarpPb,
        Mechanism::Dsarp,
        Mechanism::Fgr2x,
        Mechanism::Fgr4x,
        Mechanism::AdaptiveRefresh,
    ]
}

/// Drives one controller with a random arrival pattern and checks:
/// * every accepted read completes exactly once, within a latency bound;
/// * the device never reports an issue error (the controller only issues
///   validated commands — `issue` would panic through `expect`);
/// * completions are never duplicated or invented.
fn drive(mech: Mechanism, arrivals: &[(u16, u8, bool)], cycles: u64, seed: u64) {
    let geom = Geometry::paper_default();
    let timing = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
    let mut chan = DramChannel::new(geom, timing, mech.sarp_support());
    chan.enable_retention_tracking();
    let mut mc = MemoryController::new(0, geom, timing, mech, seed);

    let mut next_id = 1u64;
    let mut outstanding = std::collections::HashSet::new();
    let mut accepted_reads = 0u64;
    let mut arrival_iter = arrivals.iter().cycle();
    let mut next_arrival = 0u64;
    let mut completions = Vec::new();

    for now in 0..cycles {
        if now >= next_arrival {
            let (gap, spread, is_write) = *arrival_iter.next().expect("cycled");
            next_arrival = now + 1 + gap as u64 % 40;
            // Spread addresses over banks/rows deterministically.
            let addr = (spread as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(next_id * 64)
                % geom.capacity_bytes();
            let mut loc = geom.decode(addr & !63);
            loc.channel = 0; // single controller under test
            let id = next_id;
            next_id += 1;
            if is_write {
                let _ = mc.try_enqueue_write(Request::write(id, loc, 0, now));
            } else if mc.try_enqueue_read(Request::read(id, loc, 0, now)) {
                outstanding.insert(id);
                accepted_reads += 1;
            }
        }
        completions.clear();
        mc.step(&mut chan, now, &mut completions);
        for c in &completions {
            assert!(
                outstanding.remove(&c.id),
                "completion for unknown/duplicate id {}",
                c.id
            );
            assert!(c.ready_at <= now, "completion from the future");
        }
    }

    // Everything accepted and given time must have completed. Requests from
    // the last couple thousand cycles may legitimately be in flight.
    let stats = mc.stats();
    // `reads_done` counts at column-command issue; completions deliver a
    // few cycles later (CL + BL), so the counters may run slightly ahead of
    // the delivered set.
    let delivered = accepted_reads - outstanding.len() as u64;
    let counted = stats.reads_done + stats.forwarded_reads;
    assert!(
        counted >= delivered,
        "counted {counted} < delivered {delivered}"
    );
    assert!(
        counted <= delivered + 32,
        "counted {counted} vs delivered {delivered}"
    );
    assert!(
        outstanding.len() <= 64 + 16,
        "{} reads stuck (queue cap is 64): starvation?",
        outstanding.len()
    );

    // Retention bookkeeping: refresh work tracked by the device matches the
    // controller's issue counters.
    let tracker = chan.retention_tracker().expect("enabled");
    if mech != Mechanism::NoRefresh {
        assert!(tracker.total_refreshes() > 0 || cycles < 30_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_traffic_preserves_invariants(
        arrivals in prop::collection::vec((any::<u16>(), any::<u8>(), any::<bool>()), 4..60),
        seed in any::<u64>(),
    ) {
        for mech in all_mechanisms() {
            drive(mech, &arrivals, 12_000, seed);
        }
    }

    /// Long quiet stretches + bursts: refresh debt machinery must neither
    /// starve nor over-refresh.
    #[test]
    fn bursty_traffic_darp(seed in any::<u64>(), burst in 1u16..30) {
        let arrivals = vec![(0u16, 7u8, false); burst as usize];
        drive(Mechanism::Dsarp, &arrivals, 40_000, seed);
    }
}

#[test]
fn starvation_freedom_under_saturation() {
    // Saturate one bank with reads for a long time under every mechanism;
    // every request must still complete (FR-FCFS ages out, refreshes are
    // bounded).
    for mech in all_mechanisms() {
        drive(mech, &[(0, 0, false)], 30_000, 99);
    }
}

#[test]
fn write_heavy_traffic_drains() {
    let geom = Geometry::paper_default();
    let timing = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
    for mech in [Mechanism::Darp, Mechanism::Dsarp, Mechanism::RefAb] {
        let mut chan = DramChannel::new(geom, timing, mech.sarp_support());
        let mut mc = MemoryController::new(0, geom, timing, mech, 5);
        let mut done = Vec::new();
        let mut id = 0u64;
        for now in 0..30_000u64 {
            if now % 13 == 0 {
                let mut loc = geom.decode(((id * 6_400) % geom.capacity_bytes()) & !63);
                loc.channel = 0;
                id += 1;
                let _ = mc.try_enqueue_write(Request::write(id, loc, 0, now));
            }
            mc.step(&mut chan, now, &mut done);
        }
        let s = mc.stats();
        assert!(
            s.writes_done > 1_500,
            "{mech}: only {} writes drained of ~2300 offered",
            s.writes_done
        );
    }
}
