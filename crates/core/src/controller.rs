//! The per-channel memory controller: FR-FCFS demand scheduling with the
//! paper's closed-row policy, batched write draining, refresh-policy
//! integration, and SARP shadow-counter tracking (§4.3.2).
//!
//! Scheduling priority each DRAM cycle (one command per cycle):
//!
//! 1. an *urgent* refresh from the policy — the controller precharges the
//!    target scope and issues the refresh as soon as timing allows; while it
//!    is pending, demand commands to that scope are masked;
//! 2. demand requests — reads, or writes while in writeback mode — FR-FCFS:
//!    row hits (column commands) first, then the oldest request's
//!    activation/precharge; auto-precharge is used when no other queued
//!    request hits the same row (closed-row policy);
//! 3. a *relaxed* refresh (DARP's idle-bank pull-in), only on cycles when
//!    no demand command could issue.

use crate::queues::{Candidate, RequestQueues};
use crate::refresh::{
    Mechanism, PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget,
};
use crate::request::Request;
use dsarp_dram::{Command, Cycle, DramChannel, Geometry, IssueError, TimingParams};
use serde::{Deserialize, Serialize};

/// A finished read returned to the system glue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Request id from [`Request::read`].
    pub id: u64,
    /// Originating core.
    pub core: usize,
    /// DRAM cycle the data was fully returned.
    pub ready_at: Cycle,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Reads completed (data returned).
    pub reads_done: u64,
    /// Writes issued to DRAM.
    pub writes_done: u64,
    /// Sum of read latencies (arrival → data return), DRAM cycles.
    pub read_latency_sum: u64,
    /// Reads served by read-after-write forwarding from the write queue.
    pub forwarded_reads: u64,
    /// ACT commands issued.
    pub acts: u64,
    /// PRE / PREA commands issued.
    pub precharges: u64,
    /// `REFab` commands issued.
    pub refab_issued: u64,
    /// `REFpb` commands issued.
    pub refpb_issued: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// Reads rejected because the read queue was full.
    pub read_rejects: u64,
    /// Writes rejected because the write queue was full.
    pub write_rejects: u64,
}

impl ControllerStats {
    /// Average read latency in DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_done as f64
        }
    }
}

/// Demand-scheduler work accounting: how many candidate requests the
/// FR-FCFS passes examined on cycles that issued a demand command. Only
/// issuing cycles accumulate — a cycle that issues nothing is exactly the
/// kind the event-driven loop may skip, so conditioning on issue keeps the
/// counters identical across skip-ahead and per-cycle stepping. Kept
/// outside [`ControllerStats`] (like `row_conflicts`) so the serialized
/// stats stay unchanged; read by the opt-in telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerScan {
    /// Cycles on which a demand command issued.
    pub issue_cycles: u64,
    /// Candidates examined across those cycles (pass-1 row-hit probes plus
    /// pass-2 bank-cursor pops).
    pub candidates: u64,
    /// Worst single-cycle candidate count.
    pub max_scan: u64,
}

impl SchedulerScan {
    /// Mean candidates examined per issuing cycle.
    pub fn mean_scan(&self) -> f64 {
        if self.issue_cycles == 0 {
            0.0
        } else {
            self.candidates as f64 / self.issue_cycles as f64
        }
    }

    /// Accumulates another controller's counters (cross-channel totals).
    pub fn merge(&mut self, other: &SchedulerScan) {
        self.issue_cycles += other.issue_cycles;
        self.candidates += other.candidates;
        self.max_scan = self.max_scan.max(other.max_scan);
    }
}

/// One memory controller, driving one [`DramChannel`].
#[derive(Debug)]
pub struct MemoryController {
    channel_id: usize,
    geom: Geometry,
    timing: TimingParams,
    queues: RequestQueues,
    policy: Box<dyn RefreshPolicy>,
    mechanism: Mechanism,
    inflight: Vec<Completion>,
    /// §4.3.2 shadow copies: per (rank, bank) refresh row counter and the
    /// subarray an in-flight SARP refresh occupies.
    shadow_ref_row: Vec<Vec<u32>>,
    shadow_sarp: Vec<Vec<Option<(usize, Cycle)>>>,
    stats: ControllerStats,
    /// Precharges issued to close a conflicting open row for a demand
    /// request (a strict subset of `stats.precharges`, which also counts
    /// refresh-prep precharges). Kept outside [`ControllerStats`] so the
    /// serialized stats stay unchanged; read by the opt-in telemetry.
    row_conflicts: u64,
    /// Scheduler scan-work accounting (see [`SchedulerScan`]).
    sched_scan: SchedulerScan,
    /// Reusable candidate buffers for the two scheduling passes; the
    /// scheduler runs every cycle, so these must not reallocate per call.
    scratch_hits: Vec<Candidate>,
    scratch_cursors: Vec<Candidate>,
}

impl MemoryController {
    /// Creates the controller for channel `channel_id` with the given
    /// mechanism. `seed` feeds DARP's randomized idle-bank choice.
    pub fn new(
        channel_id: usize,
        geom: Geometry,
        timing: TimingParams,
        mechanism: Mechanism,
        seed: u64,
    ) -> Self {
        let ranks = geom.ranks_per_channel();
        let banks = geom.banks_per_rank();
        let policy = mechanism.build_policy(ranks, banks, &timing, seed ^ channel_id as u64);
        Self {
            channel_id,
            geom,
            timing,
            queues: RequestQueues::paper_default(),
            policy,
            mechanism,
            inflight: Vec::new(),
            shadow_ref_row: vec![vec![0; banks]; ranks],
            shadow_sarp: vec![vec![None; banks]; ranks],
            stats: ControllerStats::default(),
            row_conflicts: 0,
            sched_scan: SchedulerScan::default(),
            scratch_hits: Vec::new(),
            scratch_cursors: Vec::new(),
        }
    }

    /// Replaces the queue configuration (tests and sweeps).
    pub fn with_queues(mut self, queues: RequestQueues) -> Self {
        self.queues = queues;
        self
    }

    /// This controller's channel index.
    pub fn channel_id(&self) -> usize {
        self.channel_id
    }

    /// The timing parameters the controller schedules against.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The configured mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Row-conflict precharges issued for demand requests (telemetry).
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    /// Scheduler scan-work counters (telemetry).
    pub fn scheduler_scan(&self) -> &SchedulerScan {
        &self.sched_scan
    }

    /// The demand queues (read-only).
    pub fn queues(&self) -> &RequestQueues {
        &self.queues
    }

    /// The refresh policy (for tests that inspect policy internals).
    pub fn policy(&self) -> &dyn RefreshPolicy {
        self.policy.as_ref()
    }

    /// The shadow copy of the refreshing subarray for (rank, bank), if a
    /// SARP refresh is in flight at `now` (paper §4.3.2).
    pub fn shadow_refreshing_subarray(
        &self,
        rank: usize,
        bank: usize,
        now: Cycle,
    ) -> Option<usize> {
        self.shadow_sarp[rank][bank].and_then(|(sub, until)| (now < until).then_some(sub))
    }

    /// Enqueues a read (line fill). Returns `false` on a full queue
    /// (backpressure). Reads matching a queued write are forwarded and
    /// complete on the next [`MemoryController::step`].
    pub fn try_enqueue_read(&mut self, req: Request) -> bool {
        debug_assert!(!req.is_write);
        debug_assert_eq!(req.loc.channel, self.channel_id);
        if self.queues.forwards_read(&req.loc) {
            self.stats.forwarded_reads += 1;
            self.inflight.push(Completion {
                id: req.id,
                core: req.core,
                ready_at: req.arrival,
            });
            return true;
        }
        if self.queues.try_push_read(req) {
            true
        } else {
            self.stats.read_rejects += 1;
            false
        }
    }

    /// Enqueues a writeback. Returns `false` on a full queue.
    pub fn try_enqueue_write(&mut self, req: Request) -> bool {
        debug_assert!(req.is_write);
        debug_assert_eq!(req.loc.channel, self.channel_id);
        if self.queues.try_push_write(req) {
            true
        } else {
            self.stats.write_rejects += 1;
            false
        }
    }

    /// Advances the controller by one DRAM cycle: may issue one command on
    /// `chan`, and appends newly finished reads to `completions`.
    pub fn step(&mut self, chan: &mut DramChannel, now: Cycle, completions: &mut Vec<Completion>) {
        // 1. Deliver finished reads.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].ready_at <= now {
                completions.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }

        // 2. Writeback-mode hysteresis.
        self.queues.update_drain_mode();

        // 3. Refresh policy decision.
        let directive = {
            let ctx = PolicyContext {
                now,
                queues: &self.queues,
                chan,
            };
            self.policy.decide(&ctx)
        };

        // 4. Urgent refresh: prep and issue, masking its scope.
        let mut mask: Option<RefreshTarget> = None;
        if let RefreshDirective::Urgent(target) = directive {
            if self.try_progress_refresh(chan, now, &target) {
                return; // command bus used this cycle
            }
            mask = Some(target);
        }

        // 5. Demand scheduling.
        if self.schedule_demand(chan, now, mask) {
            return;
        }

        // 6. Relaxed refresh on an otherwise idle command bus.
        if let RefreshDirective::Relaxed(target) = directive {
            let cmd = Self::refresh_command(&target);
            if chan.can_issue(&cmd, now) {
                self.issue_refresh(chan, now, &target, cmd);
            }
        }
    }

    /// The earliest cycle strictly after `now` at which [`Self::step`] could
    /// do observable work — deliver a completion, enter/advance writeback
    /// mode, act on the refresh policy, or issue a demand command — or
    /// `None` when the controller is fully quiescent (empty queues, nothing
    /// in flight, and a policy that never fires). Call it *after* `step(now)`
    /// so it sees this cycle's post-command state.
    ///
    /// The result is a conservative lower bound under the dead-span
    /// assumption (no commands issue and no requests arrive in between):
    /// skipping the intervening cycles and stepping again at the returned
    /// cycle is indistinguishable from stepping every cycle. `None` must
    /// never strand the clock — callers advance to their own horizon.
    pub fn next_event(&self, chan: &DramChannel, now: Cycle) -> Option<Cycle> {
        // `now + 1` is the floor every considered time clamps to; once the
        // bound reaches it no later source can lower it, so each stage may
        // return immediately — the caller steps the next cycle either way.
        let floor = now + 1;
        let mut next: Option<Cycle> = None;
        fn consider(next: &mut Option<Cycle>, floor: Cycle, t: Cycle) {
            let t = t.max(floor);
            *next = Some(next.map_or(t, |n| n.min(t)));
        }
        // Finished reads must be delivered at exactly their per-cycle time.
        for c in &self.inflight {
            consider(&mut next, floor, c.ready_at);
        }
        // Writeback-mode hysteresis mutates queue bookkeeping every cycle
        // while draining (and on the entering edge); never skip those.
        if self.queues.in_drain_mode() || self.queues.drain_imminent() {
            return Some(floor);
        }
        if next == Some(floor) {
            return next;
        }
        // Refresh policy deadlines (tREFI expiries, idle windows, DARP
        // pools). The policy reports `now + 1` whenever it would act.
        let ctx = PolicyContext {
            now,
            queues: &self.queues,
            chan,
        };
        if let Some(t) = self.policy.next_event(&ctx) {
            consider(&mut next, floor, t);
        }
        // Demand candidates, derived per bank instead of per queued read: a
        // read's next command (column on a row hit, PRE on a conflict, ACT
        // on a closed bank) has an earliest-issue time that depends only on
        // its bank's state — `earliest_issue` ignores the column address and
        // auto-precharge flag, and an ACT's row matters only through the
        // subarray class an in-flight SARP refresh occupies — so one probe
        // per command class per bank covers every queued read exactly. This
        // is a superset of what FR-FCFS would pick — extra wake-ups are
        // exact, missed ones are not. Queued writes need no events here:
        // outside writeback mode they are not servable, and entering it is
        // gated above.
        for rank in 0..self.geom.ranks_per_channel() {
            for bank in 0..self.geom.banks_per_rank() {
                if next == Some(floor) {
                    return next;
                }
                let queued = self.queues.bank_len(rank, bank, false);
                if queued == 0 {
                    continue;
                }
                match chan.rank(rank).bank(bank).open_row() {
                    Some(row) => {
                        let hits = self.queues.row_hits(rank, bank, row, false);
                        if hits > 0 {
                            let rd = Command::Read {
                                rank,
                                bank,
                                col: 0,
                                auto_precharge: false,
                            };
                            if let Some(t) = chan.earliest_issue(&rd, now) {
                                consider(&mut next, floor, t);
                            }
                        }
                        if queued > hits {
                            if let Some(t) =
                                chan.earliest_issue(&Command::Precharge { rank, bank }, now)
                            {
                                consider(&mut next, floor, t);
                            }
                        }
                    }
                    None => {
                        let head = self.queues.bank_head(rank, bank, false).expect("occupied");
                        match chan.refreshing_subarray(rank, bank, now) {
                            None => {
                                let act = Command::Activate {
                                    rank,
                                    bank,
                                    row: head.req.loc.row,
                                };
                                if let Some(t) = chan.earliest_issue(&act, now) {
                                    consider(&mut next, floor, t);
                                }
                            }
                            Some(sub) => {
                                // Probe one representative row per subarray
                                // class (conflicting with the refresh / not).
                                let mut seen = [false; 2];
                                let mut cur = Some(head);
                                while let Some(c) = cur {
                                    let class = usize::from(
                                        self.geom.subarray_of_row(c.req.loc.row) == sub,
                                    );
                                    if !seen[class] {
                                        seen[class] = true;
                                        let act = Command::Activate {
                                            rank,
                                            bank,
                                            row: c.req.loc.row,
                                        };
                                        if let Some(t) = chan.earliest_issue(&act, now) {
                                            consider(&mut next, floor, t);
                                        }
                                        if seen[0] && seen[1] {
                                            break;
                                        }
                                    }
                                    cur = self.queues.next_in_bank(c.slot, false);
                                }
                            }
                        }
                    }
                }
            }
        }
        next
    }

    fn refresh_command(target: &RefreshTarget) -> Command {
        match target.kind {
            RefreshKind::AllBank(fgr) => Command::RefreshAllBank {
                rank: target.rank,
                fgr,
            },
            RefreshKind::PerBank { bank } => Command::RefreshPerBank {
                rank: target.rank,
                bank,
            },
        }
    }

    /// Tries to move an urgent refresh forward: issue it if legal, otherwise
    /// precharge toward it. Returns whether a command was issued.
    fn try_progress_refresh(
        &mut self,
        chan: &mut DramChannel,
        now: Cycle,
        target: &RefreshTarget,
    ) -> bool {
        let cmd = Self::refresh_command(target);
        if chan.can_issue(&cmd, now) {
            self.issue_refresh(chan, now, target, cmd);
            return true;
        }
        // Precharge the refresh scope.
        match target.kind {
            RefreshKind::AllBank(_) => {
                let rank = target.rank;
                if !chan.rank(rank).all_banks_closed() {
                    let prea = Command::PrechargeAll { rank };
                    if chan.can_issue(&prea, now) {
                        chan.issue(prea, now).expect("validated");
                        self.stats.precharges += 1;
                        return true;
                    }
                    // PREA blocked (some bank's tRAS pending): close any
                    // individually ready bank to make progress.
                    for b in 0..self.geom.banks_per_rank() {
                        let pre = Command::Precharge { rank, bank: b };
                        if !chan.rank(rank).bank(b).is_closed() && chan.can_issue(&pre, now) {
                            chan.issue(pre, now).expect("validated");
                            self.stats.precharges += 1;
                            return true;
                        }
                    }
                }
            }
            RefreshKind::PerBank { bank } => {
                let pre = Command::Precharge {
                    rank: target.rank,
                    bank,
                };
                if !chan.rank(target.rank).bank(bank).is_closed() && chan.can_issue(&pre, now) {
                    chan.issue(pre, now).expect("validated");
                    self.stats.precharges += 1;
                    return true;
                }
            }
        }
        false
    }

    fn issue_refresh(
        &mut self,
        chan: &mut DramChannel,
        now: Cycle,
        target: &RefreshTarget,
        cmd: Command,
    ) {
        let receipt = chan.issue(cmd, now).expect("validated by can_issue");
        let done = receipt
            .refresh_done
            .expect("refresh commands report completion");
        let sarp = chan.sarp_support().is_enabled();
        match target.kind {
            RefreshKind::AllBank(fgr) => {
                self.stats.refab_issued += 1;
                let rows = (self.geom.rows_per_refresh() / fgr.rate() as u32).max(1);
                for b in 0..self.geom.banks_per_rank() {
                    let first = self.shadow_ref_row[target.rank][b];
                    if sarp {
                        self.shadow_sarp[target.rank][b] =
                            Some((self.geom.subarray_of_row(first), done));
                    }
                    self.shadow_ref_row[target.rank][b] =
                        (first + rows) % self.geom.rows_per_bank() as u32;
                }
            }
            RefreshKind::PerBank { bank } => {
                self.stats.refpb_issued += 1;
                let rows = self.geom.rows_per_refresh();
                let first = self.shadow_ref_row[target.rank][bank];
                if sarp {
                    self.shadow_sarp[target.rank][bank] =
                        Some((self.geom.subarray_of_row(first), done));
                }
                self.shadow_ref_row[target.rank][bank] =
                    (first + rows) % self.geom.rows_per_bank() as u32;
                // The shadow must agree with the device (§4.3.2).
                debug_assert_eq!(
                    self.shadow_refreshing_subarray(target.rank, bank, now + 1),
                    chan.refreshing_subarray(target.rank, bank, now + 1),
                );
            }
        }
        self.policy.refresh_issued(target, now);
    }

    fn masked(mask: &Option<RefreshTarget>, rank: usize, bank: usize) -> bool {
        match mask {
            None => false,
            Some(t) => {
                t.rank == rank
                    && match t.kind {
                        RefreshKind::AllBank(_) => true,
                        RefreshKind::PerBank { bank: b } => b == bank,
                    }
            }
        }
    }

    /// FR-FCFS demand scheduling. Returns whether a command was issued.
    fn schedule_demand(
        &mut self,
        chan: &mut DramChannel,
        now: Cycle,
        mask: Option<RefreshTarget>,
    ) -> bool {
        // The scratch buffers live on `self` but the passes also need
        // `&mut self.queues`; moving them out for the call keeps the
        // borrows disjoint without re-allocating per cycle.
        let mut hits = std::mem::take(&mut self.scratch_hits);
        let mut cursors = std::mem::take(&mut self.scratch_cursors);
        let issued = self.schedule_demand_with(chan, now, mask, &mut hits, &mut cursors);
        self.scratch_hits = hits;
        self.scratch_cursors = cursors;
        issued
    }

    /// [`Self::schedule_demand`] body. Returns whether a command was issued.
    ///
    /// Both passes run off the per-bank index instead of scanning the flat
    /// queue, visiting candidates in *exactly* the arrival order the flat
    /// scan visited them (see each pass's comment), so command choice and
    /// tie-breaking are byte-identical to the scan scheduler. Candidates
    /// that a hoisted shared gate (data bus busy, rank/bank refresh in
    /// progress, tRRD/tFAW window) proves unissuable are pruned without a
    /// per-candidate probe — [`DramChannel::check`] tests the same gate as
    /// a conjunct, so the pruned candidate could only have failed, and a
    /// failed probe never changes which command issues.
    fn schedule_demand_with(
        &mut self,
        chan: &mut DramChannel,
        now: Cycle,
        mask: Option<RefreshTarget>,
        hits: &mut Vec<Candidate>,
        cursors: &mut Vec<Candidate>,
    ) -> bool {
        let drain = self.queues.in_drain_mode();
        let ranks = self.geom.ranks_per_channel();
        let banks = self.geom.banks_per_rank();
        let mut scanned = 0u64;

        // Pass 1: row hits (column commands), oldest first. Hits on one
        // bank's open row all share a single legality outcome (`can_issue`
        // ignores the column address and auto-precharge flag), so trying
        // each bank's *oldest* hit in global arrival order issues exactly
        // what the flat scan would have issued: the younger same-bank hits
        // the scan also visited could only fail identically. The whole pass
        // is gated on the shared data bus — every column command needs it.
        hits.clear();
        if now >= chan.col_bus_ready(drain) {
            for rank in 0..ranks {
                let rk = chan.rank(rank);
                if rk.is_refab_busy(now) {
                    continue;
                }
                for bank in 0..banks {
                    if Self::masked(&mask, rank, bank) {
                        continue;
                    }
                    let b = rk.bank(bank);
                    if b.is_refresh_busy(now) {
                        continue;
                    }
                    let Some(open) = b.open_row() else {
                        continue;
                    };
                    if let Some(c) = self.queues.first_row_hit(rank, bank, open, drain) {
                        hits.push(c);
                    }
                }
            }
        }
        hits.sort_unstable_by_key(|c| c.seq);
        for &c in hits.iter() {
            scanned += 1;
            let (rank, bank) = (c.req.loc.rank, c.req.loc.bank);
            let auto_precharge = !self.queues.another_row_hit_queued(&c.req.loc, drain, true);
            let cmd = if drain {
                Command::Write {
                    rank,
                    bank,
                    col: c.req.loc.col,
                    auto_precharge,
                }
            } else {
                Command::Read {
                    rank,
                    bank,
                    col: c.req.loc.col,
                    auto_precharge,
                }
            };
            if chan.can_issue(&cmd, now) {
                let receipt = chan.issue(cmd, now).expect("validated");
                self.stats.row_hits += 1;
                if drain {
                    self.queues.take_write(c.slot);
                    self.stats.writes_done += 1;
                } else {
                    let req = self.queues.take_read(c.slot);
                    let ready = receipt.data_ready.expect("reads report data time");
                    self.stats.reads_done += 1;
                    self.stats.read_latency_sum += ready - req.arrival;
                    self.inflight.push(Completion {
                        id: req.id,
                        core: req.core,
                        ready_at: ready,
                    });
                }
                self.note_issue(scanned);
                return true;
            }
        }

        // Pass 2: oldest-first activation / conflict precharge. Per bank,
        // only the oldest request may activate — except that requests
        // blocked purely by a SARP subarray conflict let younger requests
        // to other subarrays of the same bank proceed. Run as a k-way merge
        // over the per-bank FIFO chains: repeatedly popping the smallest
        // arrival seq among the bank cursors visits requests in exactly the
        // flat queue order; dropping a bank's cursor is the flat scan's
        // `tried` mask, and advancing it within the bank is the scan's
        // "continue past a subarray-conflicted request". Banks behind a
        // blocking refresh are pruned up front (their one visit could only
        // drop the cursor); the rank-level tRRD/tFAW window is computed
        // once per rank instead of inside every ACT probe.
        cursors.clear();
        for rank in 0..ranks {
            let rk = chan.rank(rank);
            if rk.is_refab_busy(now) {
                continue;
            }
            let rank_act_ready = now >= rk.next_act_allowed(now, &self.timing);
            for bank in 0..banks {
                if Self::masked(&mask, rank, bank) {
                    continue;
                }
                let b = rk.bank(bank);
                if b.is_refresh_busy(now) {
                    continue;
                }
                // A closed bank can only contribute an ACT; with the rank's
                // tRRD/tFAW window shut, every visit to it this cycle would
                // end in a cursor drop (the SARP advance path also only
                // walks toward more doomed ACTs), so skip it entirely.
                if !rank_act_ready && b.is_closed() {
                    continue;
                }
                if let Some(c) = self.queues.bank_head(rank, bank, drain) {
                    cursors.push(c);
                }
            }
        }
        while !cursors.is_empty() {
            let i = cursors
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.seq)
                .map(|(i, _)| i)
                .expect("non-empty");
            let c = cursors[i];
            scanned += 1;
            let (rank, bank) = (c.req.loc.rank, c.req.loc.bank);
            let advance = |cursors: &mut Vec<Candidate>, queues: &RequestQueues| match queues
                .next_in_bank(c.slot, drain)
            {
                Some(n) => cursors[i] = n,
                None => {
                    cursors.swap_remove(i);
                }
            };
            match chan.rank(rank).bank(bank).open_row() {
                None => {
                    // SARP §4.3.2: consult the shadow counters first; a
                    // conflicting request leaves the bank open for younger
                    // requests to other subarrays. (The shadow consult must
                    // precede the ACT-window prune — a conflicted request
                    // advances the cursor, a timing-blocked one drops it.)
                    if let Some(sub) = self.shadow_refreshing_subarray(rank, bank, now) {
                        if self.geom.subarray_of_row(c.req.loc.row) == sub {
                            advance(cursors, &self.queues);
                            continue;
                        }
                    }
                    let act = Command::Activate {
                        rank,
                        bank,
                        row: c.req.loc.row,
                    };
                    match chan.check(&act, now) {
                        Ok(()) => {
                            chan.issue(act, now).expect("validated");
                            self.stats.acts += 1;
                            self.note_issue(scanned);
                            return true;
                        }
                        Err(IssueError::SubarrayConflict) => {
                            // Shadow/device disagreement would be a bug.
                            debug_assert!(false, "subarray conflict not caught by shadow counters");
                            advance(cursors, &self.queues);
                        }
                        Err(_) => {
                            cursors.swap_remove(i);
                        }
                    }
                }
                Some(open_row) => {
                    // Conflict: close the row once nothing will hit it.
                    let hit_loc = dsarp_dram::Location {
                        row: open_row,
                        ..c.req.loc
                    };
                    if !self.queues.another_row_hit_queued(&hit_loc, drain, false) {
                        let pre = Command::Precharge { rank, bank };
                        if chan.can_issue(&pre, now) {
                            chan.issue(pre, now).expect("validated");
                            self.stats.precharges += 1;
                            self.row_conflicts += 1;
                            self.note_issue(scanned);
                            return true;
                        }
                    }
                    cursors.swap_remove(i);
                }
            }
        }
        false
    }

    /// Folds one issuing cycle's scan work into the scheduler counters.
    fn note_issue(&mut self, scanned: u64) {
        self.sched_scan.issue_cycles += 1;
        self.sched_scan.candidates += scanned;
        self.sched_scan.max_scan = self.sched_scan.max_scan.max(scanned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsarp_dram::{Density, Retention};

    fn setup(mech: Mechanism) -> (DramChannel, MemoryController, Geometry, TimingParams) {
        let geom = Geometry::paper_default();
        let timing = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        let chan = DramChannel::new(geom, timing, mech.sarp_support());
        let mc = MemoryController::new(0, geom, timing, mech, 42);
        (chan, mc, geom, timing)
    }

    fn loc(rank: usize, bank: usize, row: u32, col: u32) -> dsarp_dram::Location {
        dsarp_dram::Location {
            channel: 0,
            rank,
            bank,
            row,
            col,
        }
    }

    fn run(
        mc: &mut MemoryController,
        chan: &mut DramChannel,
        from: Cycle,
        to: Cycle,
    ) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in from..to {
            mc.step(chan, now, &mut done);
        }
        done
    }

    #[test]
    fn single_read_completes_with_act_rd_latency() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::NoRefresh);
        assert!(mc.try_enqueue_read(Request::read(1, loc(0, 0, 5, 3), 2, 0)));
        let done = run(&mut mc, &mut chan, 0, 100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].core, 2);
        // ACT at 0, RD at tRCD, data at tRCD + CL + BL.
        assert_eq!(done[0].ready_at, t.rcd + t.cl + t.bl);
        assert_eq!(mc.stats().reads_done, 1);
        assert_eq!(mc.stats().acts, 1);
    }

    #[test]
    fn row_hits_share_one_activation() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        for c in 0..4 {
            assert!(mc.try_enqueue_read(Request::read(c, loc(0, 0, 5, c as u32), 0, 0)));
        }
        let done = run(&mut mc, &mut chan, 0, 200);
        assert_eq!(done.len(), 4);
        assert_eq!(mc.stats().acts, 1, "one ACT serves all four row hits");
        assert_eq!(mc.stats().row_hits, 4);
    }

    #[test]
    fn closed_row_policy_uses_auto_precharge_on_last_hit() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        chan.enable_command_log();
        mc.try_enqueue_read(Request::read(1, loc(0, 0, 5, 0), 0, 0));
        mc.try_enqueue_read(Request::read(2, loc(0, 0, 5, 1), 0, 0));
        let _ = run(&mut mc, &mut chan, 0, 100);
        let log = chan.take_command_log();
        let mnemonics: Vec<&str> = log.iter().map(|(_, c)| c.mnemonic()).collect();
        assert_eq!(mnemonics, vec!["ACT", "RD", "RDA"], "last hit precharges");
    }

    #[test]
    fn conflicting_rows_precharge_between() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        chan.enable_command_log();
        mc.try_enqueue_read(Request::read(1, loc(0, 0, 5, 0), 0, 0));
        mc.try_enqueue_read(Request::read(2, loc(0, 0, 9, 0), 0, 0));
        let done = run(&mut mc, &mut chan, 0, 300);
        assert_eq!(done.len(), 2);
        let log = chan.take_command_log();
        let m: Vec<&str> = log.iter().map(|(_, c)| c.mnemonic()).collect();
        // Closed-row: each read auto-precharges, so no explicit PRE needed.
        assert_eq!(m, vec!["ACT", "RDA", "ACT", "RDA"]);
    }

    #[test]
    fn writes_wait_for_drain_mode() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        // Below the high watermark: writes sit.
        for i in 0..10 {
            assert!(mc.try_enqueue_write(Request::write(i, loc(0, (i % 8) as usize, 1, 0), 0, 0)));
        }
        let _ = run(&mut mc, &mut chan, 0, 500);
        assert_eq!(mc.stats().writes_done, 0, "no drain below watermark");
        // Push past the high watermark: drain begins and empties to the low
        // watermark.
        for i in 10..48 {
            assert!(mc.try_enqueue_write(Request::write(i, loc(0, (i % 8) as usize, 1, 0), 0, 0)));
        }
        let _ = run(&mut mc, &mut chan, 500, 3_000);
        assert!(mc.stats().writes_done >= 16, "drained to low watermark");
        assert!(mc.queues().write_len() <= 32);
    }

    #[test]
    fn reads_blocked_during_drain() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        for i in 0..48 {
            mc.try_enqueue_write(Request::write(i, loc(0, (i % 8) as usize, 1, 0), 0, 0));
        }
        mc.try_enqueue_read(Request::read(100, loc(1, 0, 5, 0), 0, 0));
        // Step a few cycles: drain mode active, read untouched even though
        // it targets the other rank.
        let done = run(&mut mc, &mut chan, 0, 30);
        assert!(done.is_empty(), "read must wait out the drain");
        assert!(mc.queues().in_drain_mode());
    }

    #[test]
    fn read_after_write_forwarding() {
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        mc.try_enqueue_write(Request::write(1, loc(0, 0, 5, 3), 0, 0));
        assert!(mc.try_enqueue_read(Request::read(2, loc(0, 0, 5, 3), 1, 0)));
        let done = run(&mut mc, &mut chan, 0, 5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 2);
        assert_eq!(mc.stats().forwarded_reads, 1);
    }

    #[test]
    fn refab_precharges_then_refreshes() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefAb);
        chan.enable_command_log();
        // Keep a row open on rank 0 at the refresh due time.
        mc.try_enqueue_read(Request::read(1, loc(0, 0, 5, 0), 0, t.refi_ab - 30));
        // Jump close to the interval; enqueue arrives just before.
        let mut done = Vec::new();
        for now in (t.refi_ab - 30)..(t.refi_ab + 600) {
            mc.step(&mut chan, now, &mut done);
        }
        let log = chan.take_command_log();
        let m: Vec<&str> = log.iter().map(|(_, c)| c.mnemonic()).collect();
        assert!(m.contains(&"REFab"), "refresh issued: {m:?}");
        assert!(mc.stats().refab_issued >= 1);
        // Both ranks get refreshed each interval.
        assert!(log.iter().filter(|(_, c)| c.mnemonic() == "REFab").count() >= 2);
    }

    #[test]
    fn refpb_follows_round_robin_and_mirrors_device() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefPb);
        chan.enable_command_log();
        let _ = run(&mut mc, &mut chan, 0, 10 * t.refi_pb);
        let log = chan.take_command_log();
        let banks: Vec<usize> = log
            .iter()
            .filter_map(|(_, c)| match c {
                Command::RefreshPerBank { rank: 0, bank } => Some(*bank),
                _ => None,
            })
            .collect();
        assert!(banks.len() >= 8);
        for (i, b) in banks.iter().enumerate() {
            assert_eq!(*b, i % 8, "strict round-robin order");
        }
    }

    #[test]
    fn darp_avoids_busy_bank() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::Darp);
        chan.enable_command_log();
        // Keep bank 0 of rank 0 saturated with reads so DARP steers
        // refreshes to other banks.
        let mut done = Vec::new();
        let mut next_id = 0;
        for now in 0..20 * t.refi_pb {
            if mc.queues().read_len() < 8 {
                mc.try_enqueue_read(Request::read(
                    next_id,
                    loc(0, 0, (next_id % 100) as u32, 0),
                    0,
                    now,
                ));
                next_id += 1;
            }
            mc.step(&mut chan, now, &mut done);
        }
        let log = chan.take_command_log();
        let to_bank0 = log
            .iter()
            .filter(|(_, c)| matches!(c, Command::RefreshPerBank { rank: 0, bank: 0 }))
            .count();
        let total_r0 = log
            .iter()
            .filter(|(_, c)| matches!(c, Command::RefreshPerBank { rank: 0, .. }))
            .count();
        assert!(total_r0 > 0, "DARP must still refresh");
        assert!(
            to_bank0 * 4 < total_r0,
            "busy bank 0 got {to_bank0}/{total_r0} of rank-0 refreshes"
        );
    }

    #[test]
    fn backpressure_on_full_read_queue() {
        let (_, mut mc, _, _) = setup(Mechanism::NoRefresh);
        for i in 0..64 {
            assert!(mc.try_enqueue_read(Request::read(i, loc(0, 0, i as u32, 0), 0, 0)));
        }
        assert!(!mc.try_enqueue_read(Request::read(99, loc(0, 0, 1, 0), 0, 0)));
        assert_eq!(mc.stats().read_rejects, 1);
    }

    #[test]
    fn dsarp_serves_other_subarray_during_refresh() {
        let (mut chan, mut mc, geom, t) = setup(Mechanism::Dsarp);
        chan.enable_command_log();
        // Requests to two different subarrays of bank 0.
        let row_sub0 = 0u32;
        let row_sub1 = geom.rows_per_subarray() as u32;
        let mut done = Vec::new();
        let mut issued = false;
        for now in 0..40 * t.refi_pb {
            if !issued && mc.stats().refpb_issued > 0 {
                // A refresh just happened; race two reads against it.
                mc.try_enqueue_read(Request::read(1, loc(0, 0, row_sub0, 0), 0, now));
                mc.try_enqueue_read(Request::read(2, loc(0, 0, row_sub1, 0), 0, now));
                issued = true;
            }
            mc.step(&mut chan, now, &mut done);
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2, "both reads complete");
    }

    #[test]
    fn urgent_refresh_preempts_open_bank() {
        // Force a per-bank refresh on a bank that has an open row with more
        // row hits pending: the controller must precharge it (preempting
        // the hits) and refresh.
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefPb);
        chan.enable_command_log();
        // Keep bank 0 (the first round-robin target) saturated.
        let mut done = Vec::new();
        let mut id = 0;
        for now in 0..2 * t.refi_pb {
            if mc.queues().read_len() < 16 {
                mc.try_enqueue_read(Request::read(id, loc(0, 0, 1, (id % 128) as u32), 0, now));
                id += 1;
            }
            mc.step(&mut chan, now, &mut done);
        }
        let log = chan.take_command_log();
        let first_ref = log
            .iter()
            .position(|(_, c)| matches!(c, Command::RefreshPerBank { rank: 0, bank: 0 }))
            .expect("bank 0 must be refreshed despite pending hits");
        // A precharge to bank 0 must appear before that refresh.
        assert!(
            log[..first_ref]
                .iter()
                .any(|(_, c)| matches!(c, Command::Precharge { rank: 0, bank: 0 })),
            "urgent refresh must preempt the open row with a PRE"
        );
    }

    #[test]
    fn urgent_refab_masks_rank_but_not_other_rank() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefAb);
        chan.enable_command_log();
        let mut done = Vec::new();
        let mut id = 0;
        // Demand on both ranks around the refresh due time.
        for now in (t.refi_ab - 50)..(t.refi_ab + 400) {
            if mc.queues().read_len() < 8 {
                let rank = (id % 2) as usize;
                mc.try_enqueue_read(Request::read(id, loc(rank, 1, 2, 0), 0, now));
                id += 1;
            }
            mc.step(&mut chan, now, &mut done);
        }
        let log = chan.take_command_log();
        let ref_at = log
            .iter()
            .find(|(_, c)| matches!(c, Command::RefreshAllBank { rank: 0, .. }))
            .map(|(t, _)| *t)
            .expect("rank 0 refreshed");
        // While rank 0 prepared/refreshed, rank 1 kept serving (some rank-1
        // column command exists in the window before rank 0's refresh end).
        let rank1_activity = log.iter().any(|(tt, c)| {
            *tt >= t.refi_ab - 50 && *tt <= ref_at + 100 && c.rank() == 1 && c.is_column()
        });
        assert!(
            rank1_activity,
            "rank 1 should not be blocked by rank 0's refresh"
        );
    }

    #[test]
    fn fgr_modes_issue_more_frequent_shorter_refreshes() {
        let (mut chan4, mut mc4, _, t) = setup(Mechanism::Fgr4x);
        let mut done = Vec::new();
        for now in 0..2 * t.refi_ab {
            mc4.step(&mut chan4, now, &mut done);
        }
        // 4x mode: ~4 refreshes per rank per tREFIab, 2 ranks, 2 intervals.
        let got = mc4.stats().refab_issued;
        assert!(
            (12..=20).contains(&got),
            "FGR 4x issued {got} REFab in 2 intervals"
        );
    }

    #[test]
    fn adaptive_refresh_uses_4x_when_idle() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::AdaptiveRefresh);
        chan.enable_command_log();
        let mut done = Vec::new();
        for now in 0..(t.refi_ab + 100) {
            mc.step(&mut chan, now, &mut done);
        }
        let log = chan.take_command_log();
        // With no demand at all, AR refreshes in 4x mode.
        assert!(
            log.iter().any(|(_, c)| matches!(
                c,
                Command::RefreshAllBank {
                    fgr: dsarp_dram::FgrMode::X4,
                    ..
                }
            )),
            "idle rank should use 4x: {log:?}"
        );
    }

    #[test]
    fn overlapped_refpb_mechanism_overlaps_on_device() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefPbOverlapped);
        chan.set_refpb_overlap_ways(Mechanism::RefPbOverlapped.refpb_overlap_ways());
        let mut done = Vec::new();
        // Start stepping late so the per-bank schedule has backed up by 16
        // ticks: the policy then issues refreshes back-to-back, and with
        // overlap the rank accepts a second while the first is in flight.
        let start = 16 * t.refi_pb;
        let mut max_inflight = 0;
        for now in start..start + 4 * t.refi_pb {
            mc.step(&mut chan, now, &mut done);
            max_inflight = max_inflight.max(chan.rank(0).refpb_in_flight(now));
        }
        assert!(
            max_inflight >= 2,
            "overlap mechanism should run concurrent REFpb, saw {max_inflight}"
        );
    }

    #[test]
    fn next_event_none_never_strands_an_idle_controller() {
        // NoRefresh + empty queues: fully quiescent, no events — and
        // stepping anyway must do nothing (the caller may batch to any
        // horizon).
        let (mut chan, mut mc, _, _) = setup(Mechanism::NoRefresh);
        assert_eq!(mc.next_event(&chan, 123), None);
        chan.enable_command_log();
        let before = *mc.stats();
        let done = run(&mut mc, &mut chan, 124, 10_000);
        assert!(done.is_empty());
        assert_eq!(*mc.stats(), before);
        assert!(chan.take_command_log().is_empty());
    }

    #[test]
    fn next_event_tracks_head_blocked_read_then_completion() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::NoRefresh);
        mc.try_enqueue_read(Request::read(1, loc(0, 0, 5, 3), 0, 0));
        let mut done = Vec::new();
        mc.step(&mut chan, 0, &mut done); // ACT at 0
                                          // Head read blocked on tRCD: the next event is its column command.
        assert_eq!(mc.next_event(&chan, 0), Some(t.rcd));
        for now in 1..=t.rcd {
            mc.step(&mut chan, now, &mut done);
        }
        // Read issued at tRCD; only the in-flight completion remains.
        let ready = t.rcd + t.cl + t.bl;
        assert_eq!(mc.next_event(&chan, t.rcd), Some(ready));
        for now in (t.rcd + 1)..=ready {
            mc.step(&mut chan, now, &mut done);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(mc.next_event(&chan, ready), None, "all quiet again");
    }

    #[test]
    fn next_event_reports_refab_deadline() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefAb);
        let mut done = Vec::new();
        mc.step(&mut chan, 0, &mut done);
        // Empty queues: the only future event is the first tREFIab expiry.
        assert_eq!(mc.next_event(&chan, 0), Some(t.refi_ab));
        // At the deadline rank 0 refreshes; rank 1 still owes one, so the
        // policy reports an immediate event (no skipping).
        mc.step(&mut chan, t.refi_ab, &mut done);
        assert_eq!(mc.stats().refab_issued, 1);
        assert_eq!(mc.next_event(&chan, t.refi_ab), Some(t.refi_ab + 1));
        mc.step(&mut chan, t.refi_ab + 1, &mut done);
        assert_eq!(mc.stats().refab_issued, 2);
        // Both served: sleep until the next interval.
        assert_eq!(mc.next_event(&chan, t.refi_ab + 1), Some(2 * t.refi_ab));
    }

    #[test]
    fn next_event_reports_refpb_deadline_and_stale_rank() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::RefPb);
        let mut done = Vec::new();
        mc.step(&mut chan, 0, &mut done);
        assert_eq!(mc.next_event(&chan, 0), Some(t.refi_pb));
        // At the tick rank 0 refreshes and decide returns before accruing
        // rank 1: the policy must refuse to skip (stale rank).
        mc.step(&mut chan, t.refi_pb, &mut done);
        assert_eq!(mc.stats().refpb_issued, 1);
        assert_eq!(mc.next_event(&chan, t.refi_pb), Some(t.refi_pb + 1));
    }

    #[test]
    fn next_event_darp_sleeps_until_tick_once_pulled_in() {
        // Once every bank is pulled in to the -8 floor, DARP's pool is
        // empty and the controller sleeps until the next tREFIpb tick —
        // and the skipped span is provably dead (no commands issue).
        let (mut chan, mut mc, _, t) = setup(Mechanism::Darp);
        let mut done = Vec::new();
        let mut now = 0;
        let horizon = 300 * t.rfc_pb;
        let wake = loop {
            mc.step(&mut chan, now, &mut done);
            match mc.next_event(&chan, now) {
                // Short sleeps (blocked-until-slot-free) happen during
                // pull-in; only a span longer than tRFCpb means the pool
                // is empty and the policy is waiting for a schedule tick.
                Some(w) if w > now + t.rfc_pb + 2 => break w,
                _ => {}
            }
            now += 1;
            assert!(now < horizon, "DARP never reached a skippable state");
        };
        assert_eq!(wake % t.refi_pb, 0, "wake {wake} is a schedule tick");
        // The span in between is dead time.
        chan.enable_command_log();
        for c in (now + 1)..wake {
            mc.step(&mut chan, c, &mut done);
        }
        assert!(
            chan.take_command_log().is_empty(),
            "skipped span must be command-free"
        );
    }

    #[test]
    fn shadow_counters_match_device() {
        let (mut chan, mut mc, _, t) = setup(Mechanism::SarpPb);
        let mut done = Vec::new();
        for now in 0..20 * t.refi_pb {
            mc.step(&mut chan, now, &mut done);
            for rank in 0..2 {
                for bank in 0..8 {
                    assert_eq!(
                        mc.shadow_refreshing_subarray(rank, bank, now),
                        chan.refreshing_subarray(rank, bank, now),
                        "shadow diverged at cycle {now} (r{rank} b{bank})"
                    );
                }
            }
        }
        assert!(mc.stats().refpb_issued > 0);
    }
}
