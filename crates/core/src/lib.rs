//! DARP/SARP memory controller — the primary contribution of
//! *"Improving DRAM Performance by Parallelizing Refreshes with Accesses"*
//! (Chang et al., HPCA 2014), reimplemented as a library.
//!
//! The crate provides a per-channel DDR3 memory controller
//! ([`MemoryController`]) with:
//!
//! * 64/64-entry read/write request queues with batched write draining
//!   (writeback mode with high/low watermarks, [`queues::RequestQueues`]);
//! * FR-FCFS scheduling with the paper's closed-row policy
//!   ([`controller`]);
//! * a pluggable refresh-scheduling policy ([`refresh::RefreshPolicy`])
//!   with implementations of every mechanism the paper evaluates:
//!   - `REFab` — baseline all-bank refresh ([`refresh::AllBankRefresh`]),
//!   - `REFpb` — baseline round-robin per-bank refresh
//!     ([`refresh::PerBankRefresh`]),
//!   - Elastic Refresh \[Stuecheli+ MICRO'10\] ([`refresh::ElasticRefresh`]),
//!   - **DARP** — out-of-order per-bank refresh + write-refresh
//!     parallelization ([`refresh::Darp`]),
//!   - DDR4 Fine Granularity Refresh 2x/4x ([`refresh::FgrRefresh`]),
//!   - Adaptive Refresh \[Mukundan+ ISCA'13\] ([`refresh::AdaptiveRefresh`]),
//!   - the ideal no-refresh bound ([`refresh::NoRefresh`]);
//! * SARP support: when the attached [`dsarp_dram::DramChannel`] is built
//!   with [`dsarp_dram::SarpSupport::Enabled`], the controller tracks the
//!   refreshing subarray per bank with shadow counters (paper §4.3.2) and
//!   keeps scheduling around it.
//!
//! The paper's mechanism names map onto configurations of this crate:
//!
//! | Paper name | Policy | SARP |
//! |---|---|---|
//! | `REFab` | [`refresh::AllBankRefresh`] | off |
//! | `REFpb` | [`refresh::PerBankRefresh`] | off |
//! | Elastic | [`refresh::ElasticRefresh`] | off |
//! | DARP | [`refresh::Darp`] | off |
//! | SARPab | [`refresh::AllBankRefresh`] | **on** |
//! | SARPpb | [`refresh::PerBankRefresh`] | **on** |
//! | DSARP | [`refresh::Darp`] | **on** |
//!
//! # Example
//!
//! ```
//! use dsarp_core::{Mechanism, MemoryController, Request};
//! use dsarp_dram::{Density, DramChannel, Geometry, Retention, TimingParams};
//!
//! let geom = Geometry::paper_default();
//! let timing = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
//! let mech = Mechanism::Dsarp;
//! let mut chan = DramChannel::new(geom, timing, mech.sarp_support());
//! let mut mc = MemoryController::new(0, geom, timing, mech, 7);
//!
//! // Enqueue a read for physical address 0 and run the controller.
//! let loc = geom.decode(0);
//! assert!(mc.try_enqueue_read(Request::read(1, loc, 0, 0)));
//! let mut done = Vec::new();
//! for now in 0..200 {
//!     mc.step(&mut chan, now, &mut done);
//! }
//! assert_eq!(done.len(), 1, "the read completed");
//! assert_eq!(done[0].id, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod queues;
pub mod refresh;
pub mod request;

pub use controller::{Completion, ControllerStats, MemoryController, SchedulerScan};
pub use queues::{Candidate, RequestQueues, SlotId};
pub use refresh::{Mechanism, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
pub use request::Request;
