//! Read/write request queues with batched write draining, indexed by bank.
//!
//! The paper's controller (Table 1, §4.2.2): 64-entry read and 64-entry
//! write queues; writes are buffered and drained in batches — *writeback
//! mode* — entered when the write queue fills past a high watermark and left
//! at the low watermark (32 in the paper). While a channel drains, it serves
//! no reads. Write-refresh parallelization (DARP's second component) rides
//! on exactly this mode.
//!
//! # The per-bank index
//!
//! The scheduler and the refresh policies interrogate these queues every
//! DRAM cycle (`demand_count`, `bank_has_demand`, `rank_has_demand`,
//! `another_row_hit_queued`, `forwards_read`), and FR-FCFS needs each
//! bank's oldest request and oldest row hit. A flat `Vec` makes every one
//! of those an O(queue) scan — the dominant cost on memory-intensive
//! workloads where skip-ahead cannot skip. Instead, requests live in
//! slot-stable storage (no `Vec::remove` compaction) threaded onto three
//! intrusive FIFO chains, all maintained incrementally on push/take:
//!
//! * a **global chain** in arrival order (iteration, oracle tests);
//! * a **per-(rank, bank) chain** in arrival order — FR-FCFS pass 2
//!   ("oldest request per bank") reads chain heads;
//! * a **per-(rank, bank, row) chain** in arrival order — FR-FCFS pass 1
//!   ("oldest hit on the open row") and the closed-row auto-precharge
//!   test read row-chain heads and counts.
//!
//! Per-bank and per-rank occupancy counters make the policy queries O(1),
//! and a location-keyed count over the write queue makes read-after-write
//! forwarding probes O(1). Arrival order is captured in a monotonically
//! increasing per-side sequence number, so FR-FCFS tie-breaking is
//! *identical* to scanning a flat queue front-to-back: every query answers
//! exactly what the scan would have answered.

use crate::request::Request;
use dsarp_dram::Location;
use std::collections::HashMap;

/// Default read-queue capacity (paper Table 1).
pub const READ_QUEUE_CAP: usize = 64;
/// Default write-queue capacity (paper Table 1).
pub const WRITE_QUEUE_CAP: usize = 64;
/// Default drain-entry (high) watermark. The paper fixes only the low
/// watermark; 48 (75% full) follows the cited write-batching works.
pub const DRAIN_HIGH_WATERMARK: usize = 48;
/// Default drain-exit (low) watermark (paper Table 1: 32).
pub const DRAIN_LOW_WATERMARK: usize = 32;

/// Sentinel for "no slot" in the intrusive chains.
const NIL: u32 = u32::MAX;

/// Opaque handle to a queued request's storage slot. Stable from push
/// until the request is taken; reused afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(u32);

/// One scheduling candidate: a queued request, its storage slot, and its
/// arrival sequence number — the FR-FCFS tie-breaker (lower = older).
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Storage slot, for [`RequestQueues::take_read`]/[`RequestQueues::take_write`].
    pub slot: SlotId,
    /// Arrival order within the side; strictly increasing across pushes.
    pub seq: u64,
    /// The queued request.
    pub req: Request,
}

/// Slot payload plus its links on the three chains.
#[derive(Debug, Clone, Copy)]
struct Entry {
    req: Request,
    seq: u64,
    all_prev: u32,
    all_next: u32,
    bank_prev: u32,
    bank_next: u32,
    row_prev: u32,
    row_next: u32,
}

/// Per-(rank, bank, row) FIFO sub-chain.
#[derive(Debug, Clone, Copy)]
struct RowChain {
    row: u32,
    count: u32,
    head: u32,
    tail: u32,
}

/// Per-(rank, bank) index: arrival-order chain, occupancy, row sub-chains.
#[derive(Debug, Clone)]
struct BankIndex {
    head: u32,
    tail: u32,
    count: u32,
    /// Row sub-chains for rows currently queued to this bank; unordered
    /// (looked up by row value), at most one entry per distinct row.
    rows: Vec<RowChain>,
}

impl Default for BankIndex {
    fn default() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            count: 0,
            rows: Vec::new(),
        }
    }
}

/// One queue direction (reads or writes): slot-stable storage + indexes.
#[derive(Debug, Clone)]
struct Side {
    slots: Vec<Option<Entry>>,
    /// Free slot stack (LIFO reuse — deterministic).
    free: Vec<u32>,
    next_seq: u64,
    len: usize,
    all_head: u32,
    all_tail: u32,
    /// `[rank][bank]`, grown on demand — the queues are geometry-agnostic.
    banks: Vec<Vec<BankIndex>>,
    /// Per-rank occupancy, grown on demand.
    rank_counts: Vec<u32>,
}

impl Side {
    fn new(cap: usize) -> Self {
        Self {
            slots: vec![None; cap],
            free: (0..cap as u32).rev().collect(),
            next_seq: 0,
            len: 0,
            all_head: NIL,
            all_tail: NIL,
            banks: Vec::new(),
            rank_counts: Vec::new(),
        }
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    fn bank(&self, rank: usize, bank: usize) -> Option<&BankIndex> {
        self.banks.get(rank)?.get(bank)
    }

    /// Grows the lazily-sized tables to cover `(rank, bank)`.
    fn grow(&mut self, rank: usize, bank: usize) {
        if rank >= self.banks.len() {
            self.banks.resize_with(rank + 1, Vec::new);
        }
        if bank >= self.banks[rank].len() {
            self.banks[rank].resize_with(bank + 1, BankIndex::default);
        }
        if rank >= self.rank_counts.len() {
            self.rank_counts.resize(rank + 1, 0);
        }
    }

    fn entry(&self, slot: u32) -> &Entry {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    fn entry_mut(&mut self, slot: u32) -> &mut Entry {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    fn candidate(&self, slot: u32) -> Candidate {
        let e = self.entry(slot);
        Candidate {
            slot: SlotId(slot),
            seq: e.seq,
            req: e.req,
        }
    }

    fn push(&mut self, req: Request) -> bool {
        let Some(slot) = self.free.pop() else {
            return false;
        };
        let (rank, bank, row) = (req.loc.rank, req.loc.bank, req.loc.row);
        self.grow(rank, bank);
        let seq = self.next_seq;
        self.next_seq += 1;

        let all_tail = self.all_tail;
        let bank_tail = self.banks[rank][bank].tail;
        let row_pos = self.banks[rank][bank]
            .rows
            .iter()
            .position(|rc| rc.row == row);
        let row_tail = row_pos.map_or(NIL, |i| self.banks[rank][bank].rows[i].tail);

        self.slots[slot as usize] = Some(Entry {
            req,
            seq,
            all_prev: all_tail,
            all_next: NIL,
            bank_prev: bank_tail,
            bank_next: NIL,
            row_prev: row_tail,
            row_next: NIL,
        });
        if all_tail == NIL {
            self.all_head = slot;
        } else {
            self.entry_mut(all_tail).all_next = slot;
        }
        self.all_tail = slot;
        if bank_tail != NIL {
            self.entry_mut(bank_tail).bank_next = slot;
        }
        if row_tail != NIL {
            self.entry_mut(row_tail).row_next = slot;
        }

        let bi = &mut self.banks[rank][bank];
        if bi.head == NIL {
            bi.head = slot;
        }
        bi.tail = slot;
        bi.count += 1;
        match row_pos {
            Some(i) => {
                let rc = &mut bi.rows[i];
                rc.count += 1;
                rc.tail = slot;
            }
            None => bi.rows.push(RowChain {
                row,
                count: 1,
                head: slot,
                tail: slot,
            }),
        }
        self.rank_counts[rank] += 1;
        self.len += 1;
        true
    }

    fn take(&mut self, slot: SlotId) -> Request {
        let idx = slot.0;
        let e = self.slots[idx as usize].take().expect("live slot");
        let (rank, bank, row) = (e.req.loc.rank, e.req.loc.bank, e.req.loc.row);

        if e.all_prev == NIL {
            self.all_head = e.all_next;
        } else {
            self.entry_mut(e.all_prev).all_next = e.all_next;
        }
        if e.all_next == NIL {
            self.all_tail = e.all_prev;
        } else {
            self.entry_mut(e.all_next).all_prev = e.all_prev;
        }
        if e.bank_prev != NIL {
            self.entry_mut(e.bank_prev).bank_next = e.bank_next;
        }
        if e.bank_next != NIL {
            self.entry_mut(e.bank_next).bank_prev = e.bank_prev;
        }
        if e.row_prev != NIL {
            self.entry_mut(e.row_prev).row_next = e.row_next;
        }
        if e.row_next != NIL {
            self.entry_mut(e.row_next).row_prev = e.row_prev;
        }

        let bi = &mut self.banks[rank][bank];
        if bi.head == idx {
            bi.head = e.bank_next;
        }
        if bi.tail == idx {
            bi.tail = e.bank_prev;
        }
        bi.count -= 1;
        let i = bi
            .rows
            .iter()
            .position(|rc| rc.row == row)
            .expect("row chain of a live entry");
        let rc = &mut bi.rows[i];
        rc.count -= 1;
        if rc.count == 0 {
            bi.rows.swap_remove(i);
        } else {
            if rc.head == idx {
                rc.head = e.row_next;
            }
            if rc.tail == idx {
                rc.tail = e.row_prev;
            }
        }
        self.rank_counts[rank] -= 1;
        self.len -= 1;
        self.free.push(idx);
        e.req
    }

    fn bank_len(&self, rank: usize, bank: usize) -> usize {
        self.bank(rank, bank).map_or(0, |b| b.count as usize)
    }

    fn rank_len(&self, rank: usize) -> usize {
        self.rank_counts.get(rank).copied().unwrap_or(0) as usize
    }

    fn row_chain(&self, rank: usize, bank: usize, row: u32) -> Option<&RowChain> {
        self.bank(rank, bank)?.rows.iter().find(|rc| rc.row == row)
    }

    fn row_len(&self, rank: usize, bank: usize, row: u32) -> usize {
        self.row_chain(rank, bank, row)
            .map_or(0, |rc| rc.count as usize)
    }

    fn first_row_hit(&self, rank: usize, bank: usize, row: u32) -> Option<Candidate> {
        self.row_chain(rank, bank, row)
            .map(|rc| self.candidate(rc.head))
    }

    fn bank_head(&self, rank: usize, bank: usize) -> Option<Candidate> {
        let bi = self.bank(rank, bank)?;
        (bi.head != NIL).then(|| self.candidate(bi.head))
    }

    fn next_in_bank(&self, slot: SlotId) -> Option<Candidate> {
        let next = self.entry(slot.0).bank_next;
        (next != NIL).then(|| self.candidate(next))
    }

    fn iter(&self) -> SideIter<'_> {
        SideIter {
            side: self,
            cursor: self.all_head,
        }
    }
}

/// Arrival-order iterator over one side.
struct SideIter<'a> {
    side: &'a Side,
    cursor: u32,
}

impl Iterator for SideIter<'_> {
    type Item = Candidate;

    fn next(&mut self) -> Option<Candidate> {
        (self.cursor != NIL).then(|| {
            let c = self.side.candidate(self.cursor);
            self.cursor = self.side.entry(self.cursor).all_next;
            c
        })
    }
}

/// The controller's demand-request queues.
#[derive(Debug, Clone)]
pub struct RequestQueues {
    reads: Side,
    writes: Side,
    /// Write-queue occupancy per exact [`Location`] — the read-after-write
    /// forwarding probe (`forwards_read`) in O(1).
    forward: HashMap<Location, u32>,
    high: usize,
    low: usize,
    draining: bool,
    drain_cycles: u64,
    drain_entries: u64,
}

impl RequestQueues {
    /// Queues with the paper's capacities and watermarks.
    pub fn paper_default() -> Self {
        Self::new(
            READ_QUEUE_CAP,
            WRITE_QUEUE_CAP,
            DRAIN_HIGH_WATERMARK,
            DRAIN_LOW_WATERMARK,
        )
    }

    /// Queues with explicit capacities and watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high <= write_cap`.
    pub fn new(read_cap: usize, write_cap: usize, high: usize, low: usize) -> Self {
        assert!(
            low < high && high <= write_cap,
            "watermarks must satisfy low < high <= cap"
        );
        Self {
            reads: Side::new(read_cap),
            writes: Side::new(write_cap),
            forward: HashMap::new(),
            high,
            low,
            draining: false,
            drain_cycles: 0,
            drain_entries: 0,
        }
    }

    fn side(&self, writes: bool) -> &Side {
        if writes {
            &self.writes
        } else {
            &self.reads
        }
    }

    /// Appends a read; `false` when the queue is full.
    pub fn try_push_read(&mut self, req: Request) -> bool {
        debug_assert!(!req.is_write);
        self.reads.push(req)
    }

    /// Appends a writeback; `false` when the queue is full.
    pub fn try_push_write(&mut self, req: Request) -> bool {
        debug_assert!(req.is_write);
        if self.writes.push(req) {
            *self.forward.entry(req.loc).or_insert(0) += 1;
            true
        } else {
            false
        }
    }

    /// Updates writeback mode from the current occupancy. Call once per
    /// DRAM cycle before scheduling.
    pub fn update_drain_mode(&mut self) {
        if self.draining {
            self.drain_cycles += 1;
            if self.writes.len <= self.low {
                self.draining = false;
            }
        } else if self.writes.len >= self.high {
            self.draining = true;
            self.drain_entries += 1;
            self.drain_cycles += 1;
        }
    }

    /// Whether the channel is in writeback (drain) mode.
    pub fn in_drain_mode(&self) -> bool {
        self.draining
    }

    /// Whether the next [`Self::update_drain_mode`] call would *enter*
    /// writeback mode. While neither draining nor imminent, `update_drain_mode`
    /// is a no-op, which is what lets the skip-ahead loop elide it.
    pub fn drain_imminent(&self) -> bool {
        !self.draining && self.writes.len >= self.high
    }

    /// Pending reads in arrival order (oldest first).
    pub fn iter_reads(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.reads.iter()
    }

    /// Pending writes in arrival order (oldest first).
    pub fn iter_writes(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.writes.iter()
    }

    /// Removes and returns the read in `slot` (after its column command
    /// issued).
    pub fn take_read(&mut self, slot: SlotId) -> Request {
        self.reads.take(slot)
    }

    /// Removes and returns the write in `slot`.
    pub fn take_write(&mut self, slot: SlotId) -> Request {
        let req = self.writes.take(slot);
        match self.forward.get_mut(&req.loc) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                self.forward.remove(&req.loc);
            }
        }
        req
    }

    /// Pending demand requests (reads + writes) for one bank — the occupancy
    /// DARP's bank-selection logic monitors. O(1).
    pub fn demand_count(&self, rank: usize, bank: usize) -> usize {
        self.reads.bank_len(rank, bank) + self.writes.bank_len(rank, bank)
    }

    /// Whether any demand request targets the bank. O(1).
    pub fn bank_has_demand(&self, rank: usize, bank: usize) -> bool {
        self.demand_count(rank, bank) > 0
    }

    /// Whether any demand request targets the rank. O(1).
    pub fn rank_has_demand(&self, rank: usize) -> bool {
        self.reads.rank_len(rank) + self.writes.rank_len(rank) > 0
    }

    /// Whether any *other* queued request in the currently *servable* queue
    /// targets the same open row — the closed-row policy's auto-precharge
    /// test. Only the servable queue counts: outside writeback mode a
    /// queued write cannot be serviced, so letting it hold a row open would
    /// starve conflicting reads until the next drain. A request being
    /// scheduled (which itself hits `loc`'s row by construction) excludes
    /// itself with `exclude_self`. O(1).
    pub fn another_row_hit_queued(
        &self,
        loc: &Location,
        in_drain: bool,
        exclude_self: bool,
    ) -> bool {
        let hits = self.side(in_drain).row_len(loc.rank, loc.bank, loc.row);
        hits > usize::from(exclude_self)
    }

    /// Searches the write queue for a pending write to the same line
    /// (read-after-write forwarding). O(1).
    pub fn forwards_read(&self, loc: &Location) -> bool {
        self.forward.contains_key(loc)
    }

    /// Queued requests for one bank on one side (`writes` selects the
    /// direction). O(1).
    pub fn bank_len(&self, rank: usize, bank: usize, writes: bool) -> usize {
        self.side(writes).bank_len(rank, bank)
    }

    /// Queued requests hitting `row` in one bank on one side. O(1).
    pub fn row_hits(&self, rank: usize, bank: usize, row: u32, writes: bool) -> usize {
        self.side(writes).row_len(rank, bank, row)
    }

    /// The oldest queued request hitting `row` in one bank on one side.
    pub fn first_row_hit(
        &self,
        rank: usize,
        bank: usize,
        row: u32,
        writes: bool,
    ) -> Option<Candidate> {
        self.side(writes).first_row_hit(rank, bank, row)
    }

    /// The oldest queued request for one bank on one side.
    pub fn bank_head(&self, rank: usize, bank: usize, writes: bool) -> Option<Candidate> {
        self.side(writes).bank_head(rank, bank)
    }

    /// The next-older-to-younger successor of `slot` within its bank chain.
    pub fn next_in_bank(&self, slot: SlotId, writes: bool) -> Option<Candidate> {
        self.side(writes).next_in_bank(slot)
    }

    /// Read-queue occupancy.
    pub fn read_len(&self) -> usize {
        self.reads.len
    }

    /// Write-queue occupancy.
    pub fn write_len(&self) -> usize {
        self.writes.len
    }

    /// Read-queue capacity.
    pub fn read_cap(&self) -> usize {
        self.reads.cap()
    }

    /// Cycles spent in writeback mode (stat).
    pub fn drain_cycles(&self) -> u64 {
        self.drain_cycles
    }

    /// Number of writeback-mode episodes (stat).
    pub fn drain_entries(&self) -> u64 {
        self.drain_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(rank: usize, bank: usize, row: u32) -> Location {
        Location {
            channel: 0,
            rank,
            bank,
            row,
            col: 0,
        }
    }

    fn wreq(id: u64, rank: usize, bank: usize) -> Request {
        Request::write(id, loc(rank, bank, 0), 0, 0)
    }

    /// Oldest write's slot (tests drain by age like the scheduler would).
    fn oldest_write(q: &RequestQueues) -> SlotId {
        q.iter_writes().next().expect("non-empty").slot
    }

    #[test]
    fn capacity_enforced() {
        let mut q = RequestQueues::new(2, 2, 2, 1);
        assert!(q.try_push_read(Request::read(1, loc(0, 0, 0), 0, 0)));
        assert!(q.try_push_read(Request::read(2, loc(0, 0, 0), 0, 0)));
        assert!(!q.try_push_read(Request::read(3, loc(0, 0, 0), 0, 0)));
        assert_eq!(q.read_len(), 2);
        assert_eq!(q.read_cap(), 2);
    }

    #[test]
    fn drain_mode_hysteresis() {
        let mut q = RequestQueues::new(64, 64, 4, 2);
        for i in 0..3 {
            q.try_push_write(wreq(i, 0, 0));
        }
        q.update_drain_mode();
        assert!(!q.in_drain_mode(), "below high watermark");
        q.try_push_write(wreq(9, 0, 0));
        q.update_drain_mode();
        assert!(q.in_drain_mode(), "reached high watermark");
        // Drain down to low watermark.
        let s = oldest_write(&q);
        q.take_write(s);
        q.update_drain_mode();
        assert!(q.in_drain_mode(), "still above low");
        let s = oldest_write(&q);
        q.take_write(s);
        q.update_drain_mode();
        assert!(!q.in_drain_mode(), "reached low watermark");
        assert_eq!(q.drain_entries(), 1);
        assert!(q.drain_cycles() >= 2);
    }

    #[test]
    fn demand_count_spans_both_queues() {
        let mut q = RequestQueues::paper_default();
        q.try_push_read(Request::read(1, loc(0, 3, 5), 0, 0));
        q.try_push_read(Request::read(2, loc(0, 3, 6), 0, 0));
        q.try_push_write(wreq(3, 0, 3));
        q.try_push_write(wreq(4, 1, 3));
        assert_eq!(q.demand_count(0, 3), 3);
        assert_eq!(q.demand_count(1, 3), 1);
        assert!(q.bank_has_demand(0, 3));
        assert!(!q.bank_has_demand(0, 4));
        assert!(q.rank_has_demand(1));
        assert!(!q.rank_has_demand(2));
    }

    #[test]
    fn row_hit_detection_for_auto_precharge() {
        let mut q = RequestQueues::paper_default();
        let l = loc(0, 1, 42);
        q.try_push_read(Request::read(1, l, 0, 0));
        q.try_push_write(Request::write(2, loc(0, 1, 42), 0, 0));
        // Outside drain mode only reads count; the queued read matches.
        assert!(q.another_row_hit_queued(&l, false, false));
        // A write to the same row is invisible outside drain mode...
        let slot = q.first_row_hit(0, 1, 42, false).expect("read queued").slot;
        q.take_read(slot);
        assert!(!q.another_row_hit_queued(&l, false, false));
        // ...but visible inside drain mode, where it must not match itself.
        assert!(q.another_row_hit_queued(&l, true, false));
        assert!(!q.another_row_hit_queued(&l, true, true));
    }

    #[test]
    fn read_after_write_forwarding_detects_same_line() {
        let mut q = RequestQueues::paper_default();
        let l = loc(1, 2, 3);
        q.try_push_write(Request::write(1, l, 0, 0));
        assert!(q.forwards_read(&l));
        assert!(!q.forwards_read(&loc(1, 2, 4)));
    }

    #[test]
    fn forwarding_count_survives_duplicate_lines() {
        // Two writes to the same line: taking one must keep forwarding.
        let mut q = RequestQueues::paper_default();
        let l = loc(0, 0, 7);
        q.try_push_write(Request::write(1, l, 0, 0));
        q.try_push_write(Request::write(2, l, 0, 1));
        assert!(q.forwards_read(&l));
        let s = oldest_write(&q);
        q.take_write(s);
        assert!(q.forwards_read(&l), "second write still queued");
        let s = oldest_write(&q);
        q.take_write(s);
        assert!(!q.forwards_read(&l));
    }

    #[test]
    fn fifo_chains_preserve_arrival_order_across_takes() {
        let mut q = RequestQueues::paper_default();
        // Interleave two banks; take from the middle; order must hold.
        q.try_push_read(Request::read(1, loc(0, 0, 1), 0, 0));
        q.try_push_read(Request::read(2, loc(0, 1, 1), 0, 1));
        q.try_push_read(Request::read(3, loc(0, 0, 2), 0, 2));
        q.try_push_read(Request::read(4, loc(0, 0, 1), 0, 3));
        let ids: Vec<u64> = q.iter_reads().map(|c| c.req.id).collect();
        assert_eq!(ids, [1, 2, 3, 4]);
        assert_eq!(q.bank_head(0, 0, false).unwrap().req.id, 1);
        assert_eq!(q.first_row_hit(0, 0, 1, false).unwrap().req.id, 1);
        assert_eq!(q.row_hits(0, 0, 1, false), 2);

        // Take the oldest; id 3 becomes the bank head, id 4 the row hit.
        let head = q.bank_head(0, 0, false).unwrap().slot;
        q.take_read(head);
        assert_eq!(q.bank_head(0, 0, false).unwrap().req.id, 3);
        assert_eq!(q.first_row_hit(0, 0, 1, false).unwrap().req.id, 4);
        let next = q.next_in_bank(q.bank_head(0, 0, false).unwrap().slot, false);
        assert_eq!(next.unwrap().req.id, 4);
        assert_eq!(q.bank_len(0, 0, false), 2);

        // Slot reuse keeps seq strictly increasing (arrival order intact).
        q.try_push_read(Request::read(5, loc(0, 0, 1), 0, 4));
        let ids: Vec<u64> = q.iter_reads().map(|c| c.req.id).collect();
        assert_eq!(ids, [2, 3, 4, 5]);
        let seqs: Vec<u64> = q.iter_reads().map(|c| c.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn invalid_watermarks_panic() {
        let _ = RequestQueues::new(64, 64, 2, 2);
    }
}
