//! Read/write request queues with batched write draining.
//!
//! The paper's controller (Table 1, §4.2.2): 64-entry read and 64-entry
//! write queues; writes are buffered and drained in batches — *writeback
//! mode* — entered when the write queue fills past a high watermark and left
//! at the low watermark (32 in the paper). While a channel drains, it serves
//! no reads. Write-refresh parallelization (DARP's second component) rides
//! on exactly this mode.

use crate::request::Request;
use dsarp_dram::Location;

/// Default read-queue capacity (paper Table 1).
pub const READ_QUEUE_CAP: usize = 64;
/// Default write-queue capacity (paper Table 1).
pub const WRITE_QUEUE_CAP: usize = 64;
/// Default drain-entry (high) watermark. The paper fixes only the low
/// watermark; 48 (75% full) follows the cited write-batching works.
pub const DRAIN_HIGH_WATERMARK: usize = 48;
/// Default drain-exit (low) watermark (paper Table 1: 32).
pub const DRAIN_LOW_WATERMARK: usize = 32;

/// The controller's demand-request queues.
#[derive(Debug, Clone)]
pub struct RequestQueues {
    reads: Vec<Request>,
    writes: Vec<Request>,
    read_cap: usize,
    write_cap: usize,
    high: usize,
    low: usize,
    draining: bool,
    drain_cycles: u64,
    drain_entries: u64,
}

impl RequestQueues {
    /// Queues with the paper's capacities and watermarks.
    pub fn paper_default() -> Self {
        Self::new(
            READ_QUEUE_CAP,
            WRITE_QUEUE_CAP,
            DRAIN_HIGH_WATERMARK,
            DRAIN_LOW_WATERMARK,
        )
    }

    /// Queues with explicit capacities and watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high <= write_cap`.
    pub fn new(read_cap: usize, write_cap: usize, high: usize, low: usize) -> Self {
        assert!(
            low < high && high <= write_cap,
            "watermarks must satisfy low < high <= cap"
        );
        Self {
            reads: Vec::with_capacity(read_cap),
            writes: Vec::with_capacity(write_cap),
            read_cap,
            write_cap,
            high,
            low,
            draining: false,
            drain_cycles: 0,
            drain_entries: 0,
        }
    }

    /// Appends a read; `false` when the queue is full.
    pub fn try_push_read(&mut self, req: Request) -> bool {
        if self.reads.len() >= self.read_cap {
            return false;
        }
        debug_assert!(!req.is_write);
        self.reads.push(req);
        true
    }

    /// Appends a writeback; `false` when the queue is full.
    pub fn try_push_write(&mut self, req: Request) -> bool {
        if self.writes.len() >= self.write_cap {
            return false;
        }
        debug_assert!(req.is_write);
        self.writes.push(req);
        true
    }

    /// Updates writeback mode from the current occupancy. Call once per
    /// DRAM cycle before scheduling.
    pub fn update_drain_mode(&mut self) {
        if self.draining {
            self.drain_cycles += 1;
            if self.writes.len() <= self.low {
                self.draining = false;
            }
        } else if self.writes.len() >= self.high {
            self.draining = true;
            self.drain_entries += 1;
            self.drain_cycles += 1;
        }
    }

    /// Whether the channel is in writeback (drain) mode.
    pub fn in_drain_mode(&self) -> bool {
        self.draining
    }

    /// Whether the next [`Self::update_drain_mode`] call would *enter*
    /// writeback mode. While neither draining nor imminent, `update_drain_mode`
    /// is a no-op, which is what lets the skip-ahead loop elide it.
    pub fn drain_imminent(&self) -> bool {
        !self.draining && self.writes.len() >= self.high
    }

    /// Pending reads, oldest first.
    pub fn reads(&self) -> &[Request] {
        &self.reads
    }

    /// Pending writes, oldest first.
    pub fn writes(&self) -> &[Request] {
        &self.writes
    }

    /// Removes and returns the read at `idx` (after its column command
    /// issued).
    pub fn take_read(&mut self, idx: usize) -> Request {
        self.reads.remove(idx)
    }

    /// Removes and returns the write at `idx`.
    pub fn take_write(&mut self, idx: usize) -> Request {
        self.writes.remove(idx)
    }

    /// Pending demand requests (reads + writes) for one bank — the occupancy
    /// DARP's bank-selection logic monitors.
    pub fn demand_count(&self, rank: usize, bank: usize) -> usize {
        self.reads
            .iter()
            .filter(|r| r.targets_bank(rank, bank))
            .count()
            + self
                .writes
                .iter()
                .filter(|r| r.targets_bank(rank, bank))
                .count()
    }

    /// Whether any demand request targets the bank.
    pub fn bank_has_demand(&self, rank: usize, bank: usize) -> bool {
        self.reads.iter().any(|r| r.targets_bank(rank, bank))
            || self.writes.iter().any(|r| r.targets_bank(rank, bank))
    }

    /// Whether any demand request targets the rank.
    pub fn rank_has_demand(&self, rank: usize) -> bool {
        self.reads.iter().any(|r| r.loc.rank == rank)
            || self.writes.iter().any(|r| r.loc.rank == rank)
    }

    /// Whether any *other* queued request in the currently *servable* queue
    /// targets the same open row — the closed-row policy's auto-precharge
    /// test. Only the servable queue counts: outside writeback mode a
    /// queued write cannot be serviced, so letting it hold a row open would
    /// starve conflicting reads until the next drain. The request being
    /// scheduled excludes itself via `skip_idx`.
    pub fn another_row_hit_queued(
        &self,
        loc: &Location,
        in_drain: bool,
        skip_idx: Option<usize>,
    ) -> bool {
        let same_row =
            |r: &Request| r.loc.rank == loc.rank && r.loc.bank == loc.bank && r.loc.row == loc.row;
        let q = if in_drain { &self.writes } else { &self.reads };
        q.iter()
            .enumerate()
            .any(|(i, r)| Some(i) != skip_idx && same_row(r))
    }

    /// Searches the write queue for a pending write to the same line
    /// (read-after-write forwarding).
    pub fn forwards_read(&self, loc: &Location) -> bool {
        self.writes.iter().any(|w| w.loc == *loc)
    }

    /// Read-queue occupancy.
    pub fn read_len(&self) -> usize {
        self.reads.len()
    }

    /// Write-queue occupancy.
    pub fn write_len(&self) -> usize {
        self.writes.len()
    }

    /// Cycles spent in writeback mode (stat).
    pub fn drain_cycles(&self) -> u64 {
        self.drain_cycles
    }

    /// Number of writeback-mode episodes (stat).
    pub fn drain_entries(&self) -> u64 {
        self.drain_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(rank: usize, bank: usize, row: u32) -> Location {
        Location {
            channel: 0,
            rank,
            bank,
            row,
            col: 0,
        }
    }

    fn wreq(id: u64, rank: usize, bank: usize) -> Request {
        Request::write(id, loc(rank, bank, 0), 0, 0)
    }

    #[test]
    fn capacity_enforced() {
        let mut q = RequestQueues::new(2, 2, 2, 1);
        assert!(q.try_push_read(Request::read(1, loc(0, 0, 0), 0, 0)));
        assert!(q.try_push_read(Request::read(2, loc(0, 0, 0), 0, 0)));
        assert!(!q.try_push_read(Request::read(3, loc(0, 0, 0), 0, 0)));
        assert_eq!(q.read_len(), 2);
    }

    #[test]
    fn drain_mode_hysteresis() {
        let mut q = RequestQueues::new(64, 64, 4, 2);
        for i in 0..3 {
            q.try_push_write(wreq(i, 0, 0));
        }
        q.update_drain_mode();
        assert!(!q.in_drain_mode(), "below high watermark");
        q.try_push_write(wreq(9, 0, 0));
        q.update_drain_mode();
        assert!(q.in_drain_mode(), "reached high watermark");
        // Drain down to low watermark.
        q.take_write(0);
        q.update_drain_mode();
        assert!(q.in_drain_mode(), "still above low");
        q.take_write(0);
        q.update_drain_mode();
        assert!(!q.in_drain_mode(), "reached low watermark");
        assert_eq!(q.drain_entries(), 1);
        assert!(q.drain_cycles() >= 2);
    }

    #[test]
    fn demand_count_spans_both_queues() {
        let mut q = RequestQueues::paper_default();
        q.try_push_read(Request::read(1, loc(0, 3, 5), 0, 0));
        q.try_push_read(Request::read(2, loc(0, 3, 6), 0, 0));
        q.try_push_write(wreq(3, 0, 3));
        q.try_push_write(wreq(4, 1, 3));
        assert_eq!(q.demand_count(0, 3), 3);
        assert_eq!(q.demand_count(1, 3), 1);
        assert!(q.bank_has_demand(0, 3));
        assert!(!q.bank_has_demand(0, 4));
        assert!(q.rank_has_demand(1));
        assert!(!q.rank_has_demand(2));
    }

    #[test]
    fn row_hit_detection_for_auto_precharge() {
        let mut q = RequestQueues::paper_default();
        let l = loc(0, 1, 42);
        q.try_push_read(Request::read(1, l, 0, 0));
        q.try_push_write(Request::write(2, loc(0, 1, 42), 0, 0));
        // Outside drain mode only reads count; the read at index 0 matches.
        assert!(q.another_row_hit_queued(&l, false, None));
        // A write to the same row is invisible outside drain mode...
        q.take_read(0);
        assert!(!q.another_row_hit_queued(&l, false, None));
        // ...but visible inside drain mode, where it must not match itself.
        assert!(q.another_row_hit_queued(&l, true, None));
        assert!(!q.another_row_hit_queued(&l, true, Some(0)));
    }

    #[test]
    fn read_after_write_forwarding_detects_same_line() {
        let mut q = RequestQueues::paper_default();
        let l = loc(1, 2, 3);
        q.try_push_write(Request::write(1, l, 0, 0));
        assert!(q.forwards_read(&l));
        assert!(!q.forwards_read(&loc(1, 2, 4)));
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn invalid_watermarks_panic() {
        let _ = RequestQueues::new(64, 64, 2, 2);
    }
}
