//! The ideal no-refresh bound ("No REF" in the paper's figures).

use super::{PolicyContext, RefreshDirective, RefreshPolicy, RefreshTarget};
use dsarp_dram::Cycle;

/// Never refreshes. The upper bound every real policy is compared against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRefresh;

impl RefreshPolicy for NoRefresh {
    fn name(&self) -> &'static str {
        "norefresh"
    }

    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> RefreshDirective {
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, _target: &RefreshTarget, _now: Cycle) {
        unreachable!("NoRefresh never requests a refresh");
    }

    fn next_event(&self, _ctx: &PolicyContext<'_>) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use dsarp_dram::{Density, DramChannel, Geometry, Retention, SarpSupport, TimingParams};

    #[test]
    fn always_none() {
        let chan = DramChannel::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1333(Density::G8, Retention::Ms32),
            SarpSupport::Disabled,
        );
        let q = RequestQueues::paper_default();
        let mut p = NoRefresh;
        for now in [0u64, 10_000, 1_000_000] {
            let ctx = PolicyContext {
                now,
                queues: &q,
                chan: &chan,
            };
            assert_eq!(p.decide(&ctx), RefreshDirective::None);
        }
    }
}
