//! Adaptive Refresh \[Mukundan+ ISCA'13\] (paper §6.5): dynamically switch
//! between FGR 1x and 4x per refresh, based on observed memory activity.
//!
//! **Modeling note (documented substitution).** Mukundan et al. switch modes
//! on command-queue pressure; like the paper's controller (§7), ours has no
//! command queues, so this implementation switches on demand-queue
//! occupancy: a rank whose demand queues have been empty for a window
//! refreshes in 4x mode (shorter individual interruptions while idle),
//! otherwise in 1x. The paper's own conclusion — AR lands within ~1% of
//! `REFab`, far below DSARP, because 4x FGR is intrinsically more expensive
//! — does not depend on the exact switching heuristic.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, FgrMode, TimingParams};

/// Adaptive 1x/4x refresh.
#[derive(Debug, Clone)]
pub struct AdaptiveRefresh {
    /// Refresh *work* owed, in quarters of a 1x refresh.
    owed_quarters: Vec<u32>,
    next_due: Vec<Cycle>,
    idle_since: Vec<Option<Cycle>>,
    refi_1x: u64,
    /// Idleness window (cycles) after which a rank switches to 4x mode.
    idle_window: u64,
    /// Mode chosen at each rank's last refresh (introspection for tests).
    last_mode: Vec<FgrMode>,
}

impl AdaptiveRefresh {
    /// Creates the policy for `ranks` ranks.
    pub fn new(ranks: usize, timing: &TimingParams) -> Self {
        Self {
            owed_quarters: vec![0; ranks],
            next_due: vec![timing.refi_ab / 4; ranks],
            idle_since: vec![None; ranks],
            refi_1x: timing.refi_ab,
            idle_window: timing.rfc_ab,
            last_mode: vec![FgrMode::X1; ranks],
        }
    }

    /// The mode used by the rank's most recent refresh.
    pub fn last_mode(&self, rank: usize) -> FgrMode {
        self.last_mode[rank]
    }
}

impl RefreshPolicy for AdaptiveRefresh {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        for r in 0..self.owed_quarters.len() {
            // Accrue work in quarter-refresh units every tREFIab/4.
            while ctx.now >= self.next_due[r] {
                self.owed_quarters[r] += 1;
                self.next_due[r] += self.refi_1x / 4;
            }
            // Idleness tracking.
            let busy = ctx.queues.rank_has_demand(r);
            if busy {
                self.idle_since[r] = None;
            } else if self.idle_since[r].is_none() {
                self.idle_since[r] = Some(ctx.now);
            }
            if ctx.chan.rank(r).is_refab_busy(ctx.now) {
                continue;
            }
            let idle_long =
                self.idle_since[r].is_some_and(|since| ctx.now - since >= self.idle_window);
            // 4x commands retire 1 quarter; 1x commands retire 4. Choose 4x
            // when the rank looks idle and a single quarter is due; fall
            // back to 1x when work has piled up (a busy rank defers until
            // a full 1x unit is owed, like the REFab baseline).
            let mode = if idle_long { FgrMode::X4 } else { FgrMode::X1 };
            let quarters_needed = match mode {
                FgrMode::X4 => 1,
                _ => 4,
            };
            if self.owed_quarters[r] >= quarters_needed {
                return RefreshDirective::Urgent(RefreshTarget {
                    rank: r,
                    kind: RefreshKind::AllBank(mode),
                });
            }
        }
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        let RefreshKind::AllBank(mode) = target.kind else {
            panic!("adaptive refresh issued a per-bank refresh");
        };
        let quarters = match mode {
            FgrMode::X4 => 1,
            FgrMode::X2 => 2,
            FgrMode::X1 => 4,
        };
        self.owed_quarters[target.rank] = self.owed_quarters[target.rank].saturating_sub(quarters);
        self.last_mode[target.rank] = mode;
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for r in 0..self.owed_quarters.len() {
            if self.next_due[r] <= now {
                return Some(now + 1); // unaccrued quarters
            }
            consider(self.next_due[r]);
            // Idleness tracking mutates on busy/idle edges; a disagreement
            // with the queues means the next decide must run.
            let busy = ctx.queues.rank_has_demand(r);
            match (busy, self.idle_since[r]) {
                (false, None) | (true, Some(_)) => return Some(now + 1),
                _ => {}
            }
            let owed = self.owed_quarters[r];
            let rank = ctx.chan.rank(r);
            if rank.is_refab_busy(now) {
                if owed > 0 {
                    consider(rank.refab_until());
                }
                continue;
            }
            if owed >= 4 {
                return Some(now + 1); // a full 1x unit is due right now
            }
            if owed >= 1 {
                if let Some(since) = self.idle_since[r] {
                    let crossing = since + self.idle_window;
                    if now >= crossing {
                        return Some(now + 1); // idle long enough for 4x mode
                    }
                    consider(crossing);
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use crate::request::Request;
    use dsarp_dram::{Density, DramChannel, Geometry, Location, Retention, SarpSupport};

    fn setup() -> (DramChannel, AdaptiveRefresh, TimingParams) {
        let t = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        let chan = DramChannel::new(Geometry::paper_default(), t, SarpSupport::Disabled);
        (chan, AdaptiveRefresh::new(1, &t), t)
    }

    #[test]
    fn idle_rank_uses_4x_mode() {
        let (chan, mut p, t) = setup();
        let q = RequestQueues::paper_default();
        // Observe idleness early, then hit a quarter-due time much later.
        let ctx0 = PolicyContext {
            now: 1,
            queues: &q,
            chan: &chan,
        };
        let _ = p.decide(&ctx0);
        let ctx = PolicyContext {
            now: t.refi_ab / 4 + 1,
            queues: &q,
            chan: &chan,
        };
        match p.decide(&ctx) {
            RefreshDirective::Urgent(target) => {
                assert_eq!(target.kind, RefreshKind::AllBank(FgrMode::X4));
                p.refresh_issued(&target, t.refi_ab / 4 + 1);
                assert_eq!(p.last_mode(0), FgrMode::X4);
            }
            other => panic!("expected 4x refresh, got {other:?}"),
        }
    }

    #[test]
    fn busy_rank_waits_for_full_1x_unit() {
        let (chan, mut p, t) = setup();
        let mut q = RequestQueues::paper_default();
        q.try_push_read(Request::read(
            1,
            Location {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
            },
            0,
            0,
        ));
        // One quarter owed: busy rank does not refresh yet.
        let ctx = PolicyContext {
            now: t.refi_ab / 4 + 1,
            queues: &q,
            chan: &chan,
        };
        assert_eq!(p.decide(&ctx), RefreshDirective::None);
        // Four quarters owed: busy rank issues a 1x refresh.
        let ctx4 = PolicyContext {
            now: t.refi_ab + 1,
            queues: &q,
            chan: &chan,
        };
        match p.decide(&ctx4) {
            RefreshDirective::Urgent(target) => {
                assert_eq!(target.kind, RefreshKind::AllBank(FgrMode::X1));
            }
            other => panic!("expected 1x refresh, got {other:?}"),
        }
    }

    #[test]
    fn work_accounting_balances() {
        let (chan, mut p, t) = setup();
        let q = RequestQueues::paper_default();
        let mut issued_quarters = 0u32;
        let mut now = 0;
        while now < 10 * t.refi_ab {
            now += 97;
            let ctx = PolicyContext {
                now,
                queues: &q,
                chan: &chan,
            };
            if let RefreshDirective::Urgent(target) = p.decide(&ctx) {
                p.refresh_issued(&target, now);
                issued_quarters += match target.kind {
                    RefreshKind::AllBank(FgrMode::X4) => 1,
                    RefreshKind::AllBank(FgrMode::X2) => 2,
                    RefreshKind::AllBank(FgrMode::X1) => 4,
                    _ => unreachable!(),
                };
            }
        }
        // Ten tREFIab of simulated time = 40 quarters of refresh work.
        assert!(
            (36..=44).contains(&(issued_quarters + p.owed_quarters[0])),
            "quarters issued {issued_quarters} + owed {} should be ~40",
            p.owed_quarters[0]
        );
    }
}
