//! Refresh-scheduling policies.
//!
//! Every mechanism the paper evaluates (§6) is a [`RefreshPolicy`]
//! implementation. Each DRAM cycle the controller asks the policy for a
//! [`RefreshDirective`]; *urgent* directives outrank demand requests
//! (the controller precharges the target and issues the refresh as soon as
//! the timing allows), *relaxed* directives are served only on cycles when
//! no demand command could issue (DARP's idle-bank pull-in, Fig. 8 ③).

use crate::queues::RequestQueues;
use dsarp_dram::{Cycle, DramChannel, FgrMode, SarpSupport, TimingParams};
use serde::{Deserialize, Serialize};

mod adaptive;
mod allbank;
mod darp;
mod elastic;
mod fgr;
mod norefresh;
mod perbank;

pub use adaptive::AdaptiveRefresh;
pub use allbank::AllBankRefresh;
pub use darp::Darp;
pub use elastic::ElasticRefresh;
pub use fgr::FgrRefresh;
pub use norefresh::NoRefresh;
pub use perbank::PerBankRefresh;

/// What to refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// `REFab` in the given fine-granularity mode.
    AllBank(FgrMode),
    /// `REFpb` to one bank.
    PerBank {
        /// Bank to refresh.
        bank: usize,
    },
}

/// A refresh the policy wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshTarget {
    /// Target rank.
    pub rank: usize,
    /// Granularity and (for per-bank) the bank.
    pub kind: RefreshKind,
}

/// The policy's decision for this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshDirective {
    /// Nothing to do.
    None,
    /// Issue as soon as legal; outranks demand scheduling to the target.
    Urgent(RefreshTarget),
    /// Issue only if no demand command could be issued this cycle.
    Relaxed(RefreshTarget),
}

/// Read-only controller state handed to the policy each cycle.
pub struct PolicyContext<'a> {
    /// Current DRAM cycle.
    pub now: Cycle,
    /// The demand queues (occupancies drive DARP and Elastic decisions).
    pub queues: &'a RequestQueues,
    /// The DRAM channel (refresh-in-flight state, timing).
    pub chan: &'a DramChannel,
}

/// A refresh-scheduling policy (one instance per channel).
pub trait RefreshPolicy: std::fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Called every DRAM cycle before demand scheduling.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective;

    /// Notification that the controller issued `target` at `now`.
    fn refresh_issued(&mut self, target: &RefreshTarget, now: Cycle);

    /// The earliest cycle strictly after `ctx.now` at which this policy's
    /// [`Self::decide`] could first return a different (non-`None`)
    /// directive, assuming no commands issue and no requests arrive in
    /// between, or `None` when the policy can never act again on its own
    /// (e.g. [`NoRefresh`]).
    ///
    /// This is the policy's event source for the skip-ahead loop. The
    /// contract is *conservative*: returning an earlier cycle than necessary
    /// (including `ctx.now + 1`, the default, which disables skipping) is
    /// always exact; returning a later cycle than the true next action
    /// would break cycle-exactness. Implementations must return
    /// `ctx.now + 1` whenever `decide` would act *right now*, so the
    /// controller never skips over a cycle in which the policy wants to
    /// issue, mask demand, or mutate non-idempotent state.
    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        Some(ctx.now + 1)
    }

    /// Policy-specific telemetry counters as `(name, value)` pairs, for
    /// the simulator's opt-in telemetry. Names are stable snake_case
    /// identifiers; policies without interesting internals return nothing.
    fn telemetry(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// The named mechanisms evaluated in the paper, as configuration values.
///
/// A mechanism bundles a refresh policy with whether the DRAM device has the
/// SARP modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Ideal: no refreshes at all ("No REF").
    NoRefresh,
    /// Baseline all-bank refresh (`REFab`).
    RefAb,
    /// Baseline round-robin per-bank refresh (`REFpb`).
    RefPb,
    /// Elastic refresh \[Stuecheli+ MICRO'10\] on all-bank refresh.
    Elastic,
    /// DARP: out-of-order per-bank refresh + write-refresh parallelization.
    Darp,
    /// DARP with only the out-of-order component (§6.1.2 breakdown).
    DarpOooOnly,
    /// SARP applied to all-bank refresh.
    SarpAb,
    /// SARP applied to per-bank refresh.
    SarpPb,
    /// DARP + SARPpb (the paper's headline mechanism).
    Dsarp,
    /// DDR4 fine-granularity refresh, 2x mode.
    Fgr2x,
    /// DDR4 fine-granularity refresh, 4x mode.
    Fgr4x,
    /// Adaptive refresh \[Mukundan+ ISCA'13\]: dynamic 1x/4x switching.
    AdaptiveRefresh,
    /// Extension (paper footnote 5): baseline per-bank refresh on a
    /// modified standard allowing up to 4 overlapped `REFpb` per rank.
    RefPbOverlapped,
    /// Extension: DSARP on the footnote-5 overlapped-refresh standard.
    DsarpOverlapped,
}

impl Mechanism {
    /// All mechanisms in the order of the paper's Figure 13 (plus extras).
    pub fn all() -> Vec<Mechanism> {
        vec![
            Mechanism::RefAb,
            Mechanism::RefPb,
            Mechanism::Elastic,
            Mechanism::Darp,
            Mechanism::SarpAb,
            Mechanism::SarpPb,
            Mechanism::Dsarp,
            Mechanism::NoRefresh,
        ]
    }

    /// Whether the DRAM device must be built with SARP support.
    pub fn sarp_support(self) -> SarpSupport {
        match self {
            Mechanism::SarpAb
            | Mechanism::SarpPb
            | Mechanism::Dsarp
            | Mechanism::DsarpOverlapped => SarpSupport::Enabled,
            _ => SarpSupport::Disabled,
        }
    }

    /// Concurrent `REFpb` limit the device must be configured with
    /// (1 = JEDEC; 4 = the footnote-5 overlapped-refresh extension).
    pub fn refpb_overlap_ways(self) -> usize {
        match self {
            Mechanism::RefPbOverlapped | Mechanism::DsarpOverlapped => 4,
            _ => 1,
        }
    }

    /// Builds the policy instance for one channel.
    ///
    /// `banks_per_rank`/`ranks` describe the channel; `seed` feeds DARP's
    /// random idle-bank selection.
    pub fn build_policy(
        self,
        ranks: usize,
        banks_per_rank: usize,
        timing: &TimingParams,
        seed: u64,
    ) -> Box<dyn RefreshPolicy> {
        match self {
            Mechanism::NoRefresh => Box::new(NoRefresh),
            Mechanism::RefAb | Mechanism::SarpAb => Box::new(AllBankRefresh::new(ranks, timing)),
            Mechanism::RefPb | Mechanism::SarpPb | Mechanism::RefPbOverlapped => {
                Box::new(PerBankRefresh::new(ranks, banks_per_rank, timing))
            }
            Mechanism::Elastic => Box::new(ElasticRefresh::new(ranks, timing)),
            Mechanism::Darp | Mechanism::Dsarp | Mechanism::DsarpOverlapped => {
                Box::new(Darp::new(ranks, banks_per_rank, timing, seed, true))
            }
            Mechanism::DarpOooOnly => {
                Box::new(Darp::new(ranks, banks_per_rank, timing, seed, false))
            }
            Mechanism::Fgr2x => Box::new(FgrRefresh::new(ranks, timing, FgrMode::X2)),
            Mechanism::Fgr4x => Box::new(FgrRefresh::new(ranks, timing, FgrMode::X4)),
            Mechanism::AdaptiveRefresh => Box::new(AdaptiveRefresh::new(ranks, timing)),
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::NoRefresh => "No REF",
            Mechanism::RefAb => "REFab",
            Mechanism::RefPb => "REFpb",
            Mechanism::Elastic => "Elastic",
            Mechanism::Darp => "DARP",
            Mechanism::DarpOooOnly => "DARP (OoO only)",
            Mechanism::SarpAb => "SARPab",
            Mechanism::SarpPb => "SARPpb",
            Mechanism::Dsarp => "DSARP",
            Mechanism::Fgr2x => "FGR 2x",
            Mechanism::Fgr4x => "FGR 4x",
            Mechanism::AdaptiveRefresh => "AR",
            Mechanism::RefPbOverlapped => "REFpb-ovl",
            Mechanism::DsarpOverlapped => "DSARP-ovl",
        }
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsarp_dram::{Density, Retention};

    #[test]
    fn sarp_mapping_matches_paper_table() {
        assert_eq!(Mechanism::RefAb.sarp_support(), SarpSupport::Disabled);
        assert_eq!(Mechanism::SarpAb.sarp_support(), SarpSupport::Enabled);
        assert_eq!(Mechanism::SarpPb.sarp_support(), SarpSupport::Enabled);
        assert_eq!(Mechanism::Dsarp.sarp_support(), SarpSupport::Enabled);
        assert_eq!(Mechanism::Darp.sarp_support(), SarpSupport::Disabled);
        assert_eq!(
            Mechanism::DsarpOverlapped.sarp_support(),
            SarpSupport::Enabled
        );
    }

    #[test]
    fn overlap_ways() {
        assert_eq!(Mechanism::RefPb.refpb_overlap_ways(), 1);
        assert_eq!(Mechanism::RefPbOverlapped.refpb_overlap_ways(), 4);
        assert_eq!(Mechanism::DsarpOverlapped.refpb_overlap_ways(), 4);
    }

    #[test]
    fn build_all_policies() {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        for m in [
            Mechanism::NoRefresh,
            Mechanism::RefAb,
            Mechanism::RefPb,
            Mechanism::Elastic,
            Mechanism::Darp,
            Mechanism::DarpOooOnly,
            Mechanism::SarpAb,
            Mechanism::SarpPb,
            Mechanism::Dsarp,
            Mechanism::Fgr2x,
            Mechanism::Fgr4x,
            Mechanism::AdaptiveRefresh,
            Mechanism::RefPbOverlapped,
            Mechanism::DsarpOverlapped,
        ] {
            let p = m.build_policy(2, 8, &t, 1);
            assert!(!p.name().is_empty());
            assert!(!m.label().is_empty());
        }
    }
}
