//! Baseline per-bank refresh (`REFpb`, §2.2.2): one bank-level refresh every
//! `tREFIpb`, in the strict sequential round-robin order the LPDDR standard
//! hard-wires into the device.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, TimingParams};

/// The LPDDR per-bank refresh scheme. The controller has no say in the bank
/// order — this policy mirrors the in-DRAM round-robin counter (the command
/// still carries the bank id because our device model lets the controller
/// name the bank; the baseline always names the counter's bank).
#[derive(Debug, Clone)]
pub struct PerBankRefresh {
    next_due: Vec<Cycle>,
    pending: Vec<u32>,
    rr: Vec<usize>,
    banks: usize,
    refi_pb: u64,
}

impl PerBankRefresh {
    /// Creates the policy for `ranks` ranks of `banks` banks.
    pub fn new(ranks: usize, banks: usize, timing: &TimingParams) -> Self {
        let refi_pb = timing.refi_pb;
        Self {
            next_due: vec![refi_pb; ranks],
            pending: vec![0; ranks],
            rr: vec![0; ranks],
            banks,
            refi_pb,
        }
    }

    /// The bank the round-robin counter will refresh next (mirrors the
    /// device's internal counter; tests assert they stay in step).
    pub fn next_bank(&self, rank: usize) -> usize {
        self.rr[rank]
    }

    /// Outstanding unissued refreshes for `rank` (for tests).
    pub fn pending(&self, rank: usize) -> u32 {
        self.pending[rank]
    }
}

impl RefreshPolicy for PerBankRefresh {
    fn name(&self) -> &'static str {
        "refpb"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        for r in 0..self.next_due.len() {
            while ctx.now >= self.next_due[r] {
                self.pending[r] += 1;
                self.next_due[r] += self.refi_pb;
            }
            // The JEDEC rule serializes REFpb within a rank: wait out an
            // in-flight one before requesting the next.
            if self.pending[r] > 0 && !ctx.chan.rank(r).is_refpb_busy(ctx.now) {
                return RefreshDirective::Urgent(RefreshTarget {
                    rank: r,
                    kind: RefreshKind::PerBank { bank: self.rr[r] },
                });
            }
        }
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        let RefreshKind::PerBank { bank } = target.kind else {
            panic!("per-bank policy issued a non-per-bank refresh");
        };
        debug_assert_eq!(
            bank, self.rr[target.rank],
            "baseline must follow round-robin"
        );
        self.pending[target.rank] = self.pending[target.rank].saturating_sub(1);
        self.rr[target.rank] = (self.rr[target.rank] + 1) % self.banks;
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for r in 0..self.next_due.len() {
            if self.next_due[r] <= now {
                // decide() accrues inside its per-rank scan and returns
                // early on the first actionable rank, so later ranks can be
                // behind: no skipping until they catch up.
                return Some(now + 1);
            }
            consider(self.next_due[r]);
            if self.pending[r] > 0 {
                match ctx.chan.rank(r).refpb_slot_free(now) {
                    Some(free) => consider(free), // rank serialized until then
                    None => return Some(now + 1), // decide would act right now
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use dsarp_dram::{Density, DramChannel, Geometry, Retention, SarpSupport};

    fn setup() -> (DramChannel, RequestQueues, PerBankRefresh, TimingParams) {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        let chan = DramChannel::new(Geometry::paper_default(), t, SarpSupport::Disabled);
        let q = RequestQueues::paper_default();
        let p = PerBankRefresh::new(2, 8, &t);
        (chan, q, p, t)
    }

    #[test]
    fn round_robin_order() {
        let (chan, q, mut p, t) = setup();
        for i in 0..10u64 {
            let now = t.refi_pb * (i + 1);
            let ctx = PolicyContext {
                now,
                queues: &q,
                chan: &chan,
            };
            match p.decide(&ctx) {
                RefreshDirective::Urgent(target) => {
                    assert_eq!(target.rank, 0, "rank 0 due first each tick");
                    assert_eq!(
                        target.kind,
                        RefreshKind::PerBank {
                            bank: (i % 8) as usize
                        }
                    );
                    p.refresh_issued(&target, now);
                    // Serve rank 1's tick too so it does not back up.
                    let ctx2 = PolicyContext {
                        now: now + 1,
                        queues: &q,
                        chan: &chan,
                    };
                    if let RefreshDirective::Urgent(t1) = p.decide(&ctx2) {
                        assert_eq!(t1.rank, 1);
                        p.refresh_issued(&t1, now + 1);
                    }
                }
                other => panic!("tick {i}: expected urgent, got {other:?}"),
            }
        }
        assert_eq!(p.next_bank(0), 10 % 8);
    }

    #[test]
    fn eight_times_the_refab_rate() {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        assert_eq!(t.refi_pb * 8, t.refi_ab);
    }

    #[test]
    fn waits_out_inflight_refpb() {
        let (mut chan, q, mut p, t) = setup();
        chan.issue(
            dsarp_dram::Command::RefreshPerBank { rank: 0, bank: 0 },
            t.refi_pb - 10,
        )
        .unwrap();
        // While rank 0's REFpb is in flight, rank 0 is skipped even if due.
        let ctx = PolicyContext {
            now: t.refi_pb,
            queues: &q,
            chan: &chan,
        };
        match p.decide(&ctx) {
            RefreshDirective::Urgent(target) => assert_eq!(target.rank, 1),
            RefreshDirective::None => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mirrors_device_round_robin_counter() {
        let (mut chan, q, mut p, t) = setup();
        for i in 1..=20u64 {
            let now = t.refi_pb * i;
            let ctx = PolicyContext {
                now,
                queues: &q,
                chan: &chan,
            };
            if let RefreshDirective::Urgent(target) = p.decide(&ctx) {
                assert_eq!(
                    match target.kind {
                        RefreshKind::PerBank { bank } => bank,
                        _ => unreachable!(),
                    },
                    chan.next_rr_bank(target.rank),
                    "policy mirror diverged from the in-DRAM counter"
                );
                let RefreshKind::PerBank { bank } = target.kind else {
                    unreachable!()
                };
                chan.issue(
                    dsarp_dram::Command::RefreshPerBank {
                        rank: target.rank,
                        bank,
                    },
                    now,
                )
                .unwrap();
                p.refresh_issued(&target, now);
            }
        }
    }
}
