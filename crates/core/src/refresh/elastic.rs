//! Elastic Refresh \[Stuecheli+ MICRO'10\], the paper's third baseline (§6).
//!
//! Elastic refresh exploits the DDR standard's allowance of up to eight
//! postponed all-bank refreshes: it delays a due `REFab` until the rank has
//! been idle (no pending demand requests) for a threshold that *shrinks* as
//! the postponement backlog grows, and forces the refresh once eight are
//! postponed. The idle threshold is derived from a running estimate of the
//! rank's average idle-period length, as in the original proposal.
//!
//! The paper (§7) points out the scheme's two weaknesses — it cannot hide
//! refreshes when idle periods are shorter than `tRFCab`, and mispredicted
//! idleness stalls demand requests — both of which emerge naturally from
//! this implementation.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, FgrMode, TimingParams};

/// Maximum refreshes the DDR standard lets a rank postpone.
pub const MAX_POSTPONED: u32 = 8;

#[derive(Debug, Clone)]
struct RankState {
    next_due: Cycle,
    pending: u32,
    idle_since: Option<Cycle>,
    /// EWMA of observed idle-period lengths (cycles).
    avg_idle: f64,
}

/// The elastic refresh policy.
#[derive(Debug, Clone)]
pub struct ElasticRefresh {
    ranks: Vec<RankState>,
    refi: u64,
    rfc: u64,
}

impl ElasticRefresh {
    /// Creates the policy for `ranks` ranks.
    pub fn new(ranks: usize, timing: &TimingParams) -> Self {
        let refi = timing.refi_ab;
        Self {
            ranks: (0..ranks)
                .map(|_| RankState {
                    next_due: refi,
                    pending: 0,
                    idle_since: None,
                    avg_idle: timing.rfc_ab as f64,
                })
                .collect(),
            refi,
            rfc: timing.rfc_ab,
        }
    }

    /// Postponed refreshes for `rank` (for tests).
    pub fn pending(&self, rank: usize) -> u32 {
        self.ranks[rank].pending
    }

    /// Idle threshold before issuing with `pending` refreshes outstanding:
    /// proportional to the estimated idle-period length, shrinking linearly
    /// to zero at the forced limit.
    fn idle_threshold(&self, rank: usize, pending: u32) -> u64 {
        if pending >= MAX_POSTPONED {
            return 0;
        }
        let scale = (MAX_POSTPONED - pending) as f64 / MAX_POSTPONED as f64;
        ((self.ranks[rank].avg_idle.max(self.rfc as f64)) * scale) as u64
    }
}

impl RefreshPolicy for ElasticRefresh {
    fn name(&self) -> &'static str {
        "elastic"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        for r in 0..self.ranks.len() {
            // Track idleness and the idle-period estimator.
            let busy = ctx.queues.rank_has_demand(r);
            match (busy, self.ranks[r].idle_since) {
                (false, None) => self.ranks[r].idle_since = Some(ctx.now),
                (true, Some(since)) => {
                    let len = (ctx.now - since) as f64;
                    let s = &mut self.ranks[r];
                    s.avg_idle = 0.875 * s.avg_idle + 0.125 * len;
                    s.idle_since = None;
                }
                _ => {}
            }

            while ctx.now >= self.ranks[r].next_due {
                // Accrue, saturating at the standard's postponement cap
                // (beyond it we must already be forcing).
                self.ranks[r].pending = (self.ranks[r].pending + 1).min(MAX_POSTPONED);
                self.ranks[r].next_due += self.refi;
            }

            let pending = self.ranks[r].pending;
            if pending == 0 || ctx.chan.rank(r).is_refab_busy(ctx.now) {
                continue;
            }
            let target = RefreshTarget {
                rank: r,
                kind: RefreshKind::AllBank(FgrMode::X1),
            };
            if pending >= MAX_POSTPONED {
                return RefreshDirective::Urgent(target);
            }
            if let Some(since) = self.ranks[r].idle_since {
                if ctx.now - since >= self.idle_threshold(r, pending) {
                    return RefreshDirective::Urgent(target);
                }
            }
        }
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        let s = &mut self.ranks[target.rank];
        s.pending = s.pending.saturating_sub(1);
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for (r, s) in self.ranks.iter().enumerate() {
            if s.next_due <= now {
                return Some(now + 1); // unaccrued debt (decide returned early)
            }
            consider(s.next_due);
            // The idle-period estimator mutates on busy/idle edges; if the
            // tracked state disagrees with the queues (a request arrived
            // after this cycle's decide), the next decide call is a
            // non-idempotent mutation and must not be skipped.
            let busy = ctx.queues.rank_has_demand(r);
            match (busy, s.idle_since) {
                (false, None) | (true, Some(_)) => return Some(now + 1),
                _ => {}
            }
            if s.pending == 0 {
                continue;
            }
            let rank = ctx.chan.rank(r);
            if rank.is_refab_busy(now) {
                consider(rank.refab_until());
                continue;
            }
            if s.pending >= MAX_POSTPONED {
                return Some(now + 1); // would force right now
            }
            if let Some(since) = s.idle_since {
                let crossing = since + self.idle_threshold(r, s.pending);
                if now >= crossing {
                    return Some(now + 1); // idle threshold already met
                }
                consider(crossing);
            }
            // Busy rank below the cap: only accrual (next_due) changes its
            // state, and that is already in the minimum.
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use crate::request::Request;
    use dsarp_dram::{Density, DramChannel, Geometry, Location, Retention, SarpSupport};

    fn setup() -> (DramChannel, ElasticRefresh, TimingParams) {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        let chan = DramChannel::new(Geometry::paper_default(), t, SarpSupport::Disabled);
        (chan, ElasticRefresh::new(2, &t), t)
    }

    fn busy_queues(rank: usize) -> RequestQueues {
        let mut q = RequestQueues::paper_default();
        let loc = Location {
            channel: 0,
            rank,
            bank: 0,
            row: 0,
            col: 0,
        };
        q.try_push_read(Request::read(1, loc, 0, 0));
        q
    }

    #[test]
    fn postpones_while_rank_is_busy() {
        let (chan, mut p, t) = setup();
        let q = busy_queues(0);
        // Rank 0 busy: its refresh is postponed. Rank 1 idle: issued.
        let ctx = PolicyContext {
            now: t.refi_ab + 1,
            queues: &q,
            chan: &chan,
        };
        // First decide observes idleness start for rank 1; idle threshold
        // not yet met, so nothing fires immediately...
        let _ = p.decide(&ctx);
        assert_eq!(p.pending(0), 1);
        // ...but after a long idle stretch rank 1 fires.
        let later = t.refi_ab + 1 + 10 * t.rfc_ab;
        let ctx2 = PolicyContext {
            now: later,
            queues: &q,
            chan: &chan,
        };
        match p.decide(&ctx2) {
            RefreshDirective::Urgent(target) => assert_eq!(target.rank, 1),
            other => panic!("expected rank 1 refresh, got {other:?}"),
        }
    }

    #[test]
    fn forces_after_eight_postponements() {
        let (chan, mut p, t) = setup();
        let q = busy_queues(0);
        let now = 9 * t.refi_ab;
        let ctx = PolicyContext {
            now,
            queues: &q,
            chan: &chan,
        };
        // Rank 0 has been busy for 9 intervals: pending caps at 8 => forced
        // even though the rank is busy.
        match p.decide(&ctx) {
            RefreshDirective::Urgent(target) => {
                assert_eq!(target.rank, 0);
                assert_eq!(p.pending(0), 8);
            }
            other => panic!("expected forced refresh, got {other:?}"),
        }
    }

    #[test]
    fn threshold_shrinks_with_backlog() {
        let (_, p, _) = setup();
        let t0 = p.idle_threshold(0, 0);
        let t4 = p.idle_threshold(0, 4);
        let t7 = p.idle_threshold(0, 7);
        assert!(t0 > t4 && t4 > t7, "{t0} > {t4} > {t7}");
        assert_eq!(p.idle_threshold(0, 8), 0);
    }

    #[test]
    fn issue_decrements_backlog() {
        let (chan, mut p, t) = setup();
        let q = RequestQueues::paper_default();
        let now = 3 * t.refi_ab;
        let ctx = PolicyContext {
            now,
            queues: &q,
            chan: &chan,
        };
        let _ = p.decide(&ctx);
        let before = p.pending(0);
        p.refresh_issued(
            &RefreshTarget {
                rank: 0,
                kind: RefreshKind::AllBank(FgrMode::X1),
            },
            now,
        );
        assert_eq!(p.pending(0), before - 1);
    }
}
