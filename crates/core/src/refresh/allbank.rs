//! Baseline all-bank refresh (`REFab`, §2.2.1): one rank-level refresh every
//! `tREFIab`, issued on schedule with no postponement.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, FgrMode, TimingParams};

/// The commodity DDR refresh scheme: every `tREFIab` each rank owes one
/// `REFab`, which the controller issues as soon as it can precharge the
/// rank. Pending refreshes accumulate while a refresh is already in flight.
#[derive(Debug, Clone)]
pub struct AllBankRefresh {
    next_due: Vec<Cycle>,
    pending: Vec<u32>,
    refi: u64,
}

impl AllBankRefresh {
    /// Creates the policy for `ranks` ranks.
    pub fn new(ranks: usize, timing: &TimingParams) -> Self {
        let refi = timing.refi_ab;
        Self {
            next_due: vec![refi; ranks],
            pending: vec![0; ranks],
            refi,
        }
    }

    /// Outstanding (accrued, unissued) refreshes for `rank` (for tests).
    pub fn pending(&self, rank: usize) -> u32 {
        self.pending[rank]
    }

    fn accrue(&mut self, now: Cycle) {
        for r in 0..self.next_due.len() {
            while now >= self.next_due[r] {
                self.pending[r] += 1;
                self.next_due[r] += self.refi;
            }
        }
    }
}

impl RefreshPolicy for AllBankRefresh {
    fn name(&self) -> &'static str {
        "refab"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        self.accrue(ctx.now);
        for r in 0..self.pending.len() {
            if self.pending[r] > 0 && !ctx.chan.rank(r).is_refab_busy(ctx.now) {
                // SARP-ab refreshes do not set the blocking flag; avoid
                // requesting a second refresh while one is in flight.
                if ctx
                    .chan
                    .rank(r)
                    .banks()
                    .any(|b| b.sarp_refresh(ctx.now).is_some())
                {
                    continue;
                }
                return RefreshDirective::Urgent(RefreshTarget {
                    rank: r,
                    kind: RefreshKind::AllBank(FgrMode::X1),
                });
            }
        }
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        debug_assert!(matches!(target.kind, RefreshKind::AllBank(_)));
        self.pending[target.rank] = self.pending[target.rank].saturating_sub(1);
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for r in 0..self.next_due.len() {
            if self.next_due[r] <= now {
                return Some(now + 1); // unaccrued debt: no skipping
            }
            consider(self.next_due[r]);
            if self.pending[r] > 0 {
                let rank = ctx.chan.rank(r);
                if rank.is_refab_busy(now) {
                    consider(rank.refab_until());
                } else if let Some(until) = rank
                    .banks()
                    .filter_map(|b| b.sarp_refresh(now).map(|s| s.until))
                    .max()
                {
                    // SARP-ab gate clears once every in-flight window ends.
                    consider(until);
                } else {
                    return Some(now + 1); // decide would act right now
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use dsarp_dram::{Density, DramChannel, Geometry, Retention, SarpSupport};

    fn setup() -> (DramChannel, RequestQueues, AllBankRefresh, TimingParams) {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        let chan = DramChannel::new(Geometry::paper_default(), t, SarpSupport::Disabled);
        let q = RequestQueues::paper_default();
        let p = AllBankRefresh::new(2, &t);
        (chan, q, p, t)
    }

    #[test]
    fn quiet_before_first_interval() {
        let (chan, q, mut p, t) = setup();
        let ctx = PolicyContext {
            now: t.refi_ab - 1,
            queues: &q,
            chan: &chan,
        };
        assert_eq!(p.decide(&ctx), RefreshDirective::None);
    }

    #[test]
    fn urgent_at_interval_and_cleared_on_issue() {
        let (chan, q, mut p, t) = setup();
        let ctx = PolicyContext {
            now: t.refi_ab,
            queues: &q,
            chan: &chan,
        };
        let d = p.decide(&ctx);
        let target = match d {
            RefreshDirective::Urgent(t) => t,
            other => panic!("expected urgent, got {other:?}"),
        };
        assert_eq!(target.rank, 0);
        p.refresh_issued(&target, t.refi_ab);
        assert_eq!(p.pending(0), 0);
        // Rank 1 still owes one.
        match p.decide(&ctx) {
            RefreshDirective::Urgent(t2) => assert_eq!(t2.rank, 1),
            other => panic!("expected urgent for rank 1, got {other:?}"),
        }
    }

    #[test]
    fn obligations_accumulate_if_unserved() {
        let (chan, q, mut p, t) = setup();
        let ctx = PolicyContext {
            now: 3 * t.refi_ab + 1,
            queues: &q,
            chan: &chan,
        };
        let _ = p.decide(&ctx);
        assert_eq!(p.pending(0), 3);
        assert_eq!(p.pending(1), 3);
    }

    #[test]
    fn not_rerequested_while_in_flight() {
        let (mut chan, q, mut p, t) = setup();
        chan.issue(
            dsarp_dram::Command::RefreshAllBank {
                rank: 0,
                fgr: FgrMode::X1,
            },
            0,
        )
        .unwrap();
        let ctx = PolicyContext {
            now: t.refi_ab,
            queues: &q,
            chan: &chan,
        };
        // refi_ab (2600) > rfc_ab (234), so the refresh finished: rank 0 ok.
        match p.decide(&ctx) {
            RefreshDirective::Urgent(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        // But while one is mid-flight, the rank is skipped.
        let mut chan2 = DramChannel::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1333(Density::G8, Retention::Ms32),
            SarpSupport::Disabled,
        );
        chan2
            .issue(
                dsarp_dram::Command::RefreshAllBank {
                    rank: 0,
                    fgr: FgrMode::X1,
                },
                t.refi_ab - 1,
            )
            .unwrap();
        let ctx2 = PolicyContext {
            now: t.refi_ab,
            queues: &q,
            chan: &chan2,
        };
        match p.decide(&ctx2) {
            RefreshDirective::Urgent(t2) => {
                assert_eq!(t2.rank, 1, "rank 0 is busy; rank 1 serves its debt")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
