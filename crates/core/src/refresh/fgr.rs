//! DDR4 Fine Granularity Refresh (paper §6.5): all-bank refresh at 2× or 4×
//! the command rate with sub-linearly shorter `tRFCab`.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, FgrMode, TimingParams};

/// Fixed-mode FGR. Identical scheduling to the `REFab` baseline, but every
/// command is issued in the configured mode, with `tREFIab` divided by the
/// rate. Because `tRFCab` shrinks by only 1.35×/1.63× while the rate grows
/// 2×/4×, the total refresh-busy time *increases* — the paper's Figure 16
/// shows FGR losing to plain `REFab`, and this implementation reproduces
/// that.
#[derive(Debug, Clone)]
pub struct FgrRefresh {
    mode: FgrMode,
    next_due: Vec<Cycle>,
    pending: Vec<u32>,
    refi: u64,
}

impl FgrRefresh {
    /// Creates the policy for `ranks` ranks in `mode`.
    pub fn new(ranks: usize, timing: &TimingParams, mode: FgrMode) -> Self {
        let refi = timing.refi_ab_for(mode);
        Self {
            mode,
            next_due: vec![refi; ranks],
            pending: vec![0; ranks],
            refi,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> FgrMode {
        self.mode
    }
}

impl RefreshPolicy for FgrRefresh {
    fn name(&self) -> &'static str {
        match self.mode {
            FgrMode::X1 => "fgr1x",
            FgrMode::X2 => "fgr2x",
            FgrMode::X4 => "fgr4x",
        }
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        for r in 0..self.next_due.len() {
            while ctx.now >= self.next_due[r] {
                self.pending[r] += 1;
                self.next_due[r] += self.refi;
            }
            if self.pending[r] > 0 && !ctx.chan.rank(r).is_refab_busy(ctx.now) {
                return RefreshDirective::Urgent(RefreshTarget {
                    rank: r,
                    kind: RefreshKind::AllBank(self.mode),
                });
            }
        }
        RefreshDirective::None
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        self.pending[target.rank] = self.pending[target.rank].saturating_sub(1);
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for r in 0..self.next_due.len() {
            if self.next_due[r] <= now {
                return Some(now + 1); // unaccrued debt (decide returned early)
            }
            consider(self.next_due[r]);
            if self.pending[r] > 0 {
                let rank = ctx.chan.rank(r);
                if rank.is_refab_busy(now) {
                    consider(rank.refab_until());
                } else {
                    return Some(now + 1); // decide would act right now
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use dsarp_dram::{Density, DramChannel, Geometry, Retention, SarpSupport};

    #[test]
    fn four_x_mode_refreshes_four_times_as_often() {
        let t = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        let chan = DramChannel::new(Geometry::paper_default(), t, SarpSupport::Disabled);
        let q = RequestQueues::paper_default();
        let mut p = FgrRefresh::new(1, &t, FgrMode::X4);
        let ctx = PolicyContext {
            now: t.refi_ab,
            queues: &q,
            chan: &chan,
        };
        let _ = p.decide(&ctx);
        assert_eq!(p.pending[0], 4);
        assert_eq!(p.mode(), FgrMode::X4);
    }

    #[test]
    fn worst_case_busy_time_exceeds_refab() {
        // rate * tRFC(mode) > tRFC(1x): the §6.5 pathology.
        let t = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        for (mode, min_ratio) in [(FgrMode::X2, 1.4), (FgrMode::X4, 2.4)] {
            let busy = (mode.rate() * t.rfc_ab_for(mode)) as f64;
            let base = t.rfc_ab_for(FgrMode::X1) as f64;
            assert!(busy / base > min_ratio, "{mode}: {}", busy / base);
        }
    }
}
