//! DARP — Dynamic Access Refresh Parallelization (paper §4.2).
//!
//! Two components:
//!
//! 1. **Out-of-order per-bank refresh** (Fig. 8): the per-bank refresh
//!    schedule ticks every `tREFIpb`, designating banks round-robin. A due
//!    bank with pending demand requests is *postponed* (its refresh debt
//!    grows); on cycles when no demand command can issue, the controller
//!    instead refreshes a *random idle bank* — either catching up postponed
//!    refreshes or *pulling in* future ones.
//! 2. **Write-refresh parallelization** (Algorithm 1): while the channel
//!    drains its write batch (writeback mode), proactively refresh the bank
//!    with the fewest pending demands, hiding `tRFCpb` behind the writes.
//!
//! Bookkeeping follows the **erratum**: each bank's *refresh debt* is the
//! number of its scheduled refreshes not yet performed. Debt is bounded to
//! `[-8, +8]` — at most 8 postponed (more would violate retention) and at
//! most 8 pulled in (the standard's flexibility window). A bank hitting
//! debt = +8 forces a refresh that outranks demand requests. The
//! `dsarp-dram` retention tracker verifies the resulting gap bound in the
//! workspace integration tests.

use super::{PolicyContext, RefreshDirective, RefreshKind, RefreshPolicy, RefreshTarget};
use dsarp_dram::{Cycle, TimingParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Maximum refreshes a bank may be behind (postponed) or ahead (pulled in).
pub const MAX_DEBT: i32 = 8;

#[derive(Debug, Clone)]
struct RankState {
    next_tick: Cycle,
    rr: usize,
    debt: Vec<i32>,
}

/// The DARP refresh scheduler.
#[derive(Debug)]
pub struct Darp {
    ranks: Vec<RankState>,
    refi_pb: u64,
    /// Enable write-refresh parallelization (off for the §6.1.2 breakdown).
    wrp: bool,
    rng: SmallRng,
    stats: DarpStats,
    /// Source of the most recently proposed target, for stats attribution
    /// when the controller actually issues it.
    proposal: Option<(RefreshTarget, Source)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Forced,
    WriteParallelized,
    Opportunistic,
}

/// Counters exposing how DARP earned its refreshes (for analysis and the
/// §6.1.2 component breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DarpStats {
    /// Refreshes forced by a bank reaching the postponement limit.
    pub forced: u64,
    /// Refreshes issued during writeback mode by Algorithm 1.
    pub write_parallelized: u64,
    /// Refreshes issued opportunistically to idle banks (Fig. 8 ③).
    pub opportunistic: u64,
    /// Refreshes that served *postponed* debt (the bank was behind
    /// schedule when the refresh issued).
    pub postponed_catchup: u64,
    /// Refreshes *pulled in* ahead of schedule (the bank was at or ahead
    /// of schedule when the refresh issued).
    pub pulled_in: u64,
}

impl Darp {
    /// Creates the scheduler for `ranks` ranks of `banks` banks.
    /// `wrp` enables the write-refresh parallelization component.
    pub fn new(ranks: usize, banks: usize, timing: &TimingParams, seed: u64, wrp: bool) -> Self {
        let refi_pb = timing.refi_pb;
        Self {
            ranks: (0..ranks)
                .map(|_| RankState {
                    next_tick: refi_pb,
                    rr: 0,
                    debt: vec![0; banks],
                })
                .collect(),
            refi_pb,
            wrp,
            rng: SmallRng::seed_from_u64(seed ^ 0xDA29),
            stats: DarpStats::default(),
            proposal: None,
        }
    }

    /// Current refresh debt of (rank, bank). Positive = postponed refreshes
    /// owed; negative = refreshes pulled in ahead of schedule.
    pub fn debt(&self, rank: usize, bank: usize) -> i32 {
        self.ranks[rank].debt[bank]
    }

    /// Issue-source counters.
    pub fn stats(&self) -> &DarpStats {
        &self.stats
    }

    fn advance_ticks(&mut self, now: Cycle) {
        for r in &mut self.ranks {
            while now >= r.next_tick {
                // The scheduled bank accrues one more owed refresh. The
                // forced rule below keeps this at +8 in practice; the +1
                // headroom absorbs the cycles while a forced refresh waits
                // for the bank to precharge.
                r.debt[r.rr] = (r.debt[r.rr] + 1).min(MAX_DEBT + 1);
                r.rr = (r.rr + 1) % r.debt.len();
                r.next_tick += self.refi_pb;
            }
        }
    }

    /// Whether (rank, bank) can physically accept a `REFpb` right now.
    fn bank_refreshable(ctx: &PolicyContext<'_>, rank: usize, bank: usize) -> bool {
        let rk = ctx.chan.rank(rank);
        !rk.is_refpb_busy(ctx.now)
            && !rk.is_refab_busy(ctx.now)
            && !rk.bank(bank).is_refresh_busy(ctx.now)
            && rk.bank(bank).sarp_refresh(ctx.now).is_none()
    }
}

impl RefreshPolicy for Darp {
    fn name(&self) -> &'static str {
        if self.wrp {
            "darp"
        } else {
            "darp-ooo"
        }
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> RefreshDirective {
        self.advance_ticks(ctx.now);

        // 1. Forced: a bank at the postponement limit outranks demands.
        for (r, st) in self.ranks.iter().enumerate() {
            if ctx.chan.rank(r).is_refpb_busy(ctx.now) {
                continue;
            }
            if let Some((bank, _)) = st
                .debt
                .iter()
                .enumerate()
                .filter(|&(b, &d)| d >= MAX_DEBT && Self::bank_refreshable(ctx, r, b))
                .map(|(b, &d)| (b, d))
                .max_by_key(|&(_, d)| d)
            {
                let target = RefreshTarget {
                    rank: r,
                    kind: RefreshKind::PerBank { bank },
                };
                self.proposal = Some((target, Source::Forced));
                return RefreshDirective::Urgent(target);
            }
        }

        // 2. Write-refresh parallelization (Algorithm 1): during writeback
        //    mode, refresh the bank with the fewest pending demands.
        if self.wrp && ctx.queues.in_drain_mode() {
            for (r, st) in self.ranks.iter().enumerate() {
                if ctx.chan.rank(r).is_refpb_busy(ctx.now) {
                    continue;
                }
                let candidate = (0..st.debt.len())
                    .filter(|&b| st.debt[b] > -MAX_DEBT && Self::bank_refreshable(ctx, r, b))
                    .min_by_key(|&b| ctx.queues.demand_count(r, b));
                if let Some(bank) = candidate {
                    let target = RefreshTarget {
                        rank: r,
                        kind: RefreshKind::PerBank { bank },
                    };
                    self.proposal = Some((target, Source::WriteParallelized));
                    return RefreshDirective::Urgent(target);
                }
            }
        }

        // 3. Out-of-order refresh of an idle bank (Fig. 8 ③), served only if
        //    no demand command issues this cycle. Prefer catching up
        //    postponed debt, then pull-ins; pick randomly among candidates.
        let mut postponed: Vec<(usize, usize)> = Vec::new();
        let mut pullable: Vec<(usize, usize)> = Vec::new();
        for (r, st) in self.ranks.iter().enumerate() {
            if ctx.chan.rank(r).is_refpb_busy(ctx.now) {
                continue;
            }
            for b in 0..st.debt.len() {
                if ctx.queues.bank_has_demand(r, b)
                    || st.debt[b] <= -MAX_DEBT
                    || !Self::bank_refreshable(ctx, r, b)
                {
                    continue;
                }
                if st.debt[b] > 0 {
                    postponed.push((r, b));
                } else {
                    pullable.push((r, b));
                }
            }
        }
        let pool = if !postponed.is_empty() {
            &postponed
        } else {
            &pullable
        };
        if pool.is_empty() {
            return RefreshDirective::None;
        }
        let (rank, bank) = pool[self.rng.gen_range(0..pool.len())];
        let target = RefreshTarget {
            rank,
            kind: RefreshKind::PerBank { bank },
        };
        self.proposal = Some((target, Source::Opportunistic));
        RefreshDirective::Relaxed(target)
    }

    fn refresh_issued(&mut self, target: &RefreshTarget, _now: Cycle) {
        let RefreshKind::PerBank { bank } = target.kind else {
            panic!("DARP issued a non-per-bank refresh");
        };
        let d = &mut self.ranks[target.rank].debt[bank];
        // Debt sign *before* the decrement distinguishes catching up
        // postponed refreshes from pulling future ones in (§4.2.2).
        if *d > 0 {
            self.stats.postponed_catchup += 1;
        } else {
            self.stats.pulled_in += 1;
        }
        *d -= 1;
        debug_assert!(*d >= -MAX_DEBT, "pull-in bound violated");
        let source = match self.proposal.take() {
            Some((t, s)) if t == *target => s,
            _ => Source::Opportunistic,
        };
        match source {
            Source::Forced => self.stats.forced += 1,
            Source::WriteParallelized => self.stats.write_parallelized += 1,
            Source::Opportunistic => self.stats.opportunistic += 1,
        }
    }

    fn next_event(&self, ctx: &PolicyContext<'_>) -> Option<Cycle> {
        let now = ctx.now;
        // Unaccrued ticks: decide must run to advance debt.
        for st in &self.ranks {
            if st.next_tick <= now {
                return Some(now + 1);
            }
        }
        // Would decide() act right now? Replicate its scans read-only (no
        // RNG draw — decide only consumes randomness when its candidate
        // pool is non-empty, which is exactly the would-act case reported
        // as `now + 1` here, so the RNG stream is preserved across skips).
        for (r, st) in self.ranks.iter().enumerate() {
            if ctx.chan.rank(r).is_refpb_busy(now) {
                continue;
            }
            if st
                .debt
                .iter()
                .enumerate()
                .any(|(b, &d)| d >= MAX_DEBT && Self::bank_refreshable(ctx, r, b))
            {
                return Some(now + 1); // forced refresh due
            }
        }
        if self.wrp && ctx.queues.in_drain_mode() {
            for (r, st) in self.ranks.iter().enumerate() {
                if ctx.chan.rank(r).is_refpb_busy(now) {
                    continue;
                }
                if (0..st.debt.len())
                    .any(|b| st.debt[b] > -MAX_DEBT && Self::bank_refreshable(ctx, r, b))
                {
                    return Some(now + 1); // Algorithm 1 would fire
                }
            }
        }
        for (r, st) in self.ranks.iter().enumerate() {
            if ctx.chan.rank(r).is_refpb_busy(now) {
                continue;
            }
            for b in 0..st.debt.len() {
                if !ctx.queues.bank_has_demand(r, b)
                    && st.debt[b] > -MAX_DEBT
                    && Self::bank_refreshable(ctx, r, b)
                {
                    return Some(now + 1); // opportunistic pool non-empty
                }
            }
        }
        // Nothing actionable now: wake when a tick accrues or when a
        // candidate bank's refresh blockers have all cleared.
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for (r, st) in self.ranks.iter().enumerate() {
            consider(st.next_tick);
            let rk = ctx.chan.rank(r);
            for (b, &d) in st.debt.iter().enumerate() {
                let forced_candidate = d >= MAX_DEBT;
                let pool_candidate = d > -MAX_DEBT && !ctx.queues.bank_has_demand(r, b);
                if !forced_candidate && !pool_candidate {
                    continue;
                }
                // The bank becomes refreshable when *all* active blockers
                // expire; their maximum is exact while nothing new issues.
                let mut clear = now + 1;
                let mut blocked = false;
                if rk.is_refpb_busy(now) {
                    if let Some(free) = rk.refpb_slot_free(now) {
                        clear = clear.max(free);
                        blocked = true;
                    }
                }
                if rk.is_refab_busy(now) {
                    clear = clear.max(rk.refab_until());
                    blocked = true;
                }
                let bank = rk.bank(b);
                if bank.is_refresh_busy(now) {
                    clear = clear.max(bank.refresh_until());
                    blocked = true;
                }
                if let Some(s) = bank.sarp_refresh(now) {
                    clear = clear.max(s.until);
                    blocked = true;
                }
                if !blocked {
                    // Refreshable already — the would-act scans above must
                    // have caught it; be conservative regardless.
                    return Some(now + 1);
                }
                consider(clear);
            }
        }
        next
    }

    fn telemetry(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("darp_forced", self.stats.forced),
            ("darp_write_parallelized", self.stats.write_parallelized),
            ("darp_opportunistic", self.stats.opportunistic),
            ("darp_postponed_catchup", self.stats.postponed_catchup),
            ("darp_pulled_in", self.stats.pulled_in),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::RequestQueues;
    use crate::request::Request;
    use dsarp_dram::{Density, DramChannel, Geometry, Location, Retention, SarpSupport};

    fn timing() -> TimingParams {
        TimingParams::ddr3_1333(Density::G8, Retention::Ms32)
    }

    fn chan() -> DramChannel {
        DramChannel::new(Geometry::paper_default(), timing(), SarpSupport::Disabled)
    }

    fn req(rank: usize, bank: usize) -> Request {
        Request::read(
            1,
            Location {
                channel: 0,
                rank,
                bank,
                row: 0,
                col: 0,
            },
            0,
            0,
        )
    }

    #[test]
    fn ticks_accrue_debt_round_robin() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 1, true);
        let c = chan();
        let q = RequestQueues::paper_default();
        // Queue demand on every bank so nothing is refreshable-idle and no
        // pull-ins mask the tick accounting.
        let mut q_busy = q.clone();
        for b in 0..8 {
            q_busy.try_push_read(req(0, b));
        }
        let ctx = PolicyContext {
            now: 3 * t.refi_pb,
            queues: &q_busy,
            chan: &c,
        };
        let _ = p.decide(&ctx);
        assert_eq!(p.debt(0, 0), 1);
        assert_eq!(p.debt(0, 1), 1);
        assert_eq!(p.debt(0, 2), 1);
        assert_eq!(p.debt(0, 3), 0);
    }

    #[test]
    fn postponement_grows_debt_of_busy_bank() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 1, true);
        let c = chan();
        let mut q = RequestQueues::paper_default();
        for b in 0..8 {
            q.try_push_read(req(0, b));
        }
        // 24 ticks = 3 full rounds; every bank postponed 3 times.
        let ctx = PolicyContext {
            now: 24 * t.refi_pb,
            queues: &q,
            chan: &c,
        };
        assert_eq!(
            p.decide(&ctx),
            RefreshDirective::None,
            "all banks busy, none forced yet"
        );
        for b in 0..8 {
            assert_eq!(p.debt(0, b), 3);
        }
    }

    #[test]
    fn forced_refresh_at_debt_limit_outranks_demands() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 1, true);
        let c = chan();
        let mut q = RequestQueues::paper_default();
        for b in 0..8 {
            q.try_push_read(req(0, b));
        }
        // 64 ticks = 8 rounds → every bank at the +8 limit.
        let ctx = PolicyContext {
            now: 64 * t.refi_pb,
            queues: &q,
            chan: &c,
        };
        match p.decide(&ctx) {
            RefreshDirective::Urgent(target) => {
                assert_eq!(target.rank, 0);
                assert!(matches!(target.kind, RefreshKind::PerBank { .. }));
                p.refresh_issued(&target, 64 * t.refi_pb);
                assert_eq!(p.stats().forced, 1);
            }
            other => panic!("expected forced urgent refresh, got {other:?}"),
        }
    }

    #[test]
    fn pull_in_prefers_idle_banks_and_respects_floor() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 7, true);
        let c = chan();
        let mut q = RequestQueues::paper_default();
        // Banks 0..6 busy; bank 7 idle.
        for b in 0..7 {
            q.try_push_read(req(0, b));
        }
        let ctx = PolicyContext {
            now: 1,
            queues: &q,
            chan: &c,
        };
        match p.decide(&ctx) {
            RefreshDirective::Relaxed(target) => {
                assert_eq!(target.kind, RefreshKind::PerBank { bank: 7 });
            }
            other => panic!("expected relaxed pull-in, got {other:?}"),
        }
        // Drive bank 7 to the pull-in floor.
        for _ in 0..MAX_DEBT {
            p.refresh_issued(
                &RefreshTarget {
                    rank: 0,
                    kind: RefreshKind::PerBank { bank: 7 },
                },
                1,
            );
        }
        assert_eq!(p.debt(0, 7), -MAX_DEBT);
        let ctx2 = PolicyContext {
            now: 2,
            queues: &q,
            chan: &c,
        };
        assert_eq!(
            p.decide(&ctx2),
            RefreshDirective::None,
            "no candidate once the only idle bank hits -8"
        );
    }

    #[test]
    fn postponed_banks_catch_up_before_new_pull_ins() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 3, true);
        let c = chan();
        // Make bank 0 postponed (debt > 0) while it is busy...
        let mut q = RequestQueues::paper_default();
        q.try_push_read(req(0, 0));
        let ctx = PolicyContext {
            now: t.refi_pb,
            queues: &q,
            chan: &c,
        };
        let _ = p.decide(&ctx);
        assert_eq!(p.debt(0, 0), 1);
        // ...then it goes idle: the postponed bank must be chosen over
        // random zero-debt banks.
        let q_idle = RequestQueues::paper_default();
        let ctx2 = PolicyContext {
            now: t.refi_pb + 1,
            queues: &q_idle,
            chan: &c,
        };
        match p.decide(&ctx2) {
            RefreshDirective::Relaxed(target) => {
                assert_eq!(target.kind, RefreshKind::PerBank { bank: 0 });
            }
            other => panic!("expected catch-up on bank 0, got {other:?}"),
        }
    }

    #[test]
    fn write_drain_triggers_algorithm_one() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 3, true);
        let c = chan();
        let mut q = RequestQueues::new(64, 64, 4, 2);
        // Fill the write queue past the high watermark: bank 2 has the
        // fewest (zero) demands.
        for i in 0..4 {
            let bank = [0usize, 0, 1, 3][i as usize];
            q.try_push_write(Request::write(
                i,
                Location {
                    channel: 0,
                    rank: 0,
                    bank,
                    row: 0,
                    col: 0,
                },
                0,
                0,
            ));
        }
        q.update_drain_mode();
        assert!(q.in_drain_mode());
        let ctx = PolicyContext {
            now: 5,
            queues: &q,
            chan: &c,
        };
        match p.decide(&ctx) {
            RefreshDirective::Urgent(target) => {
                let RefreshKind::PerBank { bank } = target.kind else {
                    unreachable!()
                };
                assert_eq!(q.demand_count(0, bank), 0, "min-demand bank selected");
                p.refresh_issued(&target, 5);
                assert_eq!(p.stats().write_parallelized, 1);
            }
            other => panic!("expected Algorithm 1 refresh, got {other:?}"),
        }
    }

    #[test]
    fn wrp_disabled_for_component_breakdown() {
        let t = timing();
        let mut p = Darp::new(1, 8, &t, 3, false);
        let c = chan();
        let mut q = RequestQueues::new(64, 64, 2, 1);
        q.try_push_write(Request::write(
            0,
            Location {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
            },
            0,
            0,
        ));
        q.try_push_write(Request::write(
            1,
            Location {
                channel: 0,
                rank: 0,
                bank: 1,
                row: 0,
                col: 0,
            },
            0,
            0,
        ));
        q.update_drain_mode();
        assert!(q.in_drain_mode());
        let ctx = PolicyContext {
            now: 5,
            queues: &q,
            chan: &c,
        };
        // Without WRP the drain mode does not produce urgent refreshes; the
        // idle banks still get relaxed pull-ins.
        match p.decide(&ctx) {
            RefreshDirective::Relaxed(_) => {}
            other => panic!("expected relaxed only, got {other:?}"),
        }
        assert_eq!(p.stats().write_parallelized, 0);
    }

    #[test]
    fn debt_never_leaves_bounds() {
        let t = timing();
        let mut p = Darp::new(2, 8, &t, 11, true);
        let c = chan();
        let q = RequestQueues::paper_default();
        let mut now = 0;
        for step in 0..5_000u64 {
            now += 13;
            let ctx = PolicyContext {
                now,
                queues: &q,
                chan: &c,
            };
            match p.decide(&ctx) {
                RefreshDirective::Urgent(target) | RefreshDirective::Relaxed(target) => {
                    if step % 3 != 0 {
                        p.refresh_issued(&target, now);
                    }
                }
                RefreshDirective::None => {}
            }
            for r in 0..2 {
                for b in 0..8 {
                    let d = p.debt(r, b);
                    assert!(
                        (-MAX_DEBT..=MAX_DEBT + 1).contains(&d),
                        "debt {d} out of range"
                    );
                }
            }
        }
    }
}
