//! Demand requests as seen by the memory controller.

use dsarp_dram::{Cycle, Location};
use serde::{Deserialize, Serialize};

/// One memory request (a cache-line read fill or an LLC writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique request id (reads: matched against [`crate::Completion`];
    /// writes: informational).
    pub id: u64,
    /// Decoded DRAM location.
    pub loc: Location,
    /// `true` for writebacks.
    pub is_write: bool,
    /// Originating core (writebacks carry the evicting core for stats).
    pub core: usize,
    /// DRAM cycle the request entered the controller.
    pub arrival: Cycle,
}

impl Request {
    /// Creates a read (line-fill) request.
    pub fn read(id: u64, loc: Location, core: usize, arrival: Cycle) -> Self {
        Self {
            id,
            loc,
            is_write: false,
            core,
            arrival,
        }
    }

    /// Creates a writeback request.
    pub fn write(id: u64, loc: Location, core: usize, arrival: Cycle) -> Self {
        Self {
            id,
            loc,
            is_write: true,
            core,
            arrival,
        }
    }

    /// Whether this request targets the given (rank, bank).
    pub fn targets_bank(&self, rank: usize, bank: usize) -> bool {
        self.loc.rank == rank && self.loc.bank == bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsarp_dram::Geometry;

    #[test]
    fn constructors_set_direction() {
        let loc = Geometry::paper_default().decode(0x1234_0000);
        let r = Request::read(1, loc, 3, 10);
        let w = Request::write(2, loc, 3, 11);
        assert!(!r.is_write);
        assert!(w.is_write);
        assert_eq!(r.core, 3);
        assert!(r.targets_bank(loc.rank, loc.bank));
        assert!(!r.targets_bank(loc.rank, loc.bank + 1));
    }
}
