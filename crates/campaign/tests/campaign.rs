//! End-to-end properties of the campaign engine, including the acceptance
//! criteria: an identical re-run performs zero simulation, and a campaign
//! killed mid-run resumes to results byte-identical to an uninterrupted
//! run.

use dsarp_campaign::{Campaign, CampaignReport, CampaignSpec, SweepSpec, WorkloadSet};
use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::experiments::harness::{Grid, Scale};
use dsarp_sim::experiments::report;
use dsarp_sim::SimConfig;
use std::path::PathBuf;

fn tiny_scale() -> Scale {
    Scale {
        dram_cycles: 2_000,
        alone_cycles: 1_000,
        per_category: 1,
        threads: 2,
        warmup_ops: 500,
    }
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec::new("tiny", tiny_scale())
        .with_sweep(SweepSpec::new(
            "demo",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::Dsarp],
            &[Density::G8],
        ))
        .with_sweep(SweepSpec::new(
            "demo-extended",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::RefPb],
            &[Density::G8],
        ))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dsarp-campaign-int-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders every grid of a report to one comparable CSV blob.
fn render(report: &CampaignReport) -> String {
    let mut out = String::new();
    for (name, grid) in &report.grids {
        out.push_str(name);
        out.push('\n');
        out.push_str(&report::to_csv(grid.rows()));
    }
    out
}

#[test]
fn rerun_performs_zero_simulation_and_is_byte_identical() {
    let dir = tmpdir("rerun");
    let first = Campaign::open(&dir, tiny_spec()).unwrap().run().unwrap();
    assert!(first.stats.simulated > 0, "cold run must simulate");
    assert_eq!(first.stats.cache_hits, 0);
    // The two sweeps share the RefAb cells and all alone jobs.
    assert!(
        first.stats.deduped_in_flight() > 0,
        "in-flight dedup must kick in"
    );

    let second = Campaign::open(&dir, tiny_spec()).unwrap().run().unwrap();
    assert_eq!(
        second.stats.simulated, 0,
        "warm re-run must not simulate at all"
    );
    assert_eq!(second.stats.cache_hits, second.stats.unique_jobs);
    assert_eq!(
        render(&first),
        render(&second),
        "artifacts must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killed_run_resumes_byte_identical() {
    // Reference: one uninterrupted run.
    let ref_dir = tmpdir("kill-ref");
    let reference = Campaign::open(&ref_dir, tiny_spec())
        .unwrap()
        .run()
        .unwrap();

    // "Killed" run: complete store, then destroy part of it — delete one
    // whole shard and tear the final line of another, exactly what a
    // mid-append kill leaves behind.
    let dir = tmpdir("kill");
    Campaign::open(&dir, tiny_spec()).unwrap().run().unwrap();
    let shards_dir = dir.join("tiny").join("shards");
    let mut shard_files: Vec<PathBuf> = std::fs::read_dir(&shards_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    shard_files.sort();
    assert!(
        shard_files.len() >= 2,
        "need >= 2 shards to damage, got {}",
        shard_files.len()
    );
    std::fs::remove_file(&shard_files[0]).unwrap();
    let torn = std::fs::read_to_string(&shard_files[1]).unwrap();
    let keep = torn.len() / 2; // cuts mid-line
    std::fs::write(&shard_files[1], &torn[..keep.max(1)]).unwrap();

    let resumed = Campaign::open(&dir, tiny_spec()).unwrap().run().unwrap();
    assert!(resumed.stats.simulated > 0, "damaged records must re-run");
    assert!(
        resumed.stats.simulated < resumed.stats.unique_jobs,
        "surviving records must be reused"
    );
    assert_eq!(
        render(&reference),
        render(&resumed),
        "resumed campaign must equal an uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn partial_campaign_then_full_reuses_overlap() {
    let dir = tmpdir("partial");
    // First a narrower campaign (as if the box went down before the
    // remaining sweeps were added), then the full one.
    let narrow = tiny_spec().filtered(&["demo-extended"]);
    let narrow_report = Campaign::open(&dir, {
        let mut n = narrow;
        n.name = "tiny".into(); // same store
        n
    })
    .unwrap()
    .run()
    .unwrap();
    let full = Campaign::open(&dir, tiny_spec()).unwrap().run().unwrap();
    assert!(full.stats.cache_hits >= narrow_report.stats.unique_jobs);
    assert!(full.stats.simulated > 0, "the new sweep's cells still run");

    // And the combined result matches a from-scratch full run.
    let fresh_dir = tmpdir("partial-fresh");
    let fresh = Campaign::open(&fresh_dir, tiny_spec())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(render(&fresh), render(&full));
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(fresh_dir);
}

#[test]
fn campaign_grid_matches_direct_grid_compute() {
    let scale = tiny_scale();
    let spec = CampaignSpec::new("parity", scale).with_sweep(SweepSpec::new(
        "demo",
        WorkloadSet::Intensive { cores: 2 },
        &[Mechanism::RefAb, Mechanism::Dsarp],
        &[Density::G8],
    ));
    let dir = tmpdir("parity");
    let report = Campaign::open(&dir, spec).unwrap().run().unwrap();
    let campaign_grid = report.grid("demo");

    let workloads = scale.intensive_workloads_with_seed(2, spec_seed());
    let direct = Grid::compute_with(
        &workloads,
        &[Mechanism::RefAb, Mechanism::Dsarp],
        &[Density::G8],
        &scale,
        |m, d| SimConfig::paper(*m, *d).with_cores(2),
    );
    assert_eq!(campaign_grid.rows().len(), direct.rows().len());
    for row in direct.rows() {
        let got = campaign_grid
            .get(&row.workload, row.mechanism, row.density)
            .unwrap_or_else(|| panic!("campaign grid missing {}", row.workload));
        assert_eq!(got, row, "campaign cell must equal the direct computation");
    }
    let _ = std::fs::remove_dir_all(dir);
}

fn spec_seed() -> u64 {
    dsarp_sim::experiments::harness::WORKLOAD_SEED
}

/// Every record line of a campaign store, sorted — append order across
/// worker threads is racy, so byte-identity is asserted on the sorted
/// line set, not on raw shard files.
fn sorted_record_lines(campaign_dir: &std::path::Path) -> Vec<String> {
    let mut lines = Vec::new();
    for shard in 0..dsarp_campaign::store::SHARDS {
        let path = dsarp_campaign::Store::shard_file(campaign_dir, shard);
        if let Ok(text) = std::fs::read_to_string(path) {
            lines.extend(text.lines().map(|l| format!("{shard:02} {l}")));
        }
    }
    lines.sort();
    lines
}

/// The acceptance criterion for `--telemetry`: sampling is observationally
/// pure. The record lines and grids of a telemetry run are byte-identical
/// to a plain run's; the telemetry lands exclusively in sidecar files, one
/// parseable `SimTelemetry` per simulated cell.
#[test]
fn telemetry_sidecars_leave_records_and_grids_byte_identical() {
    let plain_dir = tmpdir("tele-off");
    let tele_dir = tmpdir("tele-on");
    let plain = Campaign::open(&plain_dir, tiny_spec())
        .unwrap()
        .run()
        .unwrap();
    let mut campaign = Campaign::open(&tele_dir, tiny_spec()).unwrap();
    campaign.telemetry = true;
    let tele = campaign.run().unwrap();
    assert!(plain.stats.simulated > 0 && tele.stats.simulated == plain.stats.simulated);

    assert_eq!(
        render(&plain),
        render(&tele),
        "grids must be byte-identical with telemetry on"
    );
    assert_eq!(
        sorted_record_lines(&plain_dir.join("tiny")),
        sorted_record_lines(&tele_dir.join("tiny")),
        "record lines must be byte-identical with telemetry on"
    );

    let sidecars: Vec<_> = std::fs::read_dir(tele_dir.join("tiny").join("telemetry"))
        .expect("telemetry sidecar dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    assert_eq!(
        sidecars.len(),
        tele.stats.simulated,
        "one sidecar per simulated cell"
    );
    for path in sidecars {
        let text = std::fs::read_to_string(&path).unwrap();
        let telemetry: dsarp_sim::SimTelemetry = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("unparseable sidecar {}: {e}", path.display()));
        assert!(
            telemetry.dram_cycles > 0,
            "sidecar {} must carry a sampled run",
            path.display()
        );
    }
    assert!(
        !plain_dir.join("tiny").join("telemetry").exists(),
        "a plain run must not create the sidecar directory"
    );
    let _ = std::fs::remove_dir_all(plain_dir);
    let _ = std::fs::remove_dir_all(tele_dir);
}

/// Reads every telemetry sidecar of a campaign as `(file name, bytes)`,
/// sorted by name (names are job fingerprints, so order is stable).
fn sidecar_bytes(campaign_dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(campaign_dir.join("telemetry"))
        .expect("telemetry sidecar dir")
        .filter_map(Result::ok)
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// FNV-1a-128 fingerprints of everything a campaign run leaves behind:
/// the rendered grid CSVs, the sorted record lines, and the concatenated
/// telemetry sidecars (name-tagged). Any observable drift in scheduling,
/// stats, or serialization shows up as a changed fingerprint.
fn snapshot_fingerprints(campaign_dir: &std::path::Path, report: &CampaignReport) -> [String; 3] {
    use dsarp_campaign::fingerprint::fingerprint_bytes;
    let grids = fingerprint_bytes(render(report).as_bytes()).to_string();
    let records =
        fingerprint_bytes(sorted_record_lines(campaign_dir).join("\n").as_bytes()).to_string();
    let mut blob = Vec::new();
    for (name, bytes) in sidecar_bytes(campaign_dir) {
        blob.extend_from_slice(name.as_bytes());
        blob.push(0);
        blob.extend_from_slice(&bytes);
    }
    [grids, records, fingerprint_bytes(&blob).to_string()]
}

/// The purity pin for the indexed FR-FCFS scheduler: the Table-3 2-core
/// paper subset must reproduce the *exact* artifacts the pre-index scan
/// scheduler produced — grids, sorted record lines, and telemetry
/// sidecars all hash to the snapshots captured before the per-bank index
/// landed, under both skip-ahead and forced per-cycle stepping. A change
/// to FR-FCFS tie-breaking, RunStats, or sidecar serialization trips
/// this even if the two stepping modes still agree with each other.
#[test]
fn paper_subset_matches_pre_index_baseline_snapshots() {
    const BASELINE: [&str; 3] = [
        "c96c8898186338b1cf52fe436a6cb296",
        "547761356fb6d14e680e09c773c39c0d",
        "d243226e6fd262317cb7e4fd9e18fd25",
    ];
    for per_cycle in [false, true] {
        let dir = tmpdir(if per_cycle {
            "snap-percycle"
        } else {
            "snap-skip"
        });
        let mut s = CampaignSpec::paper(tiny_scale()).filtered(&["table3/cores2"]);
        s.name = "paper-subset".into();
        let mut campaign = Campaign::open(&dir, s).unwrap();
        campaign.telemetry = true;
        campaign.per_cycle = per_cycle;
        let report = campaign.run().unwrap();
        let got = snapshot_fingerprints(&dir.join("paper-subset"), &report);
        println!("snapshot per_cycle={per_cycle}: {got:?}");
        for (i, (got, want)) in got.iter().zip(BASELINE).enumerate() {
            assert_eq!(
                got, want,
                "artifact {i} (0=grids 1=records 2=sidecars) drifted from the \
                 pre-index scheduler baseline (per_cycle={per_cycle})"
            );
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The exactness property the event-driven loop is pinned by: a
/// `CampaignSpec::paper`-subset grid run with skip-ahead is
/// observationally identical — every record line (RunStats cell for
/// cell), every grid CSV, every telemetry sidecar byte — to the same
/// grid forced through per-cycle stepping.
#[test]
fn skip_ahead_campaign_equals_per_cycle_cell_for_cell() {
    // A real slice of the paper evaluation, kept small enough for CI:
    // Table 3's 2-core sensitivity sweep (REFab vs DSARP on intensive
    // mixes) plus the alone-IPC runs its weighted-speedup cells need.
    let spec = || {
        let mut s = CampaignSpec::paper(tiny_scale()).filtered(&["table3/cores2"]);
        s.name = "paper-subset".into();
        s
    };
    let run = |dir: &PathBuf, per_cycle: bool| {
        let mut campaign = Campaign::open(dir, spec()).unwrap();
        campaign.telemetry = true;
        campaign.per_cycle = per_cycle;
        campaign.run().unwrap()
    };
    let fast_dir = tmpdir("prop-skip");
    let slow_dir = tmpdir("prop-percycle");
    let fast = run(&fast_dir, false);
    let slow = run(&slow_dir, true);
    assert!(fast.stats.simulated > 0, "cold run must simulate");
    assert_eq!(fast.stats.simulated, slow.stats.simulated);

    assert_eq!(
        render(&fast),
        render(&slow),
        "grid CSVs must be identical across stepping modes"
    );
    assert_eq!(
        sorted_record_lines(&fast_dir.join("paper-subset")),
        sorted_record_lines(&slow_dir.join("paper-subset")),
        "record lines must be identical across stepping modes"
    );
    assert_eq!(
        sidecar_bytes(&fast_dir.join("paper-subset")),
        sidecar_bytes(&slow_dir.join("paper-subset")),
        "telemetry sidecars must be identical across stepping modes"
    );
    let _ = std::fs::remove_dir_all(fast_dir);
    let _ = std::fs::remove_dir_all(slow_dir);
}
