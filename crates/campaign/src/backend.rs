//! The store backend abstraction: one interface over "workers share the
//! campaign directory" and "workers talk to a campaign server over HTTP".
//!
//! [`crate::runner::CampaignClient`] drives a distributed drain purely
//! through [`StoreBackend`], so lease reclaim, rescan and merge semantics
//! are identical whichever transport carries them — a SIGKILLed remote
//! worker's leases are reclaimed by survivors exactly as local ones, and
//! merged grids are byte-identical either way.

use crate::fingerprint::Fingerprint;
use crate::lease::{self, Acquire, Lease, LeaseInfo, Renew};
use crate::store::{Record, Store, SHARDS};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// The outcome of a backend lease-acquire attempt.
#[derive(Debug)]
pub enum AcquireOutcome {
    /// The shard is leased to the caller; `reclaimed` is true when a
    /// stale (dead owner's) lease was evicted to take it.
    Acquired {
        /// Whether a stale lease was evicted along the way.
        reclaimed: bool,
    },
    /// Another owner holds the shard.
    Held {
        /// The current holder (best-effort for unreadable locks).
        holder: LeaseInfo,
        /// The caller evicted a stale lease but lost the follow-up
        /// acquire race to a peer.
        evicted_stale: bool,
    },
}

/// A campaign result store reachable by a worker: the local shared
/// directory, or a remote campaign server speaking HTTP.
///
/// All operations are callable from the executor's worker threads
/// (`&self`, `Sync`).
pub trait StoreBackend: Sync {
    /// A human-readable endpoint for log lines (directory path or URL).
    fn describe(&self) -> String;

    /// The current size of every shard, indexed by shard number. Shards
    /// are append-only, so an unchanged size means unchanged contents —
    /// workers skip re-reading such shards between rescan rounds.
    /// (Monotonicity is only violated by compaction, which excludes
    /// workers by holding every lease.)
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    fn shard_sizes(&self) -> std::io::Result<Vec<u64>>;

    /// The fingerprints currently present in one shard.
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    fn shard_fingerprints(&self, shard: usize) -> std::io::Result<HashSet<u128>>;

    /// Appends one completed record to its shard (first record per
    /// fingerprint wins on read, so duplicate appends are harmless).
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    fn append(&self, fp: Fingerprint, record: &Record) -> std::io::Result<()>;

    /// Attempts to lease `shard` for `owner` with the `ttl_ms` renewal
    /// contract, evicting a stale holder first (see [`Lease::acquire`]).
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors other than contention.
    fn acquire(&self, shard: usize, owner: &str, ttl_ms: u64) -> std::io::Result<AcquireOutcome>;

    /// Renews `owner`'s lease on `shard`.
    ///
    /// # Errors
    ///
    /// Ownership loss or transport errors.
    fn renew(&self, shard: usize, owner: &str, ttl_ms: u64) -> std::io::Result<()>;

    /// Releases `owner`'s lease on `shard` (no-op if already lost).
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    fn release(&self, shard: usize, owner: &str) -> std::io::Result<()>;

    /// Every record currently in the store, keyed by fingerprint — the
    /// snapshot merges assemble grids from.
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    fn snapshot(&self) -> std::io::Result<HashMap<u128, Record>>;
}

/// A shard lease held through a [`StoreBackend`]. Dropping it without
/// [`BackendLease::release`] leaves the lease live until its TTL lapses —
/// exactly what a crashed worker leaves behind.
pub struct BackendLease<'a> {
    backend: &'a dyn StoreBackend,
    shard: usize,
    owner: String,
    ttl_ms: u64,
    reclaimed: bool,
}

impl<'a> BackendLease<'a> {
    /// Wraps an [`AcquireOutcome::Acquired`] into a renewable handle.
    pub fn new(
        backend: &'a dyn StoreBackend,
        shard: usize,
        owner: &str,
        ttl_ms: u64,
        reclaimed: bool,
    ) -> Self {
        BackendLease {
            backend,
            shard,
            owner: owner.to_string(),
            ttl_ms,
            reclaimed,
        }
    }

    /// Whether acquiring this lease evicted a dead owner's lock.
    pub fn reclaimed(&self) -> bool {
        self.reclaimed
    }

    /// Releases the lease.
    ///
    /// # Errors
    ///
    /// Propagates transport/filesystem errors.
    pub fn release(self) -> std::io::Result<()> {
        self.backend.release(self.shard, &self.owner)
    }
}

impl Renew for BackendLease<'_> {
    fn renew(&self) -> std::io::Result<()> {
        self.backend.renew(self.shard, &self.owner, self.ttl_ms)
    }
}

/// The shared-directory backend: shard files and `shard-NN.lock` leases
/// on a filesystem every worker can reach (one host, or NFS).
#[derive(Debug)]
pub struct LocalBackend {
    store: Store,
}

impl LocalBackend {
    /// Attaches to the campaign's store directory under `root` (creating
    /// it if needed) without loading records.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: &Path, campaign_name: &str) -> std::io::Result<Self> {
        Ok(LocalBackend {
            store: Store::attach(root, campaign_name)?,
        })
    }

    /// The campaign directory this backend operates on.
    pub fn campaign_dir(&self) -> &Path {
        self.store.dir()
    }

    fn dir(&self) -> PathBuf {
        self.store.dir().to_path_buf()
    }
}

impl StoreBackend for LocalBackend {
    fn describe(&self) -> String {
        self.store.dir().display().to_string()
    }

    fn shard_sizes(&self) -> std::io::Result<Vec<u64>> {
        Ok((0..SHARDS).map(|s| self.store.shard_size(s)).collect())
    }

    fn shard_fingerprints(&self, shard: usize) -> std::io::Result<HashSet<u128>> {
        Store::read_shard_fingerprints(&self.dir(), shard)
    }

    fn append(&self, fp: Fingerprint, record: &Record) -> std::io::Result<()> {
        self.store.append(fp, record)
    }

    fn acquire(&self, shard: usize, owner: &str, ttl_ms: u64) -> std::io::Result<AcquireOutcome> {
        match Lease::acquire(&self.dir(), shard, owner, ttl_ms)? {
            // The `Lease` value is deliberately dropped, not released:
            // the lock file on disk IS the lease; renewal and release go
            // through `renew_as`/`release_as` by owner, the same stateless
            // path the campaign server uses for remote holders.
            Acquire::Acquired(lock) => Ok(AcquireOutcome::Acquired {
                reclaimed: lock.reclaimed(),
            }),
            Acquire::Held {
                holder,
                evicted_stale,
            } => Ok(AcquireOutcome::Held {
                holder,
                evicted_stale,
            }),
        }
    }

    fn renew(&self, shard: usize, owner: &str, ttl_ms: u64) -> std::io::Result<()> {
        lease::renew_as(&self.dir(), shard, owner, ttl_ms)
    }

    fn release(&self, shard: usize, owner: &str) -> std::io::Result<()> {
        lease::release_as(&self.dir(), shard, owner)
    }

    fn snapshot(&self) -> std::io::Result<HashMap<u128, Record>> {
        Store::read_all(&self.dir())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dsarp-backend-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn local_backend_appends_leases_and_snapshots() {
        let root = tmpdir("local");
        let backend = LocalBackend::open(&root, "c").unwrap();
        assert_eq!(backend.shard_sizes().unwrap(), vec![0; SHARDS]);

        let fp = Fingerprint(8); // shard 0
        let rec = Record::alone(fp, "a".into(), 1.5);
        backend.append(fp, &rec).unwrap();
        assert!(backend.shard_sizes().unwrap()[0] > 0);
        assert!(backend.shard_fingerprints(0).unwrap().contains(&fp.0));
        assert_eq!(backend.snapshot().unwrap().get(&fp.0), Some(&rec));

        // Lease lifecycle through the backend interface.
        match backend.acquire(0, "w-a", 60_000).unwrap() {
            AcquireOutcome::Acquired { reclaimed } => assert!(!reclaimed),
            AcquireOutcome::Held { holder, .. } => panic!("vacant shard held by {holder:?}"),
        }
        let lease = BackendLease::new(&backend, 0, "w-a", 60_000, false);
        Renew::renew(&lease).unwrap();
        match backend.acquire(0, "w-b", 60_000).unwrap() {
            AcquireOutcome::Held { holder, .. } => assert_eq!(holder.owner, "w-a"),
            AcquireOutcome::Acquired { .. } => panic!("live lease double-acquired"),
        }
        lease.release().unwrap();
        match backend.acquire(0, "w-b", 60_000).unwrap() {
            AcquireOutcome::Acquired { .. } => {}
            AcquireOutcome::Held { holder, .. } => panic!("released shard held by {holder:?}"),
        }
        backend.release(0, "w-b").unwrap();

        // The store the campaign loads sees the appended record.
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        assert_eq!(store.get(fp), Some(&rec));
        let _ = std::fs::remove_dir_all(root);
    }
}
