//! Artifact export: campaign grids and cache stats as CSV / JSON-lines,
//! feeding the `report`/`chart` modules and external tooling.

use crate::runner::CampaignReport;
use dsarp_sim::experiments::harness::Grid;
use dsarp_sim::experiments::report;
use std::io::Write;
use std::path::Path;

/// Writes one grid as `<dir>/<name>.csv` (via the shared report module)
/// and `<dir>/<name>.jsonl` (one row object per line).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_grid(dir: &Path, name: &str, grid: &Grid) -> std::io::Result<()> {
    report::write_csv(dir, name, grid.rows())?;
    write_jsonl(dir, name, grid.rows())
}

/// Writes any serializable rows as `<dir>/<name>.jsonl`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_jsonl<T: serde::Serialize>(dir: &Path, name: &str, rows: &[T]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.jsonl")))?;
    for row in rows {
        writeln!(f, "{}", serde_json::to_string(row).expect("rows serialize"))?;
    }
    Ok(())
}

/// Writes the campaign's cache stats, per-phase wall times and sweep
/// inventory as `<dir>/campaign_report.json`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report_json(dir: &Path, report: &CampaignReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut doc = serde_json::Map::new();
    doc.insert(
        "stats".into(),
        serde_json::to_value(report.stats).expect("stats serialize"),
    );
    doc.insert(
        "timing".into(),
        serde_json::to_value(report.timing).expect("timing serializes"),
    );
    let sweeps: Vec<serde_json::Value> = report
        .grids
        .iter()
        .map(|(name, grid)| {
            let mut m = serde_json::Map::new();
            m.insert("name".into(), serde_json::Value::String(name.clone()));
            m.insert(
                "rows".into(),
                serde_json::to_value(grid.rows().len()).expect("infallible"),
            );
            serde_json::Value::Object(m)
        })
        .collect();
    doc.insert("sweeps".into(), serde_json::Value::Array(sweeps));
    std::fs::write(
        dir.join("campaign_report.json"),
        format!("{}\n", serde_json::Value::Object(doc)),
    )
}
