//! Cooperative shard leasing for distributed campaign execution.
//!
//! Each shard file of a campaign store can be leased by at most one live
//! worker at a time through a `shard-NN.lock` file under
//! `<campaign>/leases/`. A lock holds the owner's id, pid, and a heartbeat
//! timestamp:
//!
//! ```text
//! .campaign/paper/leases/shard-03.lock
//!   {"owner":"worker-81214","pid":81214,"heartbeat_ms":1722268800123,"ttl_ms":30000}
//! ```
//!
//! The protocol:
//!
//! * **Acquire** creates the lock with `O_CREAT|O_EXCL` (`create_new`), so
//!   exactly one contender wins a vacant lock.
//! * **Renew** rewrites the lock atomically (unique temp file + rename)
//!   with a fresh heartbeat; owners renew while simulating.
//! * **Release** verifies ownership and deletes the lock.
//! * **Reclaim**: a lock whose heartbeat is older than its *owner's
//!   recorded* TTL — or which is unreadable and whose file mtime is older
//!   than the contender's TTL — belongs to a dead worker. A contender
//!   evicts it by renaming it to a unique tombstone (so racing evictors
//!   cannot delete each other's fresh locks), verifies what it caught was
//!   still stale (restoring it otherwise), then races on a fresh
//!   `create_new`; exactly one wins, and the dead worker's unfinished
//!   cells re-run under the new owner. Judging
//!   staleness by the holder's own TTL means a process launched with a
//!   short `--ttl-ms` can never evict a live holder on a slower cadence.
//!
//! The reclaim race (owner renews between a contender's staleness check
//! and its delete) is tolerated rather than excluded: shard records are
//! content-addressed and simulations are deterministic, so the worst case
//! is a duplicate append of an identical record, which the store's
//! first-record-wins load semantics absorb. A displaced owner notices on
//! its next renew (ownership check fails) and stops renewing.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default lease time-to-live: a heartbeat older than this marks the
/// owner dead. Workers renew a few times per TTL, so the value only needs
/// to exceed worst-case heartbeat jitter, not job runtime.
pub const DEFAULT_TTL_MS: u64 = 30_000;

/// The persisted contents of one `shard-NN.lock`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseInfo {
    /// Owner id (unique per worker process).
    pub owner: String,
    /// Owner's process id (diagnostic only; owners may be on other hosts).
    pub pid: u32,
    /// Last heartbeat, in milliseconds since the Unix epoch.
    pub heartbeat_ms: u64,
    /// The owner's own TTL — the renewal contract it promised. Staleness
    /// is judged against *this*, not a contender's TTL, so a process
    /// launched with a short `--ttl-ms` cannot evict a live holder that
    /// renews on a slower (but honored) cadence.
    pub ttl_ms: u64,
}

impl LeaseInfo {
    /// Milliseconds elapsed since the last heartbeat (saturating).
    pub fn age_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.heartbeat_ms)
    }

    /// Whether this lease is past its owner's own renewal contract.
    pub fn is_stale(&self, now_ms: u64) -> bool {
        self.age_ms(now_ms) > self.ttl_ms
    }
}

/// The result of an acquisition attempt.
#[derive(Debug)]
pub enum Acquire {
    /// The lock was taken; `reclaimed` is true when a stale lease was
    /// evicted to take it.
    Acquired(Lease),
    /// Another owner holds the lock. `evicted_stale` is true when this
    /// contender DID evict a stale lease but lost the follow-up
    /// `create_new` race to a peer — the reclaim happened, the credit
    /// belongs here, the lock belongs to the peer.
    Held {
        /// The current lock contents (best-effort for unreadable locks).
        holder: LeaseInfo,
        /// Whether this call evicted a stale lease along the way.
        evicted_stale: bool,
    },
}

/// An acquired shard lease. Dropping it without [`Lease::release`] leaves
/// the lock on disk, to be reclaimed after the TTL — exactly what a
/// crashed worker leaves behind.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    owner: String,
    ttl_ms: u64,
    reclaimed: bool,
}

/// Uniquifies tombstone names for stale-lock eviction.
static EVICT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Wall-clock milliseconds since the Unix epoch.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The lease directory of a campaign store.
pub fn lease_dir(campaign_dir: &Path) -> PathBuf {
    campaign_dir.join("leases")
}

/// The lock path for one shard.
pub fn lock_path(campaign_dir: &Path, shard: usize) -> PathBuf {
    lease_dir(campaign_dir).join(format!("shard-{shard:02}.lock"))
}

fn read_info(path: &Path) -> Option<LeaseInfo> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Writes `info` to `path` atomically: unique temp file, then rename.
fn write_atomic(path: &Path, info: &LeaseInfo) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(
        &tmp,
        format!(
            "{}\n",
            serde_json::to_string(info).expect("lease serializes")
        ),
    )?;
    std::fs::rename(&tmp, path)
}

/// Whether the lock at `path` is reclaimable at `now_ms`: heartbeat older
/// than the *owner's recorded* TTL, or — for an unreadable lock, which
/// carries no contract — file mtime older than the contender's
/// `fallback_ttl_ms`. A lock that vanished between checks (release race)
/// reports stale so the contender immediately retries its `create_new`;
/// real metadata errors (permissions, I/O) propagate instead of being
/// mistaken for a live holder.
fn is_stale(path: &Path, fallback_ttl_ms: u64, now_ms: u64) -> std::io::Result<bool> {
    if let Some(info) = read_info(path) {
        return Ok(info.is_stale(now_ms));
    }
    let ttl_ms = fallback_ttl_ms;
    // Unreadable or torn lock (e.g. a crash between create and first
    // write): fall back to the file clock. An mtime *ahead* of our clock
    // (shared-filesystem skew) counts as stale rather than live — an
    // unreadable lock never becomes readable on its own, and wrongly
    // evicting one is absorbed by the protocol (duplicate appends are
    // byte-identical), while treating it as live would block the shard
    // for as long as the skew persists.
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => Ok(mtime
            .elapsed()
            .map(|age| u64::try_from(age.as_millis()).unwrap_or(u64::MAX) > ttl_ms)
            .unwrap_or(true)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(true),
        Err(e) => Err(e),
    }
}

impl Lease {
    /// Attempts to lease `shard` of the campaign at `campaign_dir` for
    /// `owner`, recording `ttl_ms` as this owner's renewal contract.
    /// Evicts a stale lock (heartbeat older than the *holder's* recorded
    /// TTL; `ttl_ms` is only the fallback for unreadable locks) before
    /// retrying once.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than lock contention.
    pub fn acquire(
        campaign_dir: &Path,
        shard: usize,
        owner: &str,
        ttl_ms: u64,
    ) -> std::io::Result<Acquire> {
        std::fs::create_dir_all(lease_dir(campaign_dir))?;
        let path = lock_path(campaign_dir, shard);
        let unreadable = || LeaseInfo {
            owner: "<unreadable>".into(),
            pid: 0,
            heartbeat_ms: now_ms(),
            ttl_ms,
        };
        let mut reclaimed = false;
        // One initial attempt plus one retry after evicting a stale lock.
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => {
                    drop(file);
                    let lease = Lease {
                        path,
                        owner: owner.to_string(),
                        ttl_ms,
                        reclaimed,
                    };
                    lease.write_heartbeat()?;
                    return Ok(Acquire::Acquired(lease));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if is_stale(&path, ttl_ms, now_ms())? {
                        // Dead owner: evict and race on the retry. Eviction
                        // renames to a unique tombstone and re-checks what
                        // was actually caught — a bare remove_file could
                        // delete a DIFFERENT contender's brand-new lock
                        // created between our staleness check and the
                        // delete, double-leasing the shard.
                        let tomb = path.with_extension(format!(
                            "evict-{}-{}",
                            std::process::id(),
                            EVICT_SEQ.fetch_add(1, Ordering::Relaxed)
                        ));
                        match std::fs::rename(&path, &tomb) {
                            Ok(()) => {
                                let caught = read_info(&tomb);
                                if caught.as_ref().is_none_or(|i| i.is_stale(now_ms())) {
                                    let _ = std::fs::remove_file(&tomb);
                                    reclaimed = true;
                                } else {
                                    // We raced a fresh acquire/renewal:
                                    // restore it and report the new holder.
                                    let info = caught.expect("checked above");
                                    if std::fs::rename(&tomb, &path).is_err() {
                                        // The holder re-created the lock by
                                        // renewing meanwhile; ours is an
                                        // older copy.
                                        let _ = std::fs::remove_file(&tomb);
                                    }
                                    return Ok(Acquire::Held {
                                        holder: info,
                                        evicted_stale: false,
                                    });
                                }
                            }
                            // Already evicted or released by someone else.
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => return Err(e),
                        }
                        continue;
                    }
                    return Ok(Acquire::Held {
                        holder: read_info(&path).unwrap_or_else(unreadable),
                        evicted_stale: reclaimed,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        // Lost the post-eviction race.
        Ok(Acquire::Held {
            holder: read_info(&path).unwrap_or_else(unreadable),
            evicted_stale: reclaimed,
        })
    }

    fn write_heartbeat(&self) -> std::io::Result<()> {
        heartbeat_at(&self.path, &self.owner, self.ttl_ms)
    }

    /// Refreshes the heartbeat, first verifying this worker still owns the
    /// lock (a stale-marked lease may have been reclaimed under us).
    ///
    /// # Errors
    ///
    /// `ErrorKind::Other` when ownership was lost; filesystem errors
    /// otherwise.
    pub fn renew(&self) -> std::io::Result<()> {
        renew_at(&self.path, &self.owner, self.ttl_ms)
    }

    /// Releases the lease, deleting the lock if still owned. Losing
    /// ownership first (reclaim after a stale period) is not an error:
    /// the successor owns the lock now.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn release(self) -> std::io::Result<()> {
        release_at(&self.path, &self.owner)
    }

    /// Whether acquiring this lease evicted a dead owner's lock.
    pub fn reclaimed(&self) -> bool {
        self.reclaimed
    }

    /// The owner id this lease was acquired under.
    pub fn owner(&self) -> &str {
        &self.owner
    }
}

/// Writes a fresh heartbeat for `owner` at `path`, unconditionally.
fn heartbeat_at(path: &Path, owner: &str, ttl_ms: u64) -> std::io::Result<()> {
    write_atomic(
        path,
        &LeaseInfo {
            owner: owner.to_string(),
            pid: std::process::id(),
            heartbeat_ms: now_ms(),
            ttl_ms,
        },
    )
}

/// Ownership-checked renew at a lock path (shared by [`Lease::renew`] and
/// [`renew_as`], so in-process and on-behalf-of renewal cannot drift).
fn renew_at(path: &Path, owner: &str, ttl_ms: u64) -> std::io::Result<()> {
    match read_info(path) {
        Some(info) if info.owner == owner => heartbeat_at(path, owner, ttl_ms),
        Some(info) => Err(std::io::Error::other(format!(
            "lease on {} lost to `{}`",
            path.display(),
            info.owner
        ))),
        None => Err(std::io::Error::other(format!(
            "lease on {} vanished",
            path.display()
        ))),
    }
}

/// Ownership-checked release at a lock path. Losing ownership first is
/// not an error: the successor owns the lock now.
fn release_at(path: &Path, owner: &str) -> std::io::Result<()> {
    match read_info(path) {
        Some(info) if info.owner == owner => match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        },
        _ => Ok(()),
    }
}

/// Renews `shard`'s lease on behalf of `owner` without holding a
/// [`Lease`] value — the campaign server renews for remote workers, whose
/// lease state lives across HTTP requests, not in one process.
///
/// # Errors
///
/// `ErrorKind::Other` when `owner` no longer holds the lock; filesystem
/// errors otherwise.
pub fn renew_as(
    campaign_dir: &Path,
    shard: usize,
    owner: &str,
    ttl_ms: u64,
) -> std::io::Result<()> {
    renew_at(&lock_path(campaign_dir, shard), owner, ttl_ms)
}

/// Releases `shard`'s lease on behalf of `owner` (see [`renew_as`]).
/// Not holding the lock (already reclaimed) is not an error.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn release_as(campaign_dir: &Path, shard: usize, owner: &str) -> std::io::Result<()> {
    release_at(&lock_path(campaign_dir, shard), owner)
}

/// Anything [`Heartbeat`] can renew on a timer: filesystem [`Lease`]s and
/// backend-generic leases (renewed over HTTP) alike.
pub trait Renew: Sync {
    /// Refreshes the lease heartbeat.
    ///
    /// # Errors
    ///
    /// Ownership loss or transport errors; heartbeat timers ignore both
    /// (a stolen lease is already tolerated by the protocol).
    fn renew(&self) -> std::io::Result<()>;
}

impl Renew for Lease {
    fn renew(&self) -> std::io::Result<()> {
        Lease::renew(self)
    }
}

/// A stoppable lease-renewal timer. [`Heartbeat::run`] blocks on its own
/// thread, renewing the given leases every interval until stopped; the
/// RAII [`HeartbeatStopper`] signals the stop even if the work being
/// heartbeat-protected panics (otherwise a scoped join would wait on a
/// timer that renews a doomed worker's lease forever, making the shard
/// unreclaimable).
#[derive(Debug, Default)]
pub struct Heartbeat {
    done: std::sync::Mutex<bool>,
    finished: std::sync::Condvar,
}

impl Heartbeat {
    /// A fresh, not-yet-stopped heartbeat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renews every lease in `leases` each `interval` until stopped.
    /// Run this on a dedicated (scoped) thread. Renew failures are
    /// ignored: a stolen lease is already tolerated by the protocol.
    pub fn run<R: Renew>(&self, leases: &[&R], interval: std::time::Duration) {
        let mut guard = self.done.lock().expect("heartbeat gate");
        loop {
            // Checked before the first wait too: a stop() that lands
            // before this thread is scheduled must not cost a full
            // interval of dead wait at the scope join.
            if *guard {
                return;
            }
            let (g, timeout) = self
                .finished
                .wait_timeout(guard, interval)
                .expect("heartbeat gate");
            guard = g;
            if !*guard && timeout.timed_out() {
                for lease in leases {
                    let _ = lease.renew();
                }
            }
        }
    }

    /// Stops the timer; `run` returns promptly. Poison-proof so it also
    /// works during unwinding.
    pub fn stop(&self) {
        *self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.finished.notify_all();
    }

    /// An RAII guard that calls [`Heartbeat::stop`] when dropped.
    pub fn stopper(&self) -> HeartbeatStopper<'_> {
        HeartbeatStopper(self)
    }
}

/// Stops its [`Heartbeat`] on drop (including panic unwinding).
#[derive(Debug)]
pub struct HeartbeatStopper<'a>(&'a Heartbeat);

impl Drop for HeartbeatStopper<'_> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

/// Reads the current lock of `shard`, if any.
pub fn read(campaign_dir: &Path, shard: usize) -> Option<LeaseInfo> {
    read_info(&lock_path(campaign_dir, shard))
}

/// Removes leftover non-`.lock` files (heartbeat temp files and eviction
/// tombstones orphaned by killed processes) from the lease directory,
/// keeping anything younger than `older_than_ms` in case a rename is in
/// flight. Returns how many were removed. Callers should exclude writers
/// first (the `compact` subcommand runs this while holding every lease).
///
/// # Errors
///
/// Propagates directory-scan errors; a missing lease dir is `Ok(0)`.
pub fn sweep_orphans(campaign_dir: &Path, older_than_ms: u64) -> std::io::Result<usize> {
    let dir = lease_dir(campaign_dir);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "lock") {
            continue;
        }
        let old_enough = std::fs::metadata(&path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| mtime.elapsed().ok())
            .is_some_and(|age| u64::try_from(age.as_millis()).unwrap_or(u64::MAX) > older_than_ms);
        if old_enough && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Lists every lock currently on disk as `(shard, info, live)`, where
/// `live` means the heartbeat is within the owner's own recorded TTL.
pub fn list(campaign_dir: &Path, shards: usize) -> Vec<(usize, LeaseInfo, bool)> {
    let now = now_ms();
    (0..shards)
        .filter_map(|shard| {
            read(campaign_dir, shard).map(|info| {
                let live = !info.is_stale(now);
                (shard, info, live)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dsarp-lease-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn acquired(outcome: Acquire) -> Lease {
        match outcome {
            Acquire::Acquired(l) => l,
            Acquire::Held { holder, .. } => panic!("expected acquisition, held by {holder:?}"),
        }
    }

    #[test]
    fn acquire_renew_release_lifecycle() {
        let dir = tmpdir("lifecycle");
        let lease = acquired(Lease::acquire(&dir, 3, "w-a", 60_000).unwrap());
        assert!(!lease.reclaimed());
        assert_eq!(lease.owner(), "w-a");

        let info = read(&dir, 3).expect("lock on disk");
        assert_eq!(info.owner, "w-a");
        assert_eq!(info.pid, std::process::id());

        let before = info.heartbeat_ms;
        std::thread::sleep(std::time::Duration::from_millis(5));
        lease.renew().unwrap();
        let renewed = read(&dir, 3).expect("lock still on disk");
        assert!(renewed.heartbeat_ms >= before);

        lease.release().unwrap();
        assert!(read(&dir, 3).is_none(), "release must delete the lock");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn live_lease_refuses_double_acquire() {
        let dir = tmpdir("double");
        let lease = acquired(Lease::acquire(&dir, 0, "w-a", 60_000).unwrap());
        match Lease::acquire(&dir, 0, "w-b", 60_000).unwrap() {
            Acquire::Held { holder, .. } => assert_eq!(holder.owner, "w-a"),
            Acquire::Acquired(_) => panic!("live lease must not be double-acquired"),
        }
        // A different shard is independent.
        let other = acquired(Lease::acquire(&dir, 1, "w-b", 60_000).unwrap());
        other.release().unwrap();
        lease.release().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_lease_is_reclaimed_after_ttl() {
        let dir = tmpdir("stale");
        // A "crashed" worker: lock written, owner never renews or releases.
        let dead = acquired(Lease::acquire(&dir, 5, "w-dead", 60_000).unwrap());
        std::mem::forget(dead); // simulate the crash: no release

        // Heartbeat 1 h old. Staleness is judged by the HOLDER's recorded
        // TTL: while the dead owner's contract is generous (a week), no
        // contender may evict, whatever its own --ttl-ms...
        let path = lock_path(&dir, 5);
        write_atomic(
            &path,
            &LeaseInfo {
                owner: "w-dead".into(),
                pid: 1,
                heartbeat_ms: now_ms().saturating_sub(3_600_000),
                ttl_ms: 7 * 24 * 3_600_000,
            },
        )
        .unwrap();
        match Lease::acquire(&dir, 5, "w-b", 1_000).unwrap() {
            Acquire::Held { holder, .. } => assert_eq!(holder.owner, "w-dead"),
            Acquire::Acquired(_) => {
                panic!("a short-TTL contender must not evict a live slow-cadence holder")
            }
        }
        // ...but once the heartbeat exceeds the holder's own contract,
        // any contender reclaims.
        write_atomic(
            &path,
            &LeaseInfo {
                owner: "w-dead".into(),
                pid: 1,
                heartbeat_ms: now_ms().saturating_sub(3_600_000),
                ttl_ms: 60_000,
            },
        )
        .unwrap();
        let lease = acquired(Lease::acquire(&dir, 5, "w-b", u64::MAX).unwrap());
        assert!(lease.reclaimed(), "reclaim must be reported");
        assert_eq!(read(&dir, 5).unwrap().owner, "w-b");
        lease.release().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn displaced_owner_fails_renew_and_release_is_harmless() {
        let dir = tmpdir("displaced");
        let old = acquired(Lease::acquire(&dir, 2, "w-old", 60_000).unwrap());
        // Reclaim under the old owner's feet.
        write_atomic(
            &lock_path(&dir, 2),
            &LeaseInfo {
                owner: "w-old".into(),
                pid: 1,
                heartbeat_ms: 0,
                ttl_ms: 1_000,
            },
        )
        .unwrap();
        let new = acquired(Lease::acquire(&dir, 2, "w-new", 1_000).unwrap());

        assert!(old.renew().is_err(), "displaced owner must not renew");
        old.release().unwrap(); // must NOT delete the successor's lock
        assert_eq!(read(&dir, 2).unwrap().owner, "w-new");
        new.release().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unreadable_lock_is_reclaimed_by_mtime() {
        let dir = tmpdir("torn-lock");
        let path = lock_path(&dir, 7);
        std::fs::create_dir_all(lease_dir(&dir)).unwrap();
        std::fs::write(&path, "{\"owner\":\"tor").unwrap(); // torn write
        std::thread::sleep(std::time::Duration::from_millis(30));
        // mtime is ~30ms old: stale at a 5ms TTL, live at a long one.
        match Lease::acquire(&dir, 7, "w-b", 60_000).unwrap() {
            Acquire::Held { holder, .. } => assert_eq!(holder.owner, "<unreadable>"),
            Acquire::Acquired(_) => panic!("young torn lock must be held"),
        }
        let lease = acquired(Lease::acquire(&dir, 7, "w-b", 5).unwrap());
        assert!(lease.reclaimed());
        lease.release().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn list_reports_liveness() {
        let dir = tmpdir("list");
        let a = acquired(Lease::acquire(&dir, 0, "w-a", 60_000).unwrap());
        write_atomic(
            &lock_path(&dir, 4),
            &LeaseInfo {
                owner: "w-dead".into(),
                pid: 1,
                heartbeat_ms: now_ms().saturating_sub(100_000),
                ttl_ms: 30_000,
            },
        )
        .unwrap();
        let listed = list(&dir, 8);
        assert_eq!(listed.len(), 2);
        let by_shard: std::collections::HashMap<usize, bool> = listed
            .into_iter()
            .map(|(shard, _, live)| (shard, live))
            .collect();
        assert!(by_shard[&0], "fresh heartbeat is live");
        assert!(!by_shard[&4], "old heartbeat is dead");
        a.release().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }
}
