//! The remote store client: [`StoreBackend`] over HTTP.
//!
//! Talks to an `experiments serve` campaign server (crate `dsarp-serve`),
//! so workers on hosts with no shared filesystem can drain the same
//! campaign. Shard contents are read incrementally — each `GET
//! /shards/{nn}` resumes from the offset the previous read returned, so
//! rescan rounds transfer only the bytes peers appended since. Transient
//! transport failures and HTTP 5xx are retried with bounded backoff
//! ([`RetryPolicy::remote`]); lease-ownership conflicts and protocol
//! errors are permanent.

use crate::backend::{AcquireOutcome, StoreBackend};
use crate::fingerprint::Fingerprint;
use crate::lease::LeaseInfo;
use crate::retry::{self, RetryPolicy};
use crate::store::{Record, Store, FORMAT_VERSION, SHARDS};
use minihttp::{Client, Response};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::Mutex;

/// `GET /campaign` reply: the server's identity handshake.
#[derive(Debug, Serialize, Deserialize)]
pub struct CampaignInfo {
    /// Campaign name the server is hosting.
    pub name: String,
    /// Shard count (must match [`SHARDS`]).
    pub shards: usize,
    /// Store format version (must match [`FORMAT_VERSION`]).
    pub format_version: u32,
}

/// `GET /shards` reply.
#[derive(Debug, Serialize, Deserialize)]
pub struct SizesReply {
    /// Byte size of each shard file, indexed by shard number.
    pub sizes: Vec<u64>,
}

/// `POST /shards/{nn}/append` reply.
#[derive(Debug, Serialize, Deserialize)]
pub struct AppendReply {
    /// Lines appended to the shard.
    pub appended: usize,
    /// Lines dropped because their fingerprint was already present.
    pub deduped: usize,
}

/// `POST /leases/{nn}` request body.
#[derive(Debug, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// One of `acquire`, `renew`, `release`.
    pub op: String,
    /// The worker the operation acts for.
    pub owner: String,
    /// The owner's renewal contract (acquire/renew).
    pub ttl_ms: u64,
}

/// `POST /leases/{nn}` acquire reply (flat rather than tagged: the
/// vendored serde has no enum-tagging attributes).
#[derive(Debug, Serialize, Deserialize)]
pub struct LeaseReply {
    /// Whether the caller now holds the shard.
    pub acquired: bool,
    /// Whether a stale lease was evicted (by the caller, win or lose).
    pub reclaimed: bool,
    /// Caller evicted a stale lease but lost the follow-up race.
    pub evicted_stale: bool,
    /// The current holder when not acquired.
    pub holder: Option<LeaseInfo>,
}

/// Incremental read state for one shard: the offset the next read
/// resumes from, and every record decoded so far (first-per-fingerprint,
/// matching [`Store`] load semantics).
#[derive(Debug, Default)]
struct ShardCache {
    offset: u64,
    fps: HashSet<u128>,
    records: HashMap<u128, Record>,
}

/// Callback invoked before each transient-failure back-off:
/// `(what, attempt, delay, error)`.
pub type RetryObserver = Box<dyn Fn(&str, u32, std::time::Duration, &io::Error) + Send + Sync>;

/// Optional [`RetryObserver`] with a quiet `Debug` (closures are not
/// `Debug`, and `RemoteStore` is).
#[derive(Default)]
struct ObserverCell(Option<RetryObserver>);

impl std::fmt::Debug for ObserverCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "RetryObserver(set)"
        } else {
            "RetryObserver(unset)"
        })
    }
}

/// A campaign store behind an HTTP campaign server.
#[derive(Debug)]
pub struct RemoteStore {
    url: String,
    client: Mutex<Client>,
    shards: Vec<Mutex<ShardCache>>,
    policy: RetryPolicy,
    seed: u64,
    observer: ObserverCell,
}

/// Strips an optional `http://` scheme and trailing slashes, leaving
/// `host:port` for the TCP client.
fn host_of(url: &str) -> &str {
    url.strip_prefix("http://")
        .unwrap_or(url)
        .trim_end_matches('/')
}

/// Promotes HTTP status classes to I/O errors: 5xx become `TimedOut`
/// (transient — the server may recover), everything else non-2xx is
/// permanent.
fn check(resp: Response, what: &str) -> io::Result<Response> {
    match resp.status {
        200..=299 => Ok(resp),
        500..=599 => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("{what}: server error {}: {}", resp.status, resp.text_body()),
        )),
        409 => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("{what}: {}", resp.text_body()),
        )),
        status => Err(io::Error::other(format!(
            "{what}: unexpected status {status}: {}",
            resp.text_body()
        ))),
    }
}

fn bad_reply(what: &str, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what}: malformed server reply: {e}"),
    )
}

impl RemoteStore {
    /// Connects to the campaign server at `url` (e.g.
    /// `http://127.0.0.1:7171`) and verifies it hosts `campaign_name`
    /// with a compatible shard count and store format.
    ///
    /// # Errors
    ///
    /// Connection failures (after retries) and identity mismatches.
    pub fn connect(url: &str, campaign_name: &str) -> io::Result<Self> {
        let store = RemoteStore {
            url: url.to_string(),
            client: Mutex::new(Client::new(host_of(url))),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(ShardCache::default()))
                .collect(),
            policy: RetryPolicy::remote(),
            seed: retry::seed_for(url, 0),
            observer: ObserverCell::default(),
        };
        let resp = store.request("GET", "/campaign", &[], &[], "campaign handshake")?;
        let info: CampaignInfo =
            serde_json::from_str(&resp.text_body()).map_err(|e| bad_reply("handshake", e))?;
        if info.name != campaign_name {
            return Err(io::Error::other(format!(
                "server at {url} hosts campaign `{}`, not `{campaign_name}`",
                info.name
            )));
        }
        if info.shards != SHARDS || info.format_version != FORMAT_VERSION {
            return Err(io::Error::other(format!(
                "server at {url} speaks shards={}/format={}, this client needs \
                 shards={SHARDS}/format={FORMAT_VERSION}",
                info.shards, info.format_version
            )));
        }
        Ok(store)
    }

    /// The URL this store talks to.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Installs a retry observer, called before each transient-failure
    /// back-off on any request this store makes — the campaign event log
    /// records retries through this.
    pub fn set_retry_observer(&mut self, observer: RetryObserver) {
        self.observer = ObserverCell(Some(observer));
    }

    /// One request with transient-failure retries; the shared connection
    /// is held across the call, serializing requests from worker threads.
    fn request(
        &self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
        what: &str,
    ) -> io::Result<Response> {
        let mut client = self.client.lock().expect("client lock poisoned");
        retry::retry_transient_observed(
            &self.policy,
            self.seed,
            what,
            |attempt, delay, e| {
                if let Some(observer) = &self.observer.0 {
                    observer(what, attempt, delay, e);
                }
            },
            || {
                let resp = client.request(method, target, headers, body)?;
                check(resp, what)
            },
        )
    }

    /// Pulls the bytes `shard` grew since the last pull into its cache.
    /// Line-clamping happens server-side ([`Store::read_tail`]), so a
    /// concurrent append never yields a torn JSON line here.
    fn refresh_shard(&self, shard: usize) -> io::Result<std::sync::MutexGuard<'_, ShardCache>> {
        let mut cache = self.shards[shard]
            .lock()
            .expect("shard cache lock poisoned");
        let what = format!("read shard {shard}");
        let target = format!("/shards/{shard:02}?offset={}", cache.offset);
        let resp = self.request("GET", &target, &[], &[], &what)?;
        if resp.header_value("x-shard-reset") == Some("1") {
            // The server's shard is shorter than our offset (compaction):
            // the reply restarted from byte 0, so must our cache.
            *cache = ShardCache::default();
        }
        let next: u64 = resp
            .header_value("x-next-offset")
            .ok_or_else(|| bad_reply(&what, "missing x-next-offset"))?
            .parse()
            .map_err(|e| bad_reply(&what, e))?;
        for line in String::from_utf8_lossy(&resp.body).lines() {
            if let Some((fp, record)) = Store::decode_line(line) {
                if cache.fps.insert(fp.0) {
                    cache.records.insert(fp.0, record);
                }
            }
        }
        cache.offset = next;
        Ok(cache)
    }

    fn lease_op(&self, shard: usize, op: &str, owner: &str, ttl_ms: u64) -> io::Result<Response> {
        let body = serde_json::to_string(&LeaseRequest {
            op: op.to_string(),
            owner: owner.to_string(),
            ttl_ms,
        })
        .expect("lease request serializes");
        self.request(
            "POST",
            &format!("/leases/{shard:02}"),
            &[("content-type", "application/json")],
            body.as_bytes(),
            &format!("{op} lease {shard}"),
        )
    }
}

impl StoreBackend for RemoteStore {
    fn describe(&self) -> String {
        self.url.clone()
    }

    fn shard_sizes(&self) -> io::Result<Vec<u64>> {
        let resp = self.request("GET", "/shards", &[], &[], "shard sizes")?;
        let reply: SizesReply =
            serde_json::from_str(&resp.text_body()).map_err(|e| bad_reply("shard sizes", e))?;
        if reply.sizes.len() != SHARDS {
            return Err(bad_reply(
                "shard sizes",
                format!("expected {SHARDS} entries, got {}", reply.sizes.len()),
            ));
        }
        Ok(reply.sizes)
    }

    fn shard_fingerprints(&self, shard: usize) -> io::Result<HashSet<u128>> {
        Ok(self.refresh_shard(shard)?.fps.clone())
    }

    fn append(&self, fp: Fingerprint, record: &Record) -> io::Result<()> {
        let shard = Store::shard_of(fp);
        let line = Store::encode_line(record);
        self.request(
            "POST",
            &format!("/shards/{shard:02}/append"),
            &[("content-type", "application/x-ndjson")],
            line.as_bytes(),
            &format!("append to shard {shard}"),
        )?;
        Ok(())
    }

    fn acquire(&self, shard: usize, owner: &str, ttl_ms: u64) -> io::Result<AcquireOutcome> {
        let resp = self.lease_op(shard, "acquire", owner, ttl_ms)?;
        let what = format!("acquire lease {shard}");
        let reply: LeaseReply =
            serde_json::from_str(&resp.text_body()).map_err(|e| bad_reply(&what, e))?;
        if reply.acquired {
            Ok(AcquireOutcome::Acquired {
                reclaimed: reply.reclaimed,
            })
        } else {
            let holder = reply
                .holder
                .ok_or_else(|| bad_reply(&what, "held reply without holder"))?;
            Ok(AcquireOutcome::Held {
                holder,
                evicted_stale: reply.evicted_stale,
            })
        }
    }

    fn renew(&self, shard: usize, owner: &str, ttl_ms: u64) -> io::Result<()> {
        self.lease_op(shard, "renew", owner, ttl_ms).map(|_| ())
    }

    fn release(&self, shard: usize, owner: &str) -> io::Result<()> {
        self.lease_op(shard, "release", owner, 0).map(|_| ())
    }

    fn snapshot(&self) -> io::Result<HashMap<u128, Record>> {
        let mut all = HashMap::new();
        for shard in 0..SHARDS {
            let cache = self.refresh_shard(shard)?;
            // Fingerprints route to exactly one shard, so per-shard
            // first-record-wins maps merge without conflicts.
            all.extend(cache.records.iter().map(|(k, v)| (*k, v.clone())));
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_of_strips_scheme_and_slashes() {
        assert_eq!(host_of("http://127.0.0.1:7171/"), "127.0.0.1:7171");
        assert_eq!(host_of("127.0.0.1:7171"), "127.0.0.1:7171");
    }

    #[test]
    fn server_errors_map_to_transient_timeouts() {
        let err = check(Response::text(503, "busy"), "op").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(retry::is_transient(err.kind()));
        let err = check(Response::text(409, "not the owner"), "op").unwrap_err();
        assert!(!retry::is_transient(err.kind()), "conflicts must not retry");
        let err = check(Response::text(404, "nope"), "op").unwrap_err();
        assert!(!retry::is_transient(err.kind()));
        assert!(check(Response::text(200, "ok"), "op").is_ok());
    }
}
