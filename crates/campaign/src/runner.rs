//! The campaign executor: expand → dedupe → consult cache → simulate the
//! misses in parallel (flushing each completed job to its shard) →
//! assemble per-sweep [`Grid`]s.
//!
//! Properties the tests pin down:
//!
//! * **Zero re-simulation**: re-running an identical campaign performs no
//!   simulation at all — every job is a cache hit.
//! * **Resumable**: a run killed part-way leaves a prefix of records on
//!   disk; the next run simulates only the remainder and produces results
//!   identical to an uninterrupted run.
//! * **In-flight dedup**: jobs shared between sweeps (including every
//!   repeated alone-IPC measurement) are simulated once per campaign, not
//!   once per cell.
//! * **Transport-independence**: the distributed drain ([`CampaignClient`])
//!   runs against any [`StoreBackend`] — a shared directory or a campaign
//!   server URL — with identical lease-reclaim semantics and
//!   byte-identical merged grids.

use crate::backend::{AcquireOutcome, BackendLease, LocalBackend, StoreBackend};
use crate::events::{Event, EventLog};
use crate::fingerprint::Fingerprint;
use crate::job::Job;
use crate::lease::{self, Renew};
use crate::retry::{self, RetryPolicy};
use crate::spec::{CampaignSpec, CampaignWorkload, SweepSpec};
use crate::store::{Record, Store};
use dsarp_sim::experiments::harness::{parallel_map, Grid, WsRow};
use dsarp_sim::Metrics;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache behaviour of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Expanded cells across all sweeps (before any deduplication).
    pub cells: usize,
    /// Distinct fingerprints after in-flight dedup.
    pub unique_jobs: usize,
    /// Unique jobs answered from the store.
    pub cache_hits: usize,
    /// Unique jobs actually simulated this run.
    pub simulated: usize,
    /// Freshly simulated results whose shard append failed (kept in memory
    /// for this run; they will re-simulate next time instead of resuming).
    pub persist_failures: usize,
}

impl CacheStats {
    /// Cells that reused another cell's simulation within this campaign.
    pub fn deduped_in_flight(&self) -> usize {
        self.cells - self.unique_jobs
    }
}

/// Wall time spent in each phase of a campaign run. Diagnostic only —
/// written into `campaign_report.json`, never into fingerprints, records
/// or grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseTiming {
    /// Workload resolution, sweep expansion and cache partition (ms).
    pub expand_ms: u64,
    /// Simulating the cache misses (or draining shards, for merges) (ms).
    pub simulate_ms: u64,
    /// Assembling per-sweep grids from the record store (ms).
    pub assemble_ms: u64,
    /// End-to-end run time (ms).
    pub total_ms: u64,
}

fn elapsed_ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The outcome of [`Campaign::run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// One assembled grid per sweep, keyed by sweep name.
    pub grids: BTreeMap<String, Grid>,
    /// Cache behaviour of this run.
    pub stats: CacheStats,
    /// Per-phase wall times of this run.
    pub timing: PhaseTiming,
}

impl CampaignReport {
    /// The grid for `sweep`, panicking with a clear message if the campaign
    /// did not contain it (reducers depend on their sweeps being present).
    pub fn grid(&self, sweep: &str) -> &Grid {
        self.grids
            .get(sweep)
            .unwrap_or_else(|| panic!("campaign report has no sweep `{sweep}`"))
    }
}

/// How a worker process participates in a distributed campaign.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerOptions {
    /// Unique worker identity, written into every lock it takes.
    pub owner: String,
    /// Lease time-to-live: a lock whose heartbeat is older than this is
    /// reclaimable (its owner is presumed dead).
    pub ttl_ms: u64,
    /// How long to sleep between rescans while other live workers hold
    /// every remaining shard.
    pub poll_ms: u64,
    /// Fault-injection hook: sleep this long before each job (used by the
    /// crash-recovery tests to widen the kill window; 0 in production).
    pub job_delay_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            owner: format!("worker-{}", std::process::id()),
            ttl_ms: lease::DEFAULT_TTL_MS,
            poll_ms: 500,
            job_delay_ms: 0,
        }
    }
}

/// What one worker did over a campaign drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct WorkerReport {
    /// Expanded cells across all sweeps (before deduplication).
    pub cells: usize,
    /// Distinct fingerprints after in-flight dedup.
    pub unique_jobs: usize,
    /// Shard leases this worker acquired.
    pub shards_leased: usize,
    /// Dead owners' stale leases this worker evicted (whether or not it
    /// then won the follow-up acquire against a peer).
    pub reclaimed: usize,
    /// Jobs this worker simulated.
    pub simulated: usize,
    /// Rescan rounds spent waiting on other live workers.
    pub wait_rounds: usize,
    /// Shard appends that failed (results recompute next run).
    pub persist_failures: usize,
}

/// Resolves every sweep's workload list once. Trace resolution reads,
/// validates and content-hashes every referenced file, so expansion and
/// grid assembly share one resolution (also giving both a consistent
/// snapshot if a file is edited mid-run — the execution hash re-check
/// still catches actual replays of changed bytes).
fn resolve_sweeps_of(spec: &CampaignSpec) -> std::io::Result<Vec<Vec<CampaignWorkload>>> {
    let scale = spec.scale;
    let seed = spec.workload_seed;
    spec.sweeps
        .iter()
        .map(|s| Ok(s.workloads.resolve(&scale, seed)?))
        .collect()
}

/// Expands every sweep over its resolved workloads, deduplicating
/// identical jobs in flight. Returns `(total cells, unique jobs)`.
fn expand_unique_of(
    spec: &CampaignSpec,
    resolved: &[Vec<CampaignWorkload>],
) -> (usize, Vec<(Fingerprint, Job)>) {
    let scale = spec.scale;
    let mut cells = 0;
    let mut seen = HashSet::new();
    let mut unique: Vec<(Fingerprint, Job)> = Vec::new();
    for (sweep, workloads) in spec.sweeps.iter().zip(resolved) {
        for job in sweep.jobs_for(workloads, &scale) {
            cells += 1;
            let fp = job.fingerprint();
            if seen.insert(fp) {
                unique.push((fp, job));
            }
        }
    }
    (cells, unique)
}

/// The cached alone-IPC for `job`, panicking with the job label if the
/// record is missing after execution.
fn lookup_alone_in(records: &HashMap<u128, Record>, job: &Job) -> f64 {
    records
        .get(&job.fingerprint().0)
        .and_then(|r| r.alone_ipc)
        .unwrap_or_else(|| panic!("missing alone record for {} after execution", job.label()))
}

/// Builds one sweep's [`Grid`] purely from cached records, over the same
/// resolved workloads its jobs were expanded from. Trace bundles produce
/// rows keyed by the bundle name with intensity category 0 (captured
/// traffic carries no category label). Rows are emitted in deterministic
/// (density, mechanism, workload) order and every lookup is by
/// fingerprint, so the same record set renders the same grid whether it
/// was read from a local store or snapshotted off a campaign server.
fn assemble_from(
    spec: &CampaignSpec,
    sweep: &SweepSpec,
    workloads: &[CampaignWorkload],
    records: &HashMap<u128, Record>,
) -> Grid {
    let scale = spec.scale;
    let mut rows = Vec::new();
    for &d in &sweep.densities {
        // Alone-IPC lookups once per (benchmark, density), not per cell:
        // fingerprinting renders canonical JSON, so hashing per cell per
        // core would dominate warm-cache replays. Traces key by content
        // hash, the identity their fingerprints use.
        let mut alone: HashMap<&str, f64> = HashMap::new();
        let mut alone_trace: HashMap<u128, f64> = HashMap::new();
        for wl in workloads {
            match wl {
                CampaignWorkload::Synthetic(wl) => {
                    for b in &wl.benchmarks {
                        if !alone.contains_key(b.name) {
                            let job = sweep.alone_job(d, b, &scale);
                            let ipc = lookup_alone_in(records, &job);
                            alone.insert(b.name, ipc);
                        }
                    }
                }
                CampaignWorkload::Traced(tw) => {
                    for t in &tw.traces {
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            alone_trace.entry(t.content_hash.0)
                        {
                            let job = sweep.trace_alone_job(d, t, &scale);
                            e.insert(lookup_alone_in(records, &job));
                        }
                    }
                }
            }
        }
        for &m in &sweep.mechanisms {
            for wl in workloads {
                let (job, category, alone_ipcs) = match wl {
                    CampaignWorkload::Synthetic(wl) => (
                        sweep.grid_job(m, d, wl, &scale),
                        wl.category.percent(),
                        wl.benchmarks
                            .iter()
                            .take(sweep.cores)
                            .map(|b| alone[b.name])
                            .collect::<Vec<f64>>(),
                    ),
                    CampaignWorkload::Traced(tw) => (
                        sweep.trace_grid_job(m, d, tw, &scale),
                        0,
                        tw.traces
                            .iter()
                            .take(sweep.cores)
                            .map(|t| alone_trace[&t.content_hash.0])
                            .collect::<Vec<f64>>(),
                    ),
                };
                let summary = records
                    .get(&job.fingerprint().0)
                    .and_then(|r| r.summary.clone())
                    .unwrap_or_else(|| {
                        panic!("missing grid record for {} after execution", job.label())
                    });
                let metrics =
                    Metrics::from_ipcs(&summary.ipc, &alone_ipcs, summary.energy_per_access_nj);
                rows.push(WsRow {
                    workload: wl.name().to_string(),
                    category,
                    mechanism: m,
                    density: d,
                    ws: metrics.weighted_speedup,
                    hs: metrics.harmonic_speedup,
                    max_slowdown: metrics.max_slowdown,
                    energy_nj: metrics.energy_per_access_nj,
                    total_ipc: summary.total_ipc,
                });
            }
        }
    }
    Grid::from_rows(rows)
}

/// An open campaign: a spec bound to its result store.
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    store: Store,
    root: std::path::PathBuf,
    /// Print progress lines to stdout while running.
    pub verbose: bool,
    /// Sample simulator telemetry for every cell simulated by
    /// [`Campaign::run`], dumping one JSON sidecar per cell under
    /// `<store dir>/telemetry/<fingerprint>.json`. Sampling is
    /// observationally pure: fingerprints, shard records and grids are
    /// byte-identical either way.
    pub telemetry: bool,
    /// Force per-cycle stepping ([`dsarp_sim::System::run_per_cycle`]) for
    /// every cell simulated by [`Campaign::run`], instead of the default
    /// event-driven skip-ahead loop. The simulator's exactness guarantee
    /// makes the two modes byte-identical in every record, grid and
    /// telemetry sidecar; this switch exists to *demonstrate* that (the CI
    /// smoke diffs a `--no-skip-ahead` cold run against a default cold
    /// run) and to isolate the skip-ahead engine when debugging.
    pub per_cycle: bool,
    events: Arc<EventLog>,
}

impl Campaign {
    /// Opens the campaign's store under `root` and loads cached results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: &Path, spec: CampaignSpec) -> std::io::Result<Self> {
        let manifest = serde_json::to_value(&spec).expect("specs serialize");
        let store = Store::open(root, &spec.name, &manifest)?;
        Ok(Campaign {
            spec,
            store,
            root: root.to_path_buf(),
            verbose: false,
            telemetry: false,
            per_cycle: false,
            events: Arc::new(EventLog::disabled()),
        })
    }

    /// Attaches a structured event log; every progress event of
    /// subsequent runs is appended to it.
    pub fn set_events(&mut self, events: Arc<EventLog>) {
        self.events = events;
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Re-reads the store from disk, picking up records appended by other
    /// worker processes since open.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn reload(&mut self) -> std::io::Result<()> {
        let manifest = serde_json::to_value(&self.spec).expect("specs serialize");
        self.store = Store::open(&self.root, &self.spec.name, &manifest)?;
        Ok(())
    }

    /// A [`CampaignClient`] sharing this campaign's spec and verbosity,
    /// plus the [`LocalBackend`] for its store directory.
    fn client(&self) -> std::io::Result<(CampaignClient, LocalBackend)> {
        let mut client = CampaignClient::new(self.spec.clone());
        client.verbose = self.verbose;
        client.set_events(Arc::clone(&self.events));
        let backend = LocalBackend::open(&self.root, &self.spec.name)?;
        Ok((client, backend))
    }

    /// Executes every sweep (simulating only uncached jobs) and assembles
    /// the per-sweep grids.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from shard appends.
    pub fn run(&mut self) -> std::io::Result<CampaignReport> {
        let t0 = Instant::now();
        let scale = self.spec.scale;

        // 1. Resolve workloads once, expand every sweep and dedupe
        //    identical jobs in flight.
        let resolved = resolve_sweeps_of(&self.spec)?;
        let (cells, unique) = expand_unique_of(&self.spec, &resolved);

        // 2. Partition against the store.
        let missing: Vec<(Fingerprint, Job)> = unique
            .iter()
            .filter(|(fp, _)| !self.store.contains(*fp))
            .cloned()
            .collect();
        let mut stats = CacheStats {
            cells,
            unique_jobs: unique.len(),
            cache_hits: unique.len() - missing.len(),
            simulated: missing.len(),
            persist_failures: 0,
        };
        let mut timing = PhaseTiming {
            expand_ms: elapsed_ms(t0),
            ..PhaseTiming::default()
        };
        self.events.emit(
            self.verbose,
            &Event::CampaignPlanned {
                campaign: self.spec.name.clone(),
                cells: stats.cells,
                unique_jobs: stats.unique_jobs,
                deduped: stats.deduped_in_flight(),
                cached: stats.cache_hits,
                to_simulate: stats.simulated,
                threads: scale.resolved_threads(),
            },
        );

        // 3. Simulate the misses; every completed job is appended to its
        //    shard and flushed before the worker picks up the next one, so
        //    progress survives kill/restart.
        let t_sim = Instant::now();
        let telemetry_dir = if self.telemetry {
            let dir = self.store.dir().join("telemetry");
            std::fs::create_dir_all(&dir)?;
            Some(dir)
        } else {
            None
        };
        let store = &self.store;
        let events = &self.events;
        let verbose = self.verbose;
        let per_cycle = self.per_cycle;
        let append_errors = AtomicUsize::new(0);
        let records = parallel_map(&missing, scale.resolved_threads(), |(fp, job)| {
            let t_job = Instant::now();
            let record = if let Some(dir) = &telemetry_dir {
                let (record, telemetry) = job.run_record_with(*fp, true, per_cycle);
                if let Some(telemetry) = telemetry {
                    let path = dir.join(format!("{fp}.json"));
                    let doc = serde_json::to_string(&telemetry).expect("telemetry serializes");
                    if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
                        eprintln!(
                            "campaign telemetry: sidecar write failed for {}: {e}",
                            record.label
                        );
                    }
                }
                record
            } else {
                job.run_record_with(*fp, false, per_cycle).0
            };
            events.emit(
                verbose,
                &Event::JobSimulated {
                    owner: None,
                    shard: Store::shard_of(*fp),
                    label: record.label.clone(),
                    wall: t_job.elapsed(),
                },
            );
            if let Err(e) = store.append(*fp, &record) {
                // Still usable in memory this run; it will re-simulate next
                // time instead of resuming.
                events.emit(
                    verbose,
                    &Event::AppendFailed {
                        owner: None,
                        shard: Store::shard_of(*fp),
                        label: record.label.clone(),
                        error: e.to_string(),
                    },
                );
                append_errors.fetch_add(1, Ordering::Relaxed);
            }
            record
        });
        for ((fp, _), record) in missing.iter().zip(records) {
            self.store.absorb(*fp, record);
        }
        timing.simulate_ms = elapsed_ms(t_sim);
        stats.persist_failures = append_errors.load(Ordering::Relaxed);
        if stats.persist_failures > 0 {
            self.events.emit(
                self.verbose,
                &Event::PersistFailures {
                    campaign: self.spec.name.clone(),
                    count: stats.persist_failures,
                },
            );
        }
        if stats.simulated > 0 {
            self.events.emit(
                self.verbose,
                &Event::CampaignSimulated {
                    campaign: self.spec.name.clone(),
                    simulated: stats.simulated,
                    wall: t0.elapsed(),
                },
            );
        }

        // 4. Assemble per-sweep grids from the (now complete) store.
        let t_asm = Instant::now();
        let mut grids = BTreeMap::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(&resolved) {
            grids.insert(
                sweep.name.clone(),
                assemble_from(&self.spec, sweep, workloads, self.store.records()),
            );
        }
        timing.assemble_ms = elapsed_ms(t_asm);
        timing.total_ms = elapsed_ms(t0);
        Ok(CampaignReport {
            grids,
            stats,
            timing,
        })
    }

    /// Participates in a distributed drain of this campaign over its local
    /// store directory — see [`CampaignClient::run_worker`] for the
    /// protocol. The in-memory record cache is reloaded afterwards, so
    /// the campaign also sees what peer workers appended during the drain.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the store and lock files.
    pub fn run_worker(&mut self, opts: &WorkerOptions) -> std::io::Result<WorkerReport> {
        let (client, backend) = self.client()?;
        let report = client.run_worker(&backend, opts)?;
        self.reload()?;
        Ok(report)
    }

    /// The coordinator step of a distributed campaign over its local store
    /// directory — see [`CampaignClient::merge`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn merge(
        &mut self,
        opts: &WorkerOptions,
    ) -> std::io::Result<(CampaignReport, WorkerReport)> {
        let (client, backend) = self.client()?;
        let out = client.merge(&backend, opts)?;
        self.reload()?;
        Ok(out)
    }
}

/// A [`Renew`] wrapper that records each heartbeat renewal in the event
/// log (success and failure alike; the protocol tolerates failures).
struct ObservedLease<'a> {
    lock: &'a BackendLease<'a>,
    events: &'a EventLog,
    verbose: bool,
    owner: &'a str,
    shard: usize,
}

impl Renew for ObservedLease<'_> {
    fn renew(&self) -> std::io::Result<()> {
        let outcome = self.lock.renew();
        self.events.emit(
            self.verbose,
            &Event::LeaseRenewed {
                owner: self.owner.to_string(),
                shard: self.shard,
                ok: outcome.is_ok(),
            },
        );
        outcome
    }
}

/// Drives a distributed campaign drain through any [`StoreBackend`]: the
/// spec-only counterpart of [`Campaign`] for processes that may have no
/// store directory at all (remote workers reach the shards through a
/// campaign server). [`Campaign::run_worker`] and [`Campaign::merge`]
/// delegate here over a [`LocalBackend`], so both transports execute the
/// same drain, reclaim and assembly code.
#[derive(Debug)]
pub struct CampaignClient {
    spec: CampaignSpec,
    /// Print progress lines to stdout while running.
    pub verbose: bool,
    events: Arc<EventLog>,
}

impl CampaignClient {
    /// A client for `spec`. No store is opened; every read and write goes
    /// through the backend handed to [`CampaignClient::run_worker`] /
    /// [`CampaignClient::merge`].
    pub fn new(spec: CampaignSpec) -> Self {
        CampaignClient {
            spec,
            verbose: false,
            events: Arc::new(EventLog::disabled()),
        }
    }

    /// Attaches a structured event log; every progress event of
    /// subsequent drains is appended to it.
    pub fn set_events(&mut self, events: Arc<EventLog>) {
        self.events = events;
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Participates in a distributed drain of this campaign: repeatedly
    /// leases shards that still contain missing jobs, simulates exactly
    /// those cells (appending to the leased shard only — jobs are
    /// partitioned by [`Store::shard_of`], so no two workers ever append
    /// to the same file), and rescans until every job of the campaign is
    /// in the store, whoever computed it.
    ///
    /// Shards held by other *live* workers are skipped; a lock whose
    /// heartbeat exceeds its owner's recorded TTL is reclaimed and the
    /// dead owner's unfinished cells re-run here. Returns once the
    /// missing-job set is empty.
    ///
    /// # Errors
    ///
    /// Propagates store/lease errors from the backend (for remote
    /// backends, after bounded transient-failure retries).
    pub fn run_worker(
        &self,
        backend: &dyn StoreBackend,
        opts: &WorkerOptions,
    ) -> std::io::Result<WorkerReport> {
        let resolved = resolve_sweeps_of(&self.spec)?;
        self.run_worker_with(backend, &resolved, opts)
    }

    /// [`CampaignClient::run_worker`] over pre-resolved sweep workloads
    /// (shared with [`CampaignClient::merge`], which also assembles from
    /// them).
    fn run_worker_with(
        &self,
        backend: &dyn StoreBackend,
        resolved: &[Vec<CampaignWorkload>],
        opts: &WorkerOptions,
    ) -> std::io::Result<WorkerReport> {
        let (cells, unique) = expand_unique_of(&self.spec, resolved);
        let threads = self.spec.scale.resolved_threads();
        let mut report = WorkerReport {
            cells,
            unique_jobs: unique.len(),
            ..WorkerReport::default()
        };
        // Stagger the claim order per owner so concurrent workers start on
        // different shards instead of colliding on shard 0.
        let stagger = opts
            .owner
            .bytes()
            .fold(0usize, |h, b| h.wrapping_mul(31).wrapping_add(b as usize));

        // Jobs not yet observed in the store, grouped by shard. The first
        // rescan round reads every shard once (filtering the cached
        // majority out); later rounds re-read only shards still in play.
        let mut remaining: BTreeMap<usize, Vec<(Fingerprint, Job)>> = BTreeMap::new();
        for (fp, job) in unique {
            remaining
                .entry(Store::shard_of(fp))
                .or_default()
                .push((fp, job));
        }

        // Shard files are append-only, so an unchanged byte size means no
        // new records: rescan rounds re-read a shard only after it grew.
        let mut seen_size: BTreeMap<usize, u64> = BTreeMap::new();
        loop {
            let sizes = backend.shard_sizes()?;
            let shards: Vec<usize> = remaining.keys().copied().collect();
            for &shard in &shards {
                let size = sizes[shard];
                if seen_size.get(&shard) == Some(&size) {
                    continue;
                }
                seen_size.insert(shard, size);
                let present = backend.shard_fingerprints(shard)?;
                let jobs = remaining.get_mut(&shard).expect("key from remaining");
                jobs.retain(|(fp, _)| !present.contains(&fp.0));
                if jobs.is_empty() {
                    remaining.remove(&shard);
                }
            }
            if remaining.is_empty() {
                return Ok(report);
            }

            let shards: Vec<usize> = remaining.keys().copied().collect();
            let start = stagger % shards.len();
            let mut progressed = false;
            for &shard in shards[start..].iter().chain(&shards[..start]) {
                let jobs = &remaining[&shard];
                match self.acquire_with_retry(backend, shard, opts, &mut report)? {
                    AcquireOutcome::Acquired { reclaimed } => {
                        report.shards_leased += 1;
                        if reclaimed {
                            report.reclaimed += 1;
                        }
                        self.events.emit(
                            self.verbose,
                            &Event::LeaseAcquired {
                                owner: opts.owner.clone(),
                                shard,
                                missing_jobs: jobs.len(),
                                reclaimed,
                            },
                        );
                        let lock =
                            BackendLease::new(backend, shard, &opts.owner, opts.ttl_ms, reclaimed);
                        self.run_leased(backend, &lock, shard, jobs, threads, opts, &mut report)?;
                        lock.release()?;
                        self.events.emit(
                            self.verbose,
                            &Event::LeaseReleased {
                                owner: opts.owner.clone(),
                                shard,
                            },
                        );
                        // Everything in this shard is now in the store:
                        // computed here, or seen during the under-lease
                        // re-read.
                        remaining.remove(&shard);
                        progressed = true;
                    }
                    AcquireOutcome::Held {
                        holder,
                        evicted_stale,
                    } => {
                        if evicted_stale {
                            // This worker evicted a dead owner's lock but a
                            // peer won the follow-up acquire: the reclaim
                            // happened and the credit is ours, the shard is
                            // the peer's.
                            report.reclaimed += 1;
                        }
                        self.events.emit(
                            self.verbose,
                            &Event::LeaseHeld {
                                owner: opts.owner.clone(),
                                shard,
                                holder: holder.owner.clone(),
                                evicted_stale,
                            },
                        );
                    }
                }
            }
            if report.persist_failures > 0 {
                // A worker's results only count once flushed to the shard;
                // retrying against a failing store would re-simulate the
                // same cells forever.
                return Err(std::io::Error::other(format!(
                    "worker `{}`: {} shard appends failed; aborting drain",
                    opts.owner, report.persist_failures
                )));
            }
            if !progressed && !remaining.is_empty() {
                // Everything left is leased by live workers: wait for their
                // appends (or their deaths) to show up on rescan.
                report.wait_rounds += 1;
                self.events.emit(
                    self.verbose,
                    &Event::WaitRound {
                        owner: opts.owner.clone(),
                        rounds: report.wait_rounds,
                    },
                );
                std::thread::sleep(Duration::from_millis(opts.poll_ms));
            }
        }
    }

    /// One lease acquisition, quick-retrying eviction races: a contender
    /// that evicts a stale lock but loses the follow-up `create_new` sees
    /// churning lock state (racing peers may themselves finish and
    /// release within milliseconds), so it re-tries on the short
    /// [`RetryPolicy::lease_race`] schedule before falling back to the
    /// poll cadence. Every eviction is credited to the report, win or
    /// lose.
    fn acquire_with_retry(
        &self,
        backend: &dyn StoreBackend,
        shard: usize,
        opts: &WorkerOptions,
        report: &mut WorkerReport,
    ) -> std::io::Result<AcquireOutcome> {
        let policy = RetryPolicy::lease_race();
        let seed = retry::seed_for(&opts.owner, shard);
        let mut attempt = 0;
        loop {
            match backend.acquire(shard, &opts.owner, opts.ttl_ms)? {
                AcquireOutcome::Held {
                    evicted_stale: true,
                    ..
                } if attempt + 1 < policy.max_attempts => {
                    report.reclaimed += 1;
                    let delay = policy.delay_for(attempt, seed);
                    self.events.emit(
                        self.verbose,
                        &Event::LeaseRetry {
                            owner: opts.owner.clone(),
                            shard,
                            attempt,
                            delay,
                        },
                    );
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// Simulates one leased shard's missing jobs on the thread pool,
    /// appending each result as it completes and renewing the lease
    /// heartbeat a few times per TTL.
    ///
    /// The shard is re-read under the lease first: the caller's
    /// missing-set snapshot may predate records a previous lease holder
    /// appended, and only still-missing cells should run.
    #[allow(clippy::too_many_arguments)]
    fn run_leased(
        &self,
        backend: &dyn StoreBackend,
        lock: &BackendLease<'_>,
        shard: usize,
        jobs: &[(Fingerprint, Job)],
        threads: usize,
        opts: &WorkerOptions,
        report: &mut WorkerReport,
    ) -> std::io::Result<()> {
        let present = backend.shard_fingerprints(shard)?;
        let jobs: Vec<&(Fingerprint, Job)> = jobs
            .iter()
            .filter(|(fp, _)| !present.contains(&fp.0))
            .collect();
        if jobs.is_empty() {
            return Ok(());
        }
        let append_errors = AtomicUsize::new(0);
        let renew_every = Duration::from_millis((opts.ttl_ms / 4).max(1));
        // The heartbeat runs on its own timer thread so a single slow job
        // can never stale the lease — the TTL only has to cover heartbeat
        // jitter, not job runtime. A failed renew means the lease was
        // stolen after a genuine stall; finishing the in-flight jobs is
        // still safe (records are content-addressed and deterministic, so
        // the successor's appends are byte-identical duplicates).
        let heartbeat = lease::Heartbeat::new();
        let observed = ObservedLease {
            lock,
            events: &self.events,
            verbose: self.verbose,
            owner: &opts.owner,
            shard,
        };
        std::thread::scope(|s| {
            s.spawn(|| heartbeat.run(&[&observed], renew_every));
            // Stopped via Drop, not a trailing statement: if a job panics,
            // thread::scope must still join the heartbeat thread, which
            // would otherwise renew a doomed worker's lease forever and
            // make the shard unreclaimable.
            let _stop = heartbeat.stopper();
            parallel_map(&jobs, threads, |(fp, job)| {
                if opts.job_delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(opts.job_delay_ms));
                }
                let t_job = Instant::now();
                let record = job.run_record(*fp);
                self.events.emit(
                    self.verbose,
                    &Event::JobSimulated {
                        owner: Some(opts.owner.clone()),
                        shard,
                        label: record.label.clone(),
                        wall: t_job.elapsed(),
                    },
                );
                if let Err(e) = backend.append(*fp, &record) {
                    self.events.emit(
                        self.verbose,
                        &Event::AppendFailed {
                            owner: Some(opts.owner.clone()),
                            shard,
                            label: record.label.clone(),
                            error: e.to_string(),
                        },
                    );
                    append_errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        report.simulated += jobs.len();
        report.persist_failures += append_errors.load(Ordering::Relaxed);
        Ok(())
    }

    /// Assembles every sweep's grid from a record snapshot without
    /// running anything — the read-only path behind a campaign server's
    /// CSV export endpoint.
    ///
    /// # Errors
    ///
    /// `ErrorKind::NotFound` when any record a sweep needs is missing
    /// (the campaign has not been fully drained), counting the absences —
    /// `assemble_from` would panic on them mid-assembly.
    pub fn assemble(
        &self,
        records: &HashMap<u128, Record>,
    ) -> std::io::Result<BTreeMap<String, Grid>> {
        let resolved = resolve_sweeps_of(&self.spec)?;
        let (_, unique) = expand_unique_of(&self.spec, &resolved);
        let missing = unique
            .iter()
            .filter(|(fp, _)| !records.contains_key(&fp.0))
            .count();
        if missing > 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "campaign `{}` is not drained: {missing} of {} records missing",
                    self.spec.name,
                    unique.len()
                ),
            ));
        }
        let mut grids = BTreeMap::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(&resolved) {
            grids.insert(
                sweep.name.clone(),
                assemble_from(&self.spec, sweep, workloads, records),
            );
        }
        Ok(grids)
    }

    /// The coordinator step of a distributed campaign: drains the
    /// missing-job set (waiting out live leases, reclaiming dead ones and
    /// re-running their unfinished cells locally), then snapshots every
    /// shard and assembles per-sweep grids exactly as [`Campaign::run`]
    /// does — byte-identical output, whichever workers computed the
    /// records and whichever transport carried them.
    ///
    /// # Errors
    ///
    /// Propagates store/lease errors from the backend.
    pub fn merge(
        &self,
        backend: &dyn StoreBackend,
        opts: &WorkerOptions,
    ) -> std::io::Result<(CampaignReport, WorkerReport)> {
        let t0 = Instant::now();
        let resolved = resolve_sweeps_of(&self.spec)?;
        let expand_ms = elapsed_ms(t0);
        let t_drain = Instant::now();
        let worker = self.run_worker_with(backend, &resolved, opts)?;
        let simulate_ms = elapsed_ms(t_drain);
        // Snapshot every shard — including records other workers appended
        // during the drain — before assembling.
        let t_asm = Instant::now();
        let records = backend.snapshot()?;
        let stats = CacheStats {
            cells: worker.cells,
            unique_jobs: worker.unique_jobs,
            // Everything this process did not simulate itself was answered
            // from the store, whether it predated the merge or was computed
            // by a peer during the drain.
            cache_hits: worker.unique_jobs - worker.simulated,
            simulated: worker.simulated,
            persist_failures: worker.persist_failures,
        };
        let mut grids = BTreeMap::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(&resolved) {
            grids.insert(
                sweep.name.clone(),
                assemble_from(&self.spec, sweep, workloads, &records),
            );
        }
        let timing = PhaseTiming {
            expand_ms,
            simulate_ms,
            assemble_ms: elapsed_ms(t_asm),
            total_ms: elapsed_ms(t0),
        };
        Ok((
            CampaignReport {
                grids,
                stats,
                timing,
            },
            worker,
        ))
    }
}
