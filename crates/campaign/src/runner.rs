//! The campaign executor: expand → dedupe → consult cache → simulate the
//! misses in parallel (flushing each completed job to its shard) →
//! assemble per-sweep [`Grid`]s.
//!
//! Properties the tests pin down:
//!
//! * **Zero re-simulation**: re-running an identical campaign performs no
//!   simulation at all — every job is a cache hit.
//! * **Resumable**: a run killed part-way leaves a prefix of records on
//!   disk; the next run simulates only the remainder and produces results
//!   identical to an uninterrupted run.
//! * **In-flight dedup**: jobs shared between sweeps (including every
//!   repeated alone-IPC measurement) are simulated once per campaign, not
//!   once per cell.

use crate::fingerprint::Fingerprint;
use crate::job::{Job, JobOutput};
use crate::spec::{CampaignSpec, SweepSpec};
use crate::store::{Record, Store};
use dsarp_sim::experiments::harness::{parallel_map, Grid, WsRow};
use dsarp_sim::Metrics;
use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::time::Instant;

/// Cache behaviour of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Expanded cells across all sweeps (before any deduplication).
    pub cells: usize,
    /// Distinct fingerprints after in-flight dedup.
    pub unique_jobs: usize,
    /// Unique jobs answered from the store.
    pub cache_hits: usize,
    /// Unique jobs actually simulated this run.
    pub simulated: usize,
    /// Freshly simulated results whose shard append failed (kept in memory
    /// for this run; they will re-simulate next time instead of resuming).
    pub persist_failures: usize,
}

impl CacheStats {
    /// Cells that reused another cell's simulation within this campaign.
    pub fn deduped_in_flight(&self) -> usize {
        self.cells - self.unique_jobs
    }
}

/// The outcome of [`Campaign::run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// One assembled grid per sweep, keyed by sweep name.
    pub grids: BTreeMap<String, Grid>,
    /// Cache behaviour of this run.
    pub stats: CacheStats,
}

impl CampaignReport {
    /// The grid for `sweep`, panicking with a clear message if the campaign
    /// did not contain it (reducers depend on their sweeps being present).
    pub fn grid(&self, sweep: &str) -> &Grid {
        self.grids
            .get(sweep)
            .unwrap_or_else(|| panic!("campaign report has no sweep `{sweep}`"))
    }
}

/// An open campaign: a spec bound to its result store.
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    store: Store,
    /// Print progress lines to stdout while running.
    pub verbose: bool,
}

impl Campaign {
    /// Opens the campaign's store under `root` and loads cached results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: &Path, spec: CampaignSpec) -> std::io::Result<Self> {
        let manifest = serde_json::to_value(&spec).expect("specs serialize");
        let store = Store::open(root, &spec.name, &manifest)?;
        Ok(Campaign {
            spec,
            store,
            verbose: false,
        })
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Executes every sweep (simulating only uncached jobs) and assembles
    /// the per-sweep grids.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from shard appends.
    pub fn run(&mut self) -> std::io::Result<CampaignReport> {
        let t0 = Instant::now();
        let scale = self.spec.scale;
        let seed = self.spec.workload_seed;

        // 1. Expand every sweep and dedupe identical jobs in flight.
        let mut cells = 0;
        let mut seen = HashSet::new();
        let mut unique: Vec<(Fingerprint, Job)> = Vec::new();
        for sweep in &self.spec.sweeps {
            for job in sweep.jobs(&scale, seed) {
                cells += 1;
                let fp = job.fingerprint();
                if seen.insert(fp) {
                    unique.push((fp, job));
                }
            }
        }

        // 2. Partition against the store.
        let missing: Vec<(Fingerprint, Job)> = unique
            .iter()
            .filter(|(fp, _)| !self.store.contains(*fp))
            .cloned()
            .collect();
        let mut stats = CacheStats {
            cells,
            unique_jobs: unique.len(),
            cache_hits: unique.len() - missing.len(),
            simulated: missing.len(),
            persist_failures: 0,
        };
        if self.verbose {
            println!(
                "campaign `{}`: {} cells -> {} unique jobs ({} deduped in flight), \
                 {} cached, {} to simulate on {} threads",
                self.spec.name,
                stats.cells,
                stats.unique_jobs,
                stats.deduped_in_flight(),
                stats.cache_hits,
                stats.simulated,
                scale.resolved_threads(),
            );
        }

        // 3. Simulate the misses; every completed job is appended to its
        //    shard and flushed before the worker picks up the next one, so
        //    progress survives kill/restart.
        let store = &self.store;
        let append_errors = std::sync::atomic::AtomicUsize::new(0);
        let records = parallel_map(&missing, scale.resolved_threads(), |(fp, job)| {
            let record = match job.execute() {
                JobOutput::Alone(ipc) => Record::alone(*fp, job.label(), ipc),
                JobOutput::Grid(summary) => Record::grid(*fp, job.label(), summary),
            };
            if let Err(e) = store.append(*fp, &record) {
                // Still usable in memory this run; it will re-simulate next
                // time instead of resuming.
                eprintln!("campaign store: append failed for {}: {e}", record.label);
                append_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            record
        });
        for ((fp, _), record) in missing.iter().zip(records) {
            self.store.absorb(*fp, record);
        }
        stats.persist_failures = append_errors.load(std::sync::atomic::Ordering::Relaxed);
        if stats.persist_failures > 0 {
            eprintln!(
                "campaign `{}`: {} results could not be persisted and will \
                 re-simulate on the next run",
                self.spec.name, stats.persist_failures
            );
        }
        if self.verbose && stats.simulated > 0 {
            println!(
                "campaign `{}`: simulated {} jobs in {:.1?}",
                self.spec.name,
                stats.simulated,
                t0.elapsed()
            );
        }

        // 4. Assemble per-sweep grids from the (now complete) store.
        let mut grids = BTreeMap::new();
        for sweep in &self.spec.sweeps {
            grids.insert(sweep.name.clone(), self.assemble(sweep));
        }
        Ok(CampaignReport { grids, stats })
    }

    /// Builds one sweep's [`Grid`] purely from cached records.
    fn assemble(&self, sweep: &SweepSpec) -> Grid {
        let scale = self.spec.scale;
        let workloads = sweep.workloads.resolve(&scale, self.spec.workload_seed);
        let mut rows = Vec::new();
        for &d in &sweep.densities {
            // Alone-IPC lookups once per (benchmark, density), not per cell:
            // fingerprinting renders canonical JSON, so hashing per cell per
            // core would dominate warm-cache replays.
            let mut alone: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
            for wl in &workloads {
                for b in &wl.benchmarks {
                    if !alone.contains_key(b.name) {
                        let job = sweep.alone_job(d, b, &scale);
                        let ipc = self
                            .store
                            .get(job.fingerprint())
                            .and_then(|r| r.alone_ipc)
                            .unwrap_or_else(|| {
                                panic!("missing alone record for {} after execution", job.label())
                            });
                        alone.insert(b.name, ipc);
                    }
                }
            }
            for &m in &sweep.mechanisms {
                for wl in &workloads {
                    let job = sweep.grid_job(m, d, wl, &scale);
                    let summary = self
                        .store
                        .get(job.fingerprint())
                        .and_then(|r| r.summary.clone())
                        .unwrap_or_else(|| {
                            panic!("missing grid record for {} after execution", job.label())
                        });
                    let alone_ipcs: Vec<f64> = wl
                        .benchmarks
                        .iter()
                        .take(sweep.cores)
                        .map(|b| alone[b.name])
                        .collect();
                    let metrics =
                        Metrics::from_ipcs(&summary.ipc, &alone_ipcs, summary.energy_per_access_nj);
                    rows.push(WsRow {
                        workload: wl.name.clone(),
                        category: wl.category.percent(),
                        mechanism: m,
                        density: d,
                        ws: metrics.weighted_speedup,
                        hs: metrics.harmonic_speedup,
                        max_slowdown: metrics.max_slowdown,
                        energy_nj: metrics.energy_per_access_nj,
                        total_ipc: summary.total_ipc,
                    });
                }
            }
        }
        Grid::from_rows(rows)
    }
}
