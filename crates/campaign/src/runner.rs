//! The campaign executor: expand → dedupe → consult cache → simulate the
//! misses in parallel (flushing each completed job to its shard) →
//! assemble per-sweep [`Grid`]s.
//!
//! Properties the tests pin down:
//!
//! * **Zero re-simulation**: re-running an identical campaign performs no
//!   simulation at all — every job is a cache hit.
//! * **Resumable**: a run killed part-way leaves a prefix of records on
//!   disk; the next run simulates only the remainder and produces results
//!   identical to an uninterrupted run.
//! * **In-flight dedup**: jobs shared between sweeps (including every
//!   repeated alone-IPC measurement) are simulated once per campaign, not
//!   once per cell.

use crate::fingerprint::Fingerprint;
use crate::job::Job;
use crate::lease::{self, Acquire, Lease};
use crate::spec::{CampaignSpec, CampaignWorkload, SweepSpec};
use crate::store::Store;
use dsarp_sim::experiments::harness::{parallel_map, Grid, WsRow};
use dsarp_sim::Metrics;
use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Cache behaviour of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Expanded cells across all sweeps (before any deduplication).
    pub cells: usize,
    /// Distinct fingerprints after in-flight dedup.
    pub unique_jobs: usize,
    /// Unique jobs answered from the store.
    pub cache_hits: usize,
    /// Unique jobs actually simulated this run.
    pub simulated: usize,
    /// Freshly simulated results whose shard append failed (kept in memory
    /// for this run; they will re-simulate next time instead of resuming).
    pub persist_failures: usize,
}

impl CacheStats {
    /// Cells that reused another cell's simulation within this campaign.
    pub fn deduped_in_flight(&self) -> usize {
        self.cells - self.unique_jobs
    }
}

/// The outcome of [`Campaign::run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// One assembled grid per sweep, keyed by sweep name.
    pub grids: BTreeMap<String, Grid>,
    /// Cache behaviour of this run.
    pub stats: CacheStats,
}

impl CampaignReport {
    /// The grid for `sweep`, panicking with a clear message if the campaign
    /// did not contain it (reducers depend on their sweeps being present).
    pub fn grid(&self, sweep: &str) -> &Grid {
        self.grids
            .get(sweep)
            .unwrap_or_else(|| panic!("campaign report has no sweep `{sweep}`"))
    }
}

/// How a worker process participates in a distributed campaign.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WorkerOptions {
    /// Unique worker identity, written into every lock it takes.
    pub owner: String,
    /// Lease time-to-live: a lock whose heartbeat is older than this is
    /// reclaimable (its owner is presumed dead).
    pub ttl_ms: u64,
    /// How long to sleep between rescans while other live workers hold
    /// every remaining shard.
    pub poll_ms: u64,
    /// Fault-injection hook: sleep this long before each job (used by the
    /// crash-recovery tests to widen the kill window; 0 in production).
    pub job_delay_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            owner: format!("worker-{}", std::process::id()),
            ttl_ms: lease::DEFAULT_TTL_MS,
            poll_ms: 500,
            job_delay_ms: 0,
        }
    }
}

/// What one worker did over a campaign drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct WorkerReport {
    /// Expanded cells across all sweeps (before deduplication).
    pub cells: usize,
    /// Distinct fingerprints after in-flight dedup.
    pub unique_jobs: usize,
    /// Shard leases this worker acquired.
    pub shards_leased: usize,
    /// Dead owners' stale leases this worker evicted (whether or not it
    /// then won the follow-up acquire against a peer).
    pub reclaimed: usize,
    /// Jobs this worker simulated.
    pub simulated: usize,
    /// Rescan rounds spent waiting on other live workers.
    pub wait_rounds: usize,
    /// Shard appends that failed (results recompute next run).
    pub persist_failures: usize,
}

/// An open campaign: a spec bound to its result store.
#[derive(Debug)]
pub struct Campaign {
    spec: CampaignSpec,
    store: Store,
    root: std::path::PathBuf,
    /// Print progress lines to stdout while running.
    pub verbose: bool,
}

impl Campaign {
    /// Opens the campaign's store under `root` and loads cached results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(root: &Path, spec: CampaignSpec) -> std::io::Result<Self> {
        let manifest = serde_json::to_value(&spec).expect("specs serialize");
        let store = Store::open(root, &spec.name, &manifest)?;
        Ok(Campaign {
            spec,
            store,
            root: root.to_path_buf(),
            verbose: false,
        })
    }

    /// The campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Re-reads the store from disk, picking up records appended by other
    /// worker processes since open.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn reload(&mut self) -> std::io::Result<()> {
        let manifest = serde_json::to_value(&self.spec).expect("specs serialize");
        self.store = Store::open(&self.root, &self.spec.name, &manifest)?;
        Ok(())
    }

    /// Resolves every sweep's workload list once. Trace resolution reads,
    /// validates and content-hashes every referenced file, so expansion
    /// and grid assembly share one resolution (also giving both a
    /// consistent snapshot if a file is edited mid-run — the execution
    /// hash re-check still catches actual replays of changed bytes).
    ///
    /// # Errors
    ///
    /// Fails — with a message naming the offending file — when a sweep
    /// references a missing, unreadable or invalid trace.
    fn resolve_sweeps(&self) -> std::io::Result<Vec<Vec<CampaignWorkload>>> {
        let scale = self.spec.scale;
        let seed = self.spec.workload_seed;
        self.spec
            .sweeps
            .iter()
            .map(|s| Ok(s.workloads.resolve(&scale, seed)?))
            .collect()
    }

    /// Expands every sweep over its resolved workloads, deduplicating
    /// identical jobs in flight. Returns `(total cells, unique jobs)`.
    fn expand_unique(
        &self,
        resolved: &[Vec<CampaignWorkload>],
    ) -> (usize, Vec<(Fingerprint, Job)>) {
        let scale = self.spec.scale;
        let mut cells = 0;
        let mut seen = HashSet::new();
        let mut unique: Vec<(Fingerprint, Job)> = Vec::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(resolved) {
            for job in sweep.jobs_for(workloads, &scale) {
                cells += 1;
                let fp = job.fingerprint();
                if seen.insert(fp) {
                    unique.push((fp, job));
                }
            }
        }
        (cells, unique)
    }

    /// Executes every sweep (simulating only uncached jobs) and assembles
    /// the per-sweep grids.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from shard appends.
    pub fn run(&mut self) -> std::io::Result<CampaignReport> {
        let t0 = Instant::now();
        let scale = self.spec.scale;

        // 1. Resolve workloads once, expand every sweep and dedupe
        //    identical jobs in flight.
        let resolved = self.resolve_sweeps()?;
        let (cells, unique) = self.expand_unique(&resolved);

        // 2. Partition against the store.
        let missing: Vec<(Fingerprint, Job)> = unique
            .iter()
            .filter(|(fp, _)| !self.store.contains(*fp))
            .cloned()
            .collect();
        let mut stats = CacheStats {
            cells,
            unique_jobs: unique.len(),
            cache_hits: unique.len() - missing.len(),
            simulated: missing.len(),
            persist_failures: 0,
        };
        if self.verbose {
            println!(
                "campaign `{}`: {} cells -> {} unique jobs ({} deduped in flight), \
                 {} cached, {} to simulate on {} threads",
                self.spec.name,
                stats.cells,
                stats.unique_jobs,
                stats.deduped_in_flight(),
                stats.cache_hits,
                stats.simulated,
                scale.resolved_threads(),
            );
        }

        // 3. Simulate the misses; every completed job is appended to its
        //    shard and flushed before the worker picks up the next one, so
        //    progress survives kill/restart.
        let store = &self.store;
        let append_errors = AtomicUsize::new(0);
        let records = parallel_map(&missing, scale.resolved_threads(), |(fp, job)| {
            let record = job.run_record(*fp);
            if let Err(e) = store.append(*fp, &record) {
                // Still usable in memory this run; it will re-simulate next
                // time instead of resuming.
                eprintln!("campaign store: append failed for {}: {e}", record.label);
                append_errors.fetch_add(1, Ordering::Relaxed);
            }
            record
        });
        for ((fp, _), record) in missing.iter().zip(records) {
            self.store.absorb(*fp, record);
        }
        stats.persist_failures = append_errors.load(Ordering::Relaxed);
        if stats.persist_failures > 0 {
            eprintln!(
                "campaign `{}`: {} results could not be persisted and will \
                 re-simulate on the next run",
                self.spec.name, stats.persist_failures
            );
        }
        if self.verbose && stats.simulated > 0 {
            println!(
                "campaign `{}`: simulated {} jobs in {:.1?}",
                self.spec.name,
                stats.simulated,
                t0.elapsed()
            );
        }

        // 4. Assemble per-sweep grids from the (now complete) store.
        let mut grids = BTreeMap::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(&resolved) {
            grids.insert(sweep.name.clone(), self.assemble(sweep, workloads));
        }
        Ok(CampaignReport { grids, stats })
    }

    /// Participates in a distributed drain of this campaign: repeatedly
    /// leases shards that still contain missing jobs, simulates exactly
    /// those cells (appending to the leased shard only — jobs are
    /// partitioned by [`Store::shard_of`], so no two workers ever append
    /// to the same file), and rescans until every job of the campaign is
    /// on disk, whoever computed it.
    ///
    /// Shards held by other *live* workers are skipped; a lock whose
    /// heartbeat exceeds `opts.ttl_ms` is reclaimed and the dead owner's
    /// unfinished cells re-run here. Returns once the missing-job set is
    /// empty.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the store and lock files.
    pub fn run_worker(&mut self, opts: &WorkerOptions) -> std::io::Result<WorkerReport> {
        let resolved = self.resolve_sweeps()?;
        self.run_worker_with(&resolved, opts)
    }

    /// [`Campaign::run_worker`] over pre-resolved sweep workloads (shared
    /// with [`Campaign::merge`], which also assembles from them).
    fn run_worker_with(
        &mut self,
        resolved: &[Vec<CampaignWorkload>],
        opts: &WorkerOptions,
    ) -> std::io::Result<WorkerReport> {
        let (cells, unique) = self.expand_unique(resolved);
        let threads = self.spec.scale.resolved_threads();
        let mut report = WorkerReport {
            cells,
            unique_jobs: unique.len(),
            ..WorkerReport::default()
        };
        // Stagger the claim order per owner so concurrent workers start on
        // different shards instead of colliding on shard 0.
        let stagger = opts
            .owner
            .bytes()
            .fold(0usize, |h, b| h.wrapping_mul(31).wrapping_add(b as usize));

        // Jobs not yet observed on disk, grouped by shard. Rescans re-read
        // only the shard files still in play, not the whole store.
        let mut remaining: BTreeMap<usize, Vec<(Fingerprint, Job)>> = BTreeMap::new();
        for (fp, job) in unique {
            if !self.store.contains(fp) {
                remaining
                    .entry(Store::shard_of(fp))
                    .or_default()
                    .push((fp, job));
            }
        }

        // Shard files are append-only, so an unchanged byte size means no
        // new records: rescan rounds re-parse a shard only after it grew.
        let mut seen_size: BTreeMap<usize, u64> = BTreeMap::new();
        loop {
            let shards: Vec<usize> = remaining.keys().copied().collect();
            for &shard in &shards {
                let size = self.store.shard_size(shard);
                if seen_size.get(&shard) == Some(&size) {
                    continue;
                }
                seen_size.insert(shard, size);
                let present = self.store.shard_fingerprints(shard)?;
                let jobs = remaining.get_mut(&shard).expect("key from remaining");
                jobs.retain(|(fp, _)| !present.contains(&fp.0));
                if jobs.is_empty() {
                    remaining.remove(&shard);
                }
            }
            if remaining.is_empty() {
                return Ok(report);
            }

            let shards: Vec<usize> = remaining.keys().copied().collect();
            let start = stagger % shards.len();
            let mut progressed = false;
            for &shard in shards[start..].iter().chain(&shards[..start]) {
                let jobs = &remaining[&shard];
                match Lease::acquire(self.store.dir(), shard, &opts.owner, opts.ttl_ms)? {
                    Acquire::Acquired(lock) => {
                        report.shards_leased += 1;
                        if lock.reclaimed() {
                            report.reclaimed += 1;
                        }
                        if self.verbose {
                            println!(
                                "worker `{}`: leased shard {shard} ({} missing jobs{})",
                                opts.owner,
                                jobs.len(),
                                if lock.reclaimed() {
                                    ", reclaimed from dead owner"
                                } else {
                                    ""
                                },
                            );
                        }
                        self.run_leased(&lock, shard, jobs, threads, opts, &mut report)?;
                        lock.release()?;
                        // Everything in this shard is now on disk: computed
                        // here, or seen during the under-lease re-read.
                        remaining.remove(&shard);
                        progressed = true;
                    }
                    Acquire::Held {
                        holder,
                        evicted_stale,
                    } => {
                        if evicted_stale {
                            // This worker evicted a dead owner's lock but a
                            // peer won the follow-up acquire: the reclaim
                            // happened and the credit is ours, the shard is
                            // the peer's.
                            report.reclaimed += 1;
                        }
                        if self.verbose {
                            println!(
                                "worker `{}`: shard {shard} held by `{}`{}",
                                opts.owner,
                                holder.owner,
                                if evicted_stale {
                                    " (after this worker evicted a stale lease)"
                                } else {
                                    ""
                                }
                            );
                        }
                    }
                }
            }
            if report.persist_failures > 0 {
                // A worker's results only count once flushed to the shard;
                // retrying against a failing disk would re-simulate the
                // same cells forever.
                return Err(std::io::Error::other(format!(
                    "worker `{}`: {} shard appends failed; aborting drain",
                    opts.owner, report.persist_failures
                )));
            }
            if !progressed && !remaining.is_empty() {
                // Everything left is leased by live workers: wait for their
                // appends (or their deaths) to show up on rescan.
                report.wait_rounds += 1;
                std::thread::sleep(Duration::from_millis(opts.poll_ms));
            }
        }
    }

    /// Simulates one leased shard's missing jobs on the thread pool,
    /// appending each result as it completes and renewing the lease
    /// heartbeat a few times per TTL.
    ///
    /// The shard file is re-read under the lease first: the caller's
    /// missing-set snapshot may predate records a previous lease holder
    /// appended, and only still-missing cells should run.
    fn run_leased(
        &self,
        lock: &Lease,
        shard: usize,
        jobs: &[(Fingerprint, Job)],
        threads: usize,
        opts: &WorkerOptions,
        report: &mut WorkerReport,
    ) -> std::io::Result<()> {
        let present = self.store.shard_fingerprints(shard)?;
        let jobs: Vec<&(Fingerprint, Job)> = jobs
            .iter()
            .filter(|(fp, _)| !present.contains(&fp.0))
            .collect();
        if jobs.is_empty() {
            return Ok(());
        }
        let append_errors = AtomicUsize::new(0);
        let renew_every = Duration::from_millis((opts.ttl_ms / 4).max(1));
        // The heartbeat runs on its own timer thread so a single slow job
        // can never stale the lease — the TTL only has to cover heartbeat
        // jitter, not job runtime. A failed renew means the lease was
        // stolen after a genuine stall; finishing the in-flight jobs is
        // still safe (records are content-addressed and deterministic, so
        // the successor's appends are byte-identical duplicates).
        let heartbeat = lease::Heartbeat::new();
        std::thread::scope(|s| {
            s.spawn(|| heartbeat.run(&[lock], renew_every));
            // Stopped via Drop, not a trailing statement: if a job panics,
            // thread::scope must still join the heartbeat thread, which
            // would otherwise renew a doomed worker's lease forever and
            // make the shard unreclaimable.
            let _stop = heartbeat.stopper();
            parallel_map(&jobs, threads, |(fp, job)| {
                if opts.job_delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(opts.job_delay_ms));
                }
                let record = job.run_record(*fp);
                if let Err(e) = self.store.append(*fp, &record) {
                    eprintln!("campaign store: append failed for {}: {e}", record.label);
                    append_errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        report.simulated += jobs.len();
        report.persist_failures += append_errors.load(Ordering::Relaxed);
        Ok(())
    }

    /// The coordinator step of a distributed campaign: drains the
    /// missing-job set (waiting out live leases, reclaiming dead ones and
    /// re-running their unfinished cells locally), then absorbs all shards
    /// and assembles per-sweep grids exactly as [`Campaign::run`] does —
    /// byte-identical output, whichever workers computed the records.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn merge(
        &mut self,
        opts: &WorkerOptions,
    ) -> std::io::Result<(CampaignReport, WorkerReport)> {
        let resolved = self.resolve_sweeps()?;
        let worker = self.run_worker_with(&resolved, opts)?;
        // Absorb every shard — including records other workers appended
        // during the drain — before assembling.
        self.reload()?;
        let stats = CacheStats {
            cells: worker.cells,
            unique_jobs: worker.unique_jobs,
            // Everything this process did not simulate itself was answered
            // from the store, whether it predated the merge or was computed
            // by a peer during the drain.
            cache_hits: worker.unique_jobs - worker.simulated,
            simulated: worker.simulated,
            persist_failures: worker.persist_failures,
        };
        let mut grids = BTreeMap::new();
        for (sweep, workloads) in self.spec.sweeps.iter().zip(&resolved) {
            grids.insert(sweep.name.clone(), self.assemble(sweep, workloads));
        }
        Ok((CampaignReport { grids, stats }, worker))
    }

    /// Builds one sweep's [`Grid`] purely from cached records, over the
    /// same resolved workloads its jobs were expanded from. Trace bundles
    /// produce rows keyed by the bundle name with intensity category 0
    /// (captured traffic carries no category label).
    fn assemble(&self, sweep: &SweepSpec, workloads: &[CampaignWorkload]) -> Grid {
        let scale = self.spec.scale;
        let mut rows = Vec::new();
        for &d in &sweep.densities {
            // Alone-IPC lookups once per (benchmark, density), not per cell:
            // fingerprinting renders canonical JSON, so hashing per cell per
            // core would dominate warm-cache replays. Traces key by content
            // hash, the identity their fingerprints use.
            let mut alone: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
            let mut alone_trace: std::collections::HashMap<u128, f64> =
                std::collections::HashMap::new();
            for wl in workloads {
                match wl {
                    CampaignWorkload::Synthetic(wl) => {
                        for b in &wl.benchmarks {
                            if !alone.contains_key(b.name) {
                                let job = sweep.alone_job(d, b, &scale);
                                let ipc = self.lookup_alone(&job);
                                alone.insert(b.name, ipc);
                            }
                        }
                    }
                    CampaignWorkload::Traced(tw) => {
                        for t in &tw.traces {
                            if let std::collections::hash_map::Entry::Vacant(e) =
                                alone_trace.entry(t.content_hash.0)
                            {
                                let job = sweep.trace_alone_job(d, t, &scale);
                                e.insert(self.lookup_alone(&job));
                            }
                        }
                    }
                }
            }
            for &m in &sweep.mechanisms {
                for wl in workloads {
                    let (job, category, alone_ipcs) = match wl {
                        CampaignWorkload::Synthetic(wl) => (
                            sweep.grid_job(m, d, wl, &scale),
                            wl.category.percent(),
                            wl.benchmarks
                                .iter()
                                .take(sweep.cores)
                                .map(|b| alone[b.name])
                                .collect::<Vec<f64>>(),
                        ),
                        CampaignWorkload::Traced(tw) => (
                            sweep.trace_grid_job(m, d, tw, &scale),
                            0,
                            tw.traces
                                .iter()
                                .take(sweep.cores)
                                .map(|t| alone_trace[&t.content_hash.0])
                                .collect::<Vec<f64>>(),
                        ),
                    };
                    let summary = self
                        .store
                        .get(job.fingerprint())
                        .and_then(|r| r.summary.clone())
                        .unwrap_or_else(|| {
                            panic!("missing grid record for {} after execution", job.label())
                        });
                    let metrics =
                        Metrics::from_ipcs(&summary.ipc, &alone_ipcs, summary.energy_per_access_nj);
                    rows.push(WsRow {
                        workload: wl.name().to_string(),
                        category,
                        mechanism: m,
                        density: d,
                        ws: metrics.weighted_speedup,
                        hs: metrics.harmonic_speedup,
                        max_slowdown: metrics.max_slowdown,
                        energy_nj: metrics.energy_per_access_nj,
                        total_ipc: summary.total_ipc,
                    });
                }
            }
        }
        Grid::from_rows(rows)
    }

    /// The cached alone-IPC for `job`, panicking with the job label if the
    /// record is missing after execution.
    fn lookup_alone(&self, job: &Job) -> f64 {
        self.store
            .get(job.fingerprint())
            .and_then(|r| r.alone_ipc)
            .unwrap_or_else(|| panic!("missing alone record for {} after execution", job.label()))
    }
}
