//! Declarative campaign descriptions.
//!
//! A [`CampaignSpec`] names a set of [`SweepSpec`]s, each of which spans
//! the axes the paper sweeps — workload set, mechanisms, densities, core
//! count, subarrays per bank, retention, `tFAW`/`tRRD`, drain watermarks,
//! seeds — and expands into concrete [`Job`]s. Identical cells across
//! sweeps expand to identical fingerprints, so the executor simulates them
//! once and the store caches them forever.

use crate::job::Job;
use crate::traces::{self, TraceRef, TraceSetError, TraceWorkload};
use dsarp_core::Mechanism;
use dsarp_dram::{Density, Retention};
use dsarp_sim::experiments::{harness::WORKLOAD_SEED, Scale};
use dsarp_sim::SimConfig;
use dsarp_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which workload pool a sweep runs on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSet {
    /// The paper's 100-workload evaluation set (5 categories ×
    /// `Scale::per_category`), on 8-core mixes.
    Paper,
    /// The memory-intensive sensitivity mixes for `cores`-core systems.
    Intensive {
        /// Cores per workload.
        cores: usize,
    },
    /// A directory of captured Ramulator-format traces: file names
    /// matching `glob` are sorted byte-wise and chunked into consecutive
    /// `cores`-wide bundles (see [`traces::resolve_trace_dir`]). Each
    /// trace's *content hash* — never its path — feeds the job
    /// fingerprints, so renaming keeps the cache and editing a trace
    /// invalidates exactly its own cells.
    TraceDir {
        /// Directory holding the traces.
        path: String,
        /// File-name glob (`*`/`?`), e.g. `*.trace`.
        glob: String,
        /// Cores per bundle.
        cores: usize,
    },
    /// An explicit trace-file list, bundled `cores` at a time in the
    /// given order (the caller controls bundling; no sorting).
    TraceFiles {
        /// Trace file paths, in bundle order.
        files: Vec<String>,
        /// Cores per bundle.
        cores: usize,
    },
}

/// One resolved workload of a sweep: a synthetic mix or a trace bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignWorkload {
    /// A synthetic multi-programmed mix.
    Synthetic(Workload),
    /// A bundle of captured trace files.
    Traced(TraceWorkload),
}

impl CampaignWorkload {
    /// The workload's display name (grid row key; not fingerprinted).
    pub fn name(&self) -> &str {
        match self {
            CampaignWorkload::Synthetic(w) => &w.name,
            CampaignWorkload::Traced(t) => &t.name,
        }
    }

    /// Number of cores the workload occupies.
    pub fn cores(&self) -> usize {
        match self {
            CampaignWorkload::Synthetic(w) => w.cores(),
            CampaignWorkload::Traced(t) => t.cores(),
        }
    }
}

impl WorkloadSet {
    /// A [`WorkloadSet::TraceDir`] with the conventional `*.trace` glob.
    pub fn trace_dir(path: impl Into<String>, cores: usize) -> Self {
        WorkloadSet::TraceDir {
            path: path.into(),
            glob: "*.trace".into(),
            cores,
        }
    }

    /// Resolves the concrete workload list at `scale`, deterministically in
    /// `seed`, through the same `Scale` selection rules the experiment
    /// modules' direct `run()` paths use. Trace sets enumerate (and
    /// validate + content-hash) their files; synthetic sets cannot fail.
    ///
    /// # Errors
    ///
    /// [`TraceSetError`] naming the offending file for a missing,
    /// unreadable or invalid trace.
    pub fn resolve(
        &self,
        scale: &Scale,
        seed: u64,
    ) -> Result<Vec<CampaignWorkload>, TraceSetError> {
        Ok(match self {
            WorkloadSet::Paper => scale
                .workloads_with_seed(seed)
                .into_iter()
                .map(CampaignWorkload::Synthetic)
                .collect(),
            WorkloadSet::Intensive { cores } => scale
                .intensive_workloads_with_seed(*cores, seed)
                .into_iter()
                .map(CampaignWorkload::Synthetic)
                .collect(),
            WorkloadSet::TraceDir { path, glob, cores } => {
                traces::resolve_trace_dir(Path::new(path), glob, *cores)?
                    .into_iter()
                    .map(CampaignWorkload::Traced)
                    .collect()
            }
            WorkloadSet::TraceFiles { files, cores } => traces::resolve_trace_files(files, *cores)?
                .into_iter()
                .map(CampaignWorkload::Traced)
                .collect(),
        })
    }
}

/// One rectangular sweep: `workloads × mechanisms × densities` under a
/// shared configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Unique name within the campaign (also the grid's key in the report).
    pub name: String,
    /// Workload pool.
    pub workloads: WorkloadSet,
    /// Mechanisms evaluated.
    pub mechanisms: Vec<Mechanism>,
    /// Densities evaluated.
    pub densities: Vec<Density>,
    /// Core count (and workload width).
    pub cores: usize,
    /// Retention time.
    pub retention: Retention,
    /// Subarrays per bank.
    pub subarrays: usize,
    /// Optional `(tFAW, tRRD)` override.
    pub faw_rrd: Option<(u64, u64)>,
    /// Optional write-drain watermark override.
    pub drain_watermarks: Option<(usize, usize)>,
    /// Ablate SARP's power throttle (physically impossible; studies only).
    pub ablate_sarp_throttle: bool,
    /// Simulator seed override (`None` = the paper's).
    pub sim_seed: Option<u64>,
}

impl SweepSpec {
    /// A sweep of `mechanisms × densities` on the paper's defaults.
    pub fn new(
        name: impl Into<String>,
        workloads: WorkloadSet,
        mechanisms: &[Mechanism],
        densities: &[Density],
    ) -> Self {
        let cores = match &workloads {
            WorkloadSet::Paper => 8,
            WorkloadSet::Intensive { cores }
            | WorkloadSet::TraceDir { cores, .. }
            | WorkloadSet::TraceFiles { cores, .. } => *cores,
        };
        SweepSpec {
            name: name.into(),
            workloads,
            mechanisms: mechanisms.to_vec(),
            densities: densities.to_vec(),
            cores,
            retention: Retention::Ms32,
            subarrays: 8,
            faw_rrd: None,
            drain_watermarks: None,
            ablate_sarp_throttle: false,
            sim_seed: None,
        }
    }

    /// The cell configuration for one (mechanism, density).
    pub fn make_cfg(&self, mechanism: Mechanism, density: Density) -> SimConfig {
        let mut cfg = SimConfig::paper(mechanism, density)
            .with_cores(self.cores)
            .with_retention(self.retention)
            .with_subarrays(self.subarrays);
        if let Some((faw, rrd)) = self.faw_rrd {
            cfg = cfg.with_faw_rrd(faw, rrd);
        }
        if let Some((enter, exit)) = self.drain_watermarks {
            cfg = cfg.with_drain_watermarks(enter, exit);
        }
        if self.ablate_sarp_throttle {
            cfg = cfg.with_sarp_throttle_ablated();
        }
        if let Some(seed) = self.sim_seed {
            cfg = cfg.with_seed(seed);
        }
        cfg
    }

    /// The alone-IPC configuration for one density (mirrors
    /// `Grid::compute_with`: the sweep's own geometry/retention, no
    /// refresh, single core, shared-LLC capacity).
    pub fn alone_cfg(&self, density: Density, scale: &Scale) -> SimConfig {
        self.make_cfg(Mechanism::NoRefresh, density)
            .with_warmup_ops(scale.warmup_ops)
            .alone()
    }

    /// The alone-IPC job for one benchmark at one density. Job expansion
    /// and grid assembly both build cells through this and [`Self::grid_job`],
    /// so their fingerprints cannot drift apart.
    pub fn alone_job(
        &self,
        density: Density,
        bench: &'static dsarp_workloads::BenchmarkSpec,
        scale: &Scale,
    ) -> Job {
        Job::Alone {
            cfg: self.alone_cfg(density, scale),
            bench,
            cycles: scale.alone_cycles,
        }
    }

    /// The grid-cell job for one (mechanism, density, workload).
    pub fn grid_job(
        &self,
        mechanism: Mechanism,
        density: Density,
        workload: &Workload,
        scale: &Scale,
    ) -> Job {
        Job::Grid {
            cfg: self
                .make_cfg(mechanism, density)
                .with_warmup_ops(scale.warmup_ops),
            workload: workload.clone(),
            cycles: scale.dram_cycles,
        }
    }

    /// The alone-IPC job for one trace file at one density (the traced
    /// counterpart of [`Self::alone_job`]: the same trace replayed on a
    /// single no-refresh core).
    pub fn trace_alone_job(&self, density: Density, trace: &TraceRef, scale: &Scale) -> Job {
        Job::TraceAlone {
            cfg: self.alone_cfg(density, scale),
            trace: trace.clone(),
            cycles: scale.alone_cycles,
        }
    }

    /// The grid-cell job for one (mechanism, density, trace bundle).
    pub fn trace_grid_job(
        &self,
        mechanism: Mechanism,
        density: Density,
        workload: &TraceWorkload,
        scale: &Scale,
    ) -> Job {
        Job::TraceGrid {
            cfg: self
                .make_cfg(mechanism, density)
                .with_warmup_ops(scale.warmup_ops),
            workload: workload.clone(),
            cycles: scale.dram_cycles,
        }
    }

    /// Expands this sweep into jobs: deduplicated alone-IPC measurements
    /// first (by benchmark name for synthetic mixes, by content hash for
    /// traces), then every grid cell.
    ///
    /// # Errors
    ///
    /// [`TraceSetError`] naming the offending file when the sweep's trace
    /// set fails to resolve.
    pub fn jobs(&self, scale: &Scale, workload_seed: u64) -> Result<Vec<Job>, TraceSetError> {
        Ok(self.jobs_for(&self.workloads.resolve(scale, workload_seed)?, scale))
    }

    /// Like [`SweepSpec::jobs`], over an already-resolved workload list —
    /// the executor resolves each sweep once (trace resolution re-reads
    /// and re-hashes every file) and reuses the result for expansion and
    /// grid assembly.
    pub fn jobs_for(&self, workloads: &[CampaignWorkload], scale: &Scale) -> Vec<Job> {
        let mut out = Vec::new();
        for &d in &self.densities {
            let mut seen_bench = std::collections::HashSet::new();
            let mut seen_trace = std::collections::HashSet::new();
            for wl in workloads {
                match wl {
                    CampaignWorkload::Synthetic(wl) => {
                        for b in &wl.benchmarks {
                            if seen_bench.insert(b.name) {
                                out.push(self.alone_job(d, b, scale));
                            }
                        }
                    }
                    CampaignWorkload::Traced(tw) => {
                        for t in &tw.traces {
                            if seen_trace.insert(t.content_hash) {
                                out.push(self.trace_alone_job(d, t, scale));
                            }
                        }
                    }
                }
            }
        }
        for &d in &self.densities {
            for &m in &self.mechanisms {
                for wl in workloads {
                    out.push(match wl {
                        CampaignWorkload::Synthetic(wl) => self.grid_job(m, d, wl, scale),
                        CampaignWorkload::Traced(tw) => self.trace_grid_job(m, d, tw, scale),
                    });
                }
            }
        }
        out
    }
}

/// A full campaign: a scale plus the sweeps to run at it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name; also the store subdirectory.
    pub name: String,
    /// Run lengths, workload counts and thread budget.
    pub scale: Scale,
    /// Seed for workload-mix selection (the paper's by default).
    pub workload_seed: u64,
    /// The sweeps.
    pub sweeps: Vec<SweepSpec>,
}

impl CampaignSpec {
    /// An empty campaign at `scale`.
    pub fn new(name: impl Into<String>, scale: Scale) -> Self {
        CampaignSpec {
            name: name.into(),
            scale,
            workload_seed: WORKLOAD_SEED,
            sweeps: Vec::new(),
        }
    }

    /// Adds a sweep.
    #[must_use]
    pub fn with_sweep(mut self, sweep: SweepSpec) -> Self {
        assert!(
            self.sweeps.iter().all(|s| s.name != sweep.name),
            "duplicate sweep name `{}`",
            sweep.name
        );
        self.sweeps.push(sweep);
        self
    }

    /// The sweep named `name`, if present.
    pub fn sweep(&self, name: &str) -> Option<&SweepSpec> {
        self.sweeps.iter().find(|s| s.name == name)
    }

    /// The full paper evaluation: the main 12-mechanism grid plus every
    /// sensitivity sweep (Tables 3–6, the footnote-5 overlap study and the
    /// design ablations). Artifact reducers expect these sweep names.
    pub fn paper(scale: Scale) -> Self {
        use dsarp_sim::experiments::harness::MAIN_GRID_MECHS;
        use dsarp_sim::experiments::{ablations, overlap, table3, table4, table5, table6};

        let densities = Density::evaluated();
        let g32 = [Density::G32];
        let intensive8 = WorkloadSet::Intensive { cores: 8 };
        let mut spec = CampaignSpec::new("paper", scale).with_sweep(SweepSpec::new(
            "main",
            WorkloadSet::Paper,
            &MAIN_GRID_MECHS,
            &densities,
        ));
        for cores in table3::CORE_SWEEP {
            spec = spec.with_sweep(SweepSpec::new(
                format!("table3/cores{cores}"),
                WorkloadSet::Intensive { cores },
                &table3::MECHS,
                &g32,
            ));
        }
        for (faw, rrd) in table4::SWEEP {
            let mut s = SweepSpec::new(
                format!("table4/faw{faw}-rrd{rrd}"),
                intensive8.clone(),
                &table4::MECHS,
                &g32,
            );
            s.faw_rrd = Some((faw, rrd));
            spec = spec.with_sweep(s);
        }
        for n in table5::SWEEP {
            let mut s = SweepSpec::new(
                format!("table5/sub{n}"),
                intensive8.clone(),
                &table5::MECHS,
                &g32,
            );
            s.subarrays = n;
            spec = spec.with_sweep(s);
        }
        let mut t6 = SweepSpec::new("table6", intensive8.clone(), &table6::MECHS, &densities);
        t6.retention = table6::RETENTION;
        spec = spec.with_sweep(t6);
        let mut overlap_mechs = vec![Mechanism::RefPb];
        overlap_mechs.extend(overlap::OVERLAP_MECHS);
        spec = spec.with_sweep(SweepSpec::new(
            "overlap",
            intensive8.clone(),
            &overlap_mechs,
            &overlap::OVERLAP_DENSITIES,
        ));
        spec = spec.with_sweep(SweepSpec::new(
            "ablations/throttle",
            intensive8.clone(),
            &ablations::THROTTLE_MECHS,
            &g32,
        ));
        let mut unthrottled = SweepSpec::new(
            "ablations/unthrottled",
            intensive8.clone(),
            &[Mechanism::SarpPb],
            &g32,
        );
        unthrottled.ablate_sarp_throttle = true;
        spec = spec.with_sweep(unthrottled);
        spec = spec.with_sweep(SweepSpec::new(
            "ablations/darp",
            intensive8.clone(),
            &ablations::DARP_MECHS,
            &g32,
        ));
        for (enter, exit) in ablations::WATERMARK_SWEEP {
            let mut s = SweepSpec::new(
                format!("ablations/wm{enter}-{exit}"),
                intensive8.clone(),
                &ablations::WATERMARK_MECHS,
                &g32,
            );
            s.drain_watermarks = Some((enter, exit));
            spec = spec.with_sweep(s);
        }
        spec
    }

    /// Keeps only the sweeps whose name starts with one of `prefixes`
    /// (used by the experiments binary's `--exp` filter).
    #[must_use]
    pub fn filtered(mut self, prefixes: &[&str]) -> Self {
        self.sweeps
            .retain(|s| prefixes.iter().any(|p| s.name.starts_with(p)));
        self
    }

    /// Renders this spec as JSON text — the `experiments --emit-spec`
    /// format, reloadable with [`CampaignSpec::from_json`] so new sweeps
    /// need no recompilation.
    pub fn to_json(&self) -> String {
        format!(
            "{}\n",
            serde_json::to_string(self).expect("specs serialize")
        )
    }

    /// Parses a spec from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse/shape error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text.trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            dram_cycles: 2_000,
            alone_cycles: 1_000,
            per_category: 1,
            threads: 2,
            warmup_ops: 500,
        }
    }

    #[test]
    fn paper_campaign_has_all_sweeps() {
        let spec = CampaignSpec::paper(tiny_scale());
        for name in [
            "main",
            "table3/cores2",
            "table4/faw5-rrd1",
            "table5/sub64",
            "table6",
            "overlap",
            "ablations/throttle",
            "ablations/wm48-32",
        ] {
            assert!(spec.sweep(name).is_some(), "missing sweep {name}");
        }
        assert_eq!(spec.sweeps.len(), 1 + 3 + 6 + 7 + 1 + 1 + 3 + 3);
    }

    #[test]
    fn sweep_expansion_counts() {
        let scale = tiny_scale();
        let spec = CampaignSpec::paper(scale);
        let main = spec.sweep("main").unwrap();
        let jobs = main.jobs(&scale, spec.workload_seed).unwrap();
        let grids = jobs
            .iter()
            .filter(|j| matches!(j, Job::Grid { .. }))
            .count();
        // 5 workloads (1/category) x 12 mechanisms x 3 densities.
        assert_eq!(grids, 5 * 12 * 3);
        let alones = jobs.len() - grids;
        assert!(alones > 0, "alone jobs must be expanded");
        // Alone jobs are unique per (benchmark, density) within the sweep.
        let mut fps: Vec<_> = jobs
            .iter()
            .filter(|j| matches!(j, Job::Alone { .. }))
            .map(Job::fingerprint)
            .collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), alones);
    }

    #[test]
    fn identical_cells_share_fingerprints_across_sweeps() {
        let scale = tiny_scale();
        let spec = CampaignSpec::paper(scale);
        // overlap (at G32) and ablations/throttle share RefPb and SarpPb
        // cells on the same workloads, so their job sets must intersect.
        let fp = |name: &str| -> std::collections::HashSet<_> {
            spec.sweep(name)
                .unwrap()
                .jobs(&scale, spec.workload_seed)
                .unwrap()
                .iter()
                .map(Job::fingerprint)
                .collect()
        };
        let overlap = fp("overlap");
        let throttle = fp("ablations/throttle");
        assert!(
            throttle.iter().filter(|f| overlap.contains(f)).count() > 0,
            "cross-sweep dedup opportunity must exist"
        );
        // The ablated SARP sweep shares nothing with the plain one except
        // alone jobs (its config differs).
        let unthrottled = fp("ablations/unthrottled");
        let shared_grids = spec
            .sweep("ablations/unthrottled")
            .unwrap()
            .jobs(&scale, spec.workload_seed)
            .unwrap()
            .iter()
            .filter(|j| matches!(j, Job::Grid { .. }))
            .map(Job::fingerprint)
            .filter(|f| throttle.contains(f))
            .count();
        assert_eq!(shared_grids, 0);
        assert!(!unthrottled.is_empty());
    }

    #[test]
    fn spec_json_roundtrip_preserves_jobs() {
        let spec = CampaignSpec::paper(tiny_scale());
        let text = spec.to_json();
        let back = CampaignSpec::from_json(&text).expect("emitted specs reload");
        assert_eq!(back, spec);
        // The reloaded spec must expand to the identical job set — the
        // property --spec execution correctness rests on.
        let scale = spec.scale;
        for (a, b) in spec.sweeps.iter().zip(&back.sweeps) {
            let fps: Vec<_> = a
                .jobs(&scale, spec.workload_seed)
                .unwrap()
                .iter()
                .map(Job::fingerprint)
                .collect();
            let back_fps: Vec<_> = b
                .jobs(&back.scale, back.workload_seed)
                .unwrap()
                .iter()
                .map(Job::fingerprint)
                .collect();
            assert_eq!(fps, back_fps, "sweep {} drifted across JSON", a.name);
        }
        assert!(CampaignSpec::from_json("{\"name\":3}").is_err());
    }

    #[test]
    fn workload_resolution_is_deterministic() {
        let scale = tiny_scale();
        let a = WorkloadSet::Paper.resolve(&scale, 1).unwrap();
        let b = WorkloadSet::Paper.resolve(&scale, 1).unwrap();
        let c = WorkloadSet::Paper.resolve(&scale, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5);
        let i = WorkloadSet::Intensive { cores: 4 }
            .resolve(&scale, 1)
            .unwrap();
        assert_eq!(i.len(), 2);
        assert!(i.iter().all(|w| w.cores() == 4));
    }

    #[test]
    fn trace_specs_roundtrip_through_json() {
        let dir = std::env::temp_dir().join(format!("dsarp-spec-traces-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("b.trace"), "2 0x80\n").unwrap();

        let scale = tiny_scale();
        let spec = CampaignSpec::new("traced", scale)
            .with_sweep(SweepSpec::new(
                "dir",
                WorkloadSet::trace_dir(dir.to_string_lossy().into_owned(), 2),
                &[Mechanism::RefAb],
                &[Density::G8],
            ))
            .with_sweep(SweepSpec::new(
                "files",
                WorkloadSet::TraceFiles {
                    // Reversed bundle order: same traces, different cores.
                    files: vec![
                        dir.join("b.trace").to_string_lossy().into_owned(),
                        dir.join("a.trace").to_string_lossy().into_owned(),
                    ],
                    cores: 2,
                },
                &[Mechanism::RefAb],
                &[Density::G8],
            ));
        let back = CampaignSpec::from_json(&spec.to_json()).expect("trace specs reload");
        assert_eq!(back, spec);
        for (a, b) in spec.sweeps.iter().zip(&back.sweeps) {
            let fps: Vec<_> = a
                .jobs(&scale, spec.workload_seed)
                .unwrap()
                .iter()
                .map(Job::fingerprint)
                .collect();
            let back_fps: Vec<_> = b
                .jobs(&scale, back.workload_seed)
                .unwrap()
                .iter()
                .map(Job::fingerprint)
                .collect();
            assert_eq!(fps, back_fps, "sweep {} drifted across JSON", a.name);
        }

        // Both sweeps replay the same two traces on the same geometry, so
        // the per-trace alone jobs collapse across sweeps; the grid cells
        // differ (core order is part of the key: b+a is not a+b).
        let dir_jobs = spec.sweeps[0].jobs(&scale, spec.workload_seed).unwrap();
        let file_jobs = spec.sweeps[1].jobs(&scale, spec.workload_seed).unwrap();
        let dir_fps: std::collections::HashSet<_> = dir_jobs.iter().map(Job::fingerprint).collect();
        let shared = file_jobs
            .iter()
            .filter(|j| dir_fps.contains(&j.fingerprint()))
            .count();
        assert_eq!(shared, 2, "per-trace alone jobs dedup across sweeps");
        assert_eq!(file_jobs.len(), 3, "2 alone + 1 grid");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_expansion_rejects_bad_trace_sets() {
        let scale = tiny_scale();
        let sweep = SweepSpec::new(
            "ghost",
            WorkloadSet::trace_dir("/nonexistent/trace/dir", 1),
            &[Mechanism::RefAb],
            &[Density::G8],
        );
        let err = sweep.jobs(&scale, WORKLOAD_SEED).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/trace/dir"), "{err}");
    }
}
