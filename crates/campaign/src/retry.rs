//! Bounded retries with exponential backoff and deterministic jitter.
//!
//! Used by the remote-store client for transient connection/5xx failures
//! and by the worker loop for lease-acquire races. Jitter is derived from
//! a caller-supplied seed (owner id, shard number), not wall-clock or OS
//! randomness, so retry schedules are reproducible run-to-run while still
//! de-synchronizing distinct workers.

use std::io;
use std::time::Duration;

/// A bounded retry schedule: `max_attempts` tries total, sleeping
/// `base_delay * 2^attempt` (capped at `max_delay`) between them, scaled
/// by a deterministic jitter factor in `[0.5, 1.0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff base: the delay before the first retry (pre-jitter).
    pub base_delay: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// The remote client's default: 5 attempts, 50 ms doubling to 800 ms.
    pub const fn remote() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(800),
        }
    }

    /// Lease-acquire races resolve in milliseconds: 3 attempts, 5 ms base.
    pub const fn lease_race() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
        }
    }

    /// The pre-retry sleep after failed attempt number `attempt`
    /// (0-based), jittered deterministically by `seed`.
    pub fn delay_for(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        // splitmix64 of (seed, attempt) -> jitter factor in [0.5, 1.0).
        let mix = splitmix64(seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let frac = (mix >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + frac / 2.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether an I/O error kind is worth retrying: connection-level
/// failures that a healthy peer (or a restarted server) would not repeat.
/// `TimedOut` covers HTTP 5xx, which the remote client maps onto it.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
    )
}

/// Runs `op` until it succeeds, fails permanently, or the policy's
/// attempts are exhausted. Only errors for which [`is_transient`] holds
/// are retried; the last error is returned annotated with the attempt
/// count and `what`.
///
/// # Errors
///
/// The first permanent error, or the final transient error once
/// `policy.max_attempts` is exhausted.
pub fn retry_transient<T>(
    policy: &RetryPolicy,
    seed: u64,
    what: &str,
    op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    retry_transient_observed(policy, seed, what, |_, _, _| {}, op)
}

/// [`retry_transient`] with an observer: `on_retry(attempt, delay, error)`
/// is called before each back-off sleep (never for the final failure or a
/// permanent error), so callers can surface retry activity — the campaign
/// event log records one `retry_attempt` event per call.
///
/// # Errors
///
/// As [`retry_transient`].
pub fn retry_transient_observed<T>(
    policy: &RetryPolicy,
    seed: u64,
    what: &str,
    mut on_retry: impl FnMut(u32, Duration, &io::Error),
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(e.kind()) && attempt + 1 < policy.max_attempts => {
                let delay = policy.delay_for(attempt, seed);
                on_retry(attempt, delay, &e);
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) if is_transient(e.kind()) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("{what}: still failing after {} attempts: {e}", attempt + 1),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

/// A stable jitter seed from an owner id and shard number.
pub fn seed_for(owner: &str, shard: usize) -> u64 {
    let h = owner.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    });
    h ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Error, ErrorKind};

    #[test]
    fn delays_are_deterministic_bounded_and_growing() {
        let p = RetryPolicy::remote();
        let a: Vec<Duration> = (0..6).map(|i| p.delay_for(i, 42)).collect();
        let b: Vec<Duration> = (0..6).map(|i| p.delay_for(i, 42)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        for (i, d) in a.iter().enumerate() {
            assert!(*d <= p.max_delay, "attempt {i} exceeds the cap: {d:?}");
            assert!(*d >= p.base_delay / 2, "attempt {i} under-sleeps: {d:?}");
        }
        assert!(a[2] > a[0], "backoff must grow before the cap");
        let other: Vec<Duration> = (0..6).map(|i| p.delay_for(i, 43)).collect();
        assert_ne!(a, other, "different seeds must de-synchronize");
    }

    #[test]
    fn retries_transient_until_success() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let mut calls = 0;
        let out = retry_transient(&p, 1, "op", || {
            calls += 1;
            if calls < 3 {
                Err(Error::new(ErrorKind::ConnectionRefused, "down"))
            } else {
                Ok(calls)
            }
        })
        .unwrap();
        assert_eq!(out, 3);
    }

    #[test]
    fn observer_sees_each_backoff_but_not_the_final_failure() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let mut seen = Vec::new();
        let err = retry_transient_observed::<()>(
            &p,
            5,
            "op",
            |attempt, delay, e| seen.push((attempt, delay, e.kind())),
            || Err(Error::new(ErrorKind::ConnectionReset, "flaky")),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        assert_eq!(seen.len(), 2, "one callback per back-off sleep");
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 1);
        assert!(seen
            .iter()
            .all(|(_, _, k)| *k == ErrorKind::ConnectionReset));
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let p = RetryPolicy::remote();
        let mut calls = 0;
        let err = retry_transient::<()>(&p, 1, "op", || {
            calls += 1;
            Err(Error::new(ErrorKind::InvalidData, "bad record"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "permanent errors must not retry");
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn transient_errors_exhaust_with_attempt_count() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1),
        };
        let mut calls = 0;
        let err = retry_transient::<()>(&p, 7, "append", || {
            calls += 1;
            Err(Error::new(ErrorKind::BrokenPipe, "gone"))
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.to_string().contains("append"), "{err}");
        assert!(err.to_string().contains("3 attempts"), "{err}");
    }
}
