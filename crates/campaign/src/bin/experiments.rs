//! Regenerates every table and figure of the paper's evaluation through
//! the campaign engine: all runs are content-addressed, cached under the
//! campaign store, and resumable — re-running reuses every completed cell.
//!
//! ```text
//! cargo run --release -p dsarp-campaign --bin experiments -- [--scale quick|full]
//!     [--cycles N] [--per-category N] [--threads N] [--out DIR]
//!     [--campaign DIR] [--fresh] [--exp NAME]
//! ```
//!
//! Outputs one CSV per artifact under `--out` (default `results/`), a
//! combined `EXPERIMENTS_RAW.md`, and `campaign_report.json` with cache
//! statistics. The result store lives under `--campaign` (default
//! `.campaign/`); `--fresh` wipes it first.

use dsarp_campaign::{export, Campaign, CampaignReport, CampaignSpec};
use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::experiments::{
    ablations, chart, fig05, fig06_07, fig12_table2, fig13, fig14, fig15, fig16, harness::Scale,
    overlap, report, table3, table4, table5, table6,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    scale: Scale,
    out: PathBuf,
    campaign_dir: PathBuf,
    fresh: bool,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut scale = Scale::full();
    // Individual knobs are collected separately and applied after the
    // loop, so `--cycles 4000 --scale quick` and `--scale quick --cycles
    // 4000` mean the same thing.
    let mut cycles = None;
    let mut per_category = None;
    let mut threads = None;
    let mut out = PathBuf::from("results");
    let mut campaign_dir = PathBuf::from(".campaign");
    let mut fresh = false;
    let mut only = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| panic!("missing value for {}", argv[*i - 1]))
                .clone()
        };
        match argv[i].as_str() {
            "--scale" => {
                scale = match next(&mut i).as_str() {
                    "quick" => Scale::quick(),
                    "full" => Scale::full(),
                    other => panic!("unknown scale `{other}`"),
                }
            }
            "--cycles" => cycles = Some(next(&mut i).parse().expect("--cycles")),
            "--per-category" => per_category = Some(next(&mut i).parse().expect("--per-category")),
            "--threads" => threads = Some(next(&mut i).parse().expect("--threads")),
            "--out" => out = PathBuf::from(next(&mut i)),
            "--campaign" => campaign_dir = PathBuf::from(next(&mut i)),
            "--fresh" => fresh = true,
            "--exp" => only = Some(next(&mut i)),
            other => panic!("unknown argument `{other}` (see the module docs)"),
        }
        i += 1;
    }
    if let Some(c) = cycles {
        scale.dram_cycles = c;
    }
    if let Some(p) = per_category {
        scale.per_category = p;
    }
    if let Some(t) = threads {
        scale.threads = t;
    }
    if let Some(name) = only.as_deref() {
        const KNOWN: [&str; 15] = [
            "fig5",
            "fig6",
            "fig7",
            "fig12",
            "table2",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "table3",
            "table4",
            "table5",
            "table6",
            "overlap",
            "ablations",
        ];
        assert!(
            KNOWN.contains(&name),
            "unknown experiment `{name}`; expected one of {KNOWN:?}"
        );
    }
    Args {
        scale,
        out,
        campaign_dir,
        fresh,
        only,
    }
}

fn wanted(only: &Option<String>, name: &str) -> bool {
    only.as_deref().is_none_or(|o| o == name)
}

/// Which sweep-name prefixes the requested artifacts need.
fn required_sweeps(only: &Option<String>) -> Vec<&'static str> {
    const MAIN_ARTIFACTS: [&str; 8] = [
        "fig6", "fig7", "fig12", "table2", "fig13", "fig14", "fig15", "fig16",
    ];
    let mut prefixes = Vec::new();
    if MAIN_ARTIFACTS.iter().any(|n| wanted(only, n)) {
        prefixes.push("main");
    }
    for (artifact, prefix) in [
        ("table3", "table3/"),
        ("table4", "table4/"),
        ("table5", "table5/"),
        ("table6", "table6"),
        ("overlap", "overlap"),
        ("ablations", "ablations/"),
    ] {
        if wanted(only, artifact) {
            prefixes.push(prefix);
        }
    }
    prefixes
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let out = &args.out;
    std::fs::create_dir_all(out).expect("create output dir");
    let mut md = String::from("# DSARP reproduction — raw experiment output\n\n");
    md.push_str(&format!(
        "Scale: {} DRAM cycles/run, {} workloads/category, {} threads.\n\n",
        scale.dram_cycles,
        scale.per_category,
        scale.resolved_threads()
    ));
    let t0 = Instant::now();

    // Figure 5 is analytic: no simulation, no campaign.
    if wanted(&args.only, "fig5") {
        let rows = fig05::run();
        report::write_csv(out, "fig05_trfc_trend", &rows).unwrap();
        md.push_str(&report::to_markdown("Figure 5: tRFCab trend (ns)", &rows));
        println!("[{:>7.1?}] fig5 done", t0.elapsed());
    }

    // Everything else reduces from the paper campaign.
    if args.fresh {
        let store = args.campaign_dir.join("paper");
        if store.exists() {
            std::fs::remove_dir_all(&store).expect("wipe campaign store");
        }
    }
    let prefixes = required_sweeps(&args.only);
    if prefixes.is_empty() {
        finish(out, &md, t0);
        return;
    }
    let spec = CampaignSpec::paper(scale).filtered(&prefixes);
    let mut campaign = Campaign::open(&args.campaign_dir, spec).expect("open campaign store");
    campaign.verbose = true;
    let result = campaign.run().expect("campaign execution");
    println!(
        "[{:>7.1?}] campaign done: {} cells, {} cached, {} simulated",
        t0.elapsed(),
        result.stats.cells,
        result.stats.cache_hits,
        result.stats.simulated
    );
    export::write_report_json(out, &result).unwrap();

    if prefixes.contains(&"main") {
        reduce_main_grid(&args, &result, &mut md, &t0, out);
    }
    if wanted(&args.only, "table3") {
        let rows: Vec<table3::Table3Row> = table3::CORE_SWEEP
            .iter()
            .map(|&cores| table3::reduce(result.grid(&format!("table3/cores{cores}")), cores))
            .collect();
        report::write_csv(out, "table3_core_count", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 3: DSARP vs REFab by core count (32 Gb, intensive, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table3 done", t0.elapsed());
    }
    if wanted(&args.only, "table4") {
        let rows: Vec<table4::Table4Row> = table4::SWEEP
            .iter()
            .map(|&(faw, rrd)| {
                table4::reduce(result.grid(&format!("table4/faw{faw}-rrd{rrd}")), faw, rrd)
            })
            .collect();
        report::write_csv(out, "table4_tfaw", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 4: SARPpb over REFpb vs tFAW/tRRD (32 Gb, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table4 done", t0.elapsed());
    }
    if wanted(&args.only, "table5") {
        let rows: Vec<table5::Table5Row> = table5::SWEEP
            .iter()
            .map(|&n| table5::reduce(result.grid(&format!("table5/sub{n}")), n))
            .collect();
        report::write_csv(out, "table5_subarrays", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 5: SARPpb over REFpb vs subarrays/bank (32 Gb, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table5 done", t0.elapsed());
    }
    if wanted(&args.only, "ablations") {
        let grids = ablations::AblationGrids {
            throttle: result.grid("ablations/throttle").clone(),
            unthrottled: result.grid("ablations/unthrottled").clone(),
            darp: result.grid("ablations/darp").clone(),
            watermarks: ablations::WATERMARK_SWEEP
                .iter()
                .map(|&(enter, exit)| {
                    (
                        enter,
                        exit,
                        result.grid(&format!("ablations/wm{enter}-{exit}")).clone(),
                    )
                })
                .collect(),
        };
        let rows = ablations::reduce(&grids);
        report::write_csv(out, "ablations", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Ablations (32 Gb, intensive, %)",
            &rows,
        ));
        println!("[{:>7.1?}] ablations done", t0.elapsed());
    }
    if wanted(&args.only, "overlap") {
        let rows = overlap::reduce(result.grid("overlap"), &overlap::OVERLAP_DENSITIES);
        report::write_csv(out, "overlap_extension", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Extension: footnote-5 overlapped REFpb (% over REFpb)",
            &rows,
        ));
        println!("[{:>7.1?}] overlap done", t0.elapsed());
    }
    if wanted(&args.only, "table6") {
        let rows = table6::reduce(result.grid("table6"), &Density::evaluated());
        report::write_csv(out, "table6_64ms", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 6: DSARP improvements at 64 ms retention (%)",
            &rows,
        ));
        println!("[{:>7.1?}] table6 done", t0.elapsed());
    }

    finish(out, &md, t0);
}

fn reduce_main_grid(
    args: &Args,
    result: &CampaignReport,
    md: &mut String,
    t0: &Instant,
    out: &Path,
) {
    let densities = Density::evaluated();
    let grid = result.grid("main");
    export::write_grid(out, "main_grid", grid).unwrap();

    if wanted(&args.only, "fig6") || wanted(&args.only, "fig7") {
        let (fig6, fig7) = fig06_07::reduce(grid, &densities);
        report::write_csv(out, "fig06_refab_loss", &fig6).unwrap();
        report::write_csv(out, "fig07_refab_refpb_loss", &fig7).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 6: WS loss of REFab vs no-refresh (%)",
            &fig6,
        ));
        md.push_str(&report::to_markdown(
            "Figure 7: WS loss of REFab/REFpb vs no-refresh (%)",
            &fig7,
        ));
    }

    if wanted(&args.only, "fig12") || wanted(&args.only, "table2") {
        let fig12 = fig12_table2::reduce_fig12(grid, &densities);
        let table2 = fig12_table2::reduce_table2(grid, &densities);
        report::write_csv(out, "fig12_sorted_ws", &fig12).unwrap();
        let series: Vec<(&str, Vec<f64>)> = [Mechanism::RefPb, Mechanism::Darp, Mechanism::Dsarp]
            .iter()
            .map(|m| {
                let mut pts: Vec<&fig12_table2::Fig12Point> = fig12
                    .iter()
                    .filter(|p| p.density == Density::G32 && p.mechanism == *m)
                    .collect();
                pts.sort_by_key(|p| p.sorted_index);
                (m.label(), pts.iter().map(|p| p.ws_over_refab).collect())
            })
            .collect();
        md.push_str(&chart::line_chart(
            "Figure 12 at 32 Gb: WS over REFab, workloads sorted by DARP gain",
            &series,
            12,
        ));
        report::write_csv(out, "table2_ws_improvements", &table2).unwrap();
        md.push_str(&report::to_markdown(
            "Table 2: max / gmean WS improvement over REFpb and REFab (%)",
            &table2,
        ));
    }

    if wanted(&args.only, "fig13") {
        let f13 = fig13::reduce(grid, &densities);
        report::write_csv(out, "fig13_all_mechanisms", &f13).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 13: gmean WS improvement over REFab (%)",
            &f13,
        ));
        let bars: Vec<(String, f64)> = f13
            .iter()
            .filter(|r| r.density == Density::G32)
            .map(|r| (r.mechanism.label().to_string(), r.gmean_over_refab_pct))
            .collect();
        md.push_str(&chart::bar_chart(
            "Figure 13 at 32 Gb (% over REFab)",
            &bars,
            40,
        ));
    }

    if wanted(&args.only, "fig14") {
        let f14 = fig14::reduce(grid, &densities);
        report::write_csv(out, "fig14_energy", &f14).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 14: energy per access (nJ)",
            &f14,
        ));
    }

    if wanted(&args.only, "fig15") {
        let f15 = fig15::reduce(grid, &densities);
        report::write_csv(out, "fig15_intensity", &f15).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 15: DSARP WS improvement by memory intensity (%)",
            &f15,
        ));
    }

    if wanted(&args.only, "fig16") {
        let f16 = fig16::reduce(grid, &densities);
        report::write_csv(out, "fig16_fgr_ar", &f16).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 16: WS normalized to REFab",
            &f16,
        ));
    }
    println!("[{:>7.1?}] grid reductions done", t0.elapsed());
}

fn finish(out: &Path, md: &str, t0: Instant) {
    std::fs::write(out.join("EXPERIMENTS_RAW.md"), md).expect("write markdown report");
    println!(
        "[{:>7.1?}] all requested experiments written to {}",
        t0.elapsed(),
        out.display()
    );
}
