//! Structured campaign progress events.
//!
//! Every notable step of a campaign run — planning, per-job simulation,
//! append failures, lease lifecycle, transport retries — is an [`Event`].
//! The [`EventLog`] renders each event twice:
//!
//! * as one flat JSON object per line into an optional JSONL sink
//!   (`experiments ... --events PATH`), for machines; and
//! * as the human console line the runner has always printed, for people —
//!   progress lines to stdout when verbose, failure lines to stderr
//!   always.
//!
//! Events are diagnostics only: they never feed fingerprints, shard
//! records or grids, so enabling the log cannot perturb campaign results.

use crate::lease::now_ms;
use serde_json::{Map, Value};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// One campaign progress event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A campaign run finished planning: expansion, dedup and cache
    /// partition are known, simulation is about to start.
    CampaignPlanned {
        /// Campaign name.
        campaign: String,
        /// Expanded cells across all sweeps.
        cells: usize,
        /// Distinct fingerprints after in-flight dedup.
        unique_jobs: usize,
        /// Cells collapsed onto another cell's simulation.
        deduped: usize,
        /// Unique jobs answered from the store.
        cached: usize,
        /// Unique jobs to simulate this run.
        to_simulate: usize,
        /// Worker threads simulating them.
        threads: usize,
    },
    /// A campaign run finished simulating its misses.
    CampaignSimulated {
        /// Campaign name.
        campaign: String,
        /// Jobs simulated this run.
        simulated: usize,
        /// Wall time since the run started.
        wall: Duration,
    },
    /// One cell was simulated (by the single-process executor or a
    /// leased worker).
    JobSimulated {
        /// Worker id, when run under a lease.
        owner: Option<String>,
        /// The shard the result routes to.
        shard: usize,
        /// Job label.
        label: String,
        /// Simulation wall time.
        wall: Duration,
    },
    /// A freshly simulated result could not be appended to its shard.
    AppendFailed {
        /// Worker id, when run under a lease.
        owner: Option<String>,
        /// The shard the append targeted.
        shard: usize,
        /// Job label.
        label: String,
        /// The I/O error.
        error: String,
    },
    /// End-of-run persist-failure summary (the failed results stay usable
    /// in memory this run and re-simulate next time).
    PersistFailures {
        /// Campaign name.
        campaign: String,
        /// Failed appends.
        count: usize,
    },
    /// A worker leased a shard.
    LeaseAcquired {
        /// Worker id.
        owner: String,
        /// Shard number.
        shard: usize,
        /// Jobs missing from the shard at lease time.
        missing_jobs: usize,
        /// A dead owner's stale lease was evicted to take it.
        reclaimed: bool,
    },
    /// A worker found a shard held by a live peer.
    LeaseHeld {
        /// Worker id.
        owner: String,
        /// Shard number.
        shard: usize,
        /// The holder's worker id.
        holder: String,
        /// This worker evicted a stale lease but lost the follow-up race.
        evicted_stale: bool,
    },
    /// A worker is re-trying a lease acquire after an eviction race.
    LeaseRetry {
        /// Worker id.
        owner: String,
        /// Shard number.
        shard: usize,
        /// 0-based failed attempt number.
        attempt: u32,
        /// Back-off before the next attempt.
        delay: Duration,
    },
    /// A heartbeat renewal of a held lease.
    LeaseRenewed {
        /// Worker id.
        owner: String,
        /// Shard number.
        shard: usize,
        /// Whether the renewal succeeded (a failure means the lease was
        /// reclaimed after a stall; the protocol tolerates it).
        ok: bool,
    },
    /// A worker released a shard lease.
    LeaseReleased {
        /// Worker id.
        owner: String,
        /// Shard number.
        shard: usize,
    },
    /// A worker found every remaining shard held by live peers and slept.
    WaitRound {
        /// Worker id.
        owner: String,
        /// Cumulative wait rounds this drain.
        rounds: usize,
    },
    /// A transient transport failure is being retried (remote store).
    RetryAttempt {
        /// What was being attempted.
        what: String,
        /// 0-based failed attempt number.
        attempt: u32,
        /// Back-off before the next attempt.
        delay: Duration,
        /// The transient error.
        error: String,
    },
}

fn ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn num(n: u64) -> Value {
    Value::Number(serde_json::Number::from_u64(n))
}

impl Event {
    /// The event's stable snake_case name (the JSONL `event` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::CampaignPlanned { .. } => "campaign_planned",
            Event::CampaignSimulated { .. } => "campaign_simulated",
            Event::JobSimulated { .. } => "job_simulated",
            Event::AppendFailed { .. } => "append_failed",
            Event::PersistFailures { .. } => "persist_failures",
            Event::LeaseAcquired { .. } => "lease_acquired",
            Event::LeaseHeld { .. } => "lease_held",
            Event::LeaseRetry { .. } => "lease_retry",
            Event::LeaseRenewed { .. } => "lease_renewed",
            Event::LeaseReleased { .. } => "lease_released",
            Event::WaitRound { .. } => "wait_round",
            Event::RetryAttempt { .. } => "retry_attempt",
        }
    }

    /// The event as a flat JSON object: `event`, `ts_ms`, then the
    /// variant's fields. Hand-assembled (the vendored serde has no enum
    /// tagging attributes), so the schema is exactly what this renders.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("event".into(), Value::String(self.name().into()));
        m.insert("ts_ms".into(), num(now_ms()));
        let mut put = |k: &str, v: Value| {
            m.insert(k.into(), v);
        };
        match self {
            Event::CampaignPlanned {
                campaign,
                cells,
                unique_jobs,
                deduped,
                cached,
                to_simulate,
                threads,
            } => {
                put("campaign", Value::String(campaign.clone()));
                put("cells", num(*cells as u64));
                put("unique_jobs", num(*unique_jobs as u64));
                put("deduped", num(*deduped as u64));
                put("cached", num(*cached as u64));
                put("to_simulate", num(*to_simulate as u64));
                put("threads", num(*threads as u64));
            }
            Event::CampaignSimulated {
                campaign,
                simulated,
                wall,
            } => {
                put("campaign", Value::String(campaign.clone()));
                put("simulated", num(*simulated as u64));
                put("wall_ms", num(ms(*wall)));
            }
            Event::JobSimulated {
                owner,
                shard,
                label,
                wall,
            } => {
                if let Some(owner) = owner {
                    put("owner", Value::String(owner.clone()));
                }
                put("shard", num(*shard as u64));
                put("label", Value::String(label.clone()));
                put("wall_ms", num(ms(*wall)));
            }
            Event::AppendFailed {
                owner,
                shard,
                label,
                error,
            } => {
                if let Some(owner) = owner {
                    put("owner", Value::String(owner.clone()));
                }
                put("shard", num(*shard as u64));
                put("label", Value::String(label.clone()));
                put("error", Value::String(error.clone()));
            }
            Event::PersistFailures { campaign, count } => {
                put("campaign", Value::String(campaign.clone()));
                put("count", num(*count as u64));
            }
            Event::LeaseAcquired {
                owner,
                shard,
                missing_jobs,
                reclaimed,
            } => {
                put("owner", Value::String(owner.clone()));
                put("shard", num(*shard as u64));
                put("missing_jobs", num(*missing_jobs as u64));
                put("reclaimed", Value::Bool(*reclaimed));
            }
            Event::LeaseHeld {
                owner,
                shard,
                holder,
                evicted_stale,
            } => {
                put("owner", Value::String(owner.clone()));
                put("shard", num(*shard as u64));
                put("holder", Value::String(holder.clone()));
                put("evicted_stale", Value::Bool(*evicted_stale));
            }
            Event::LeaseRetry {
                owner,
                shard,
                attempt,
                delay,
            } => {
                put("owner", Value::String(owner.clone()));
                put("shard", num(*shard as u64));
                put("attempt", num(u64::from(*attempt)));
                put("delay_ms", num(ms(*delay)));
            }
            Event::LeaseRenewed { owner, shard, ok } => {
                put("owner", Value::String(owner.clone()));
                put("shard", num(*shard as u64));
                put("ok", Value::Bool(*ok));
            }
            Event::LeaseReleased { owner, shard } => {
                put("owner", Value::String(owner.clone()));
                put("shard", num(*shard as u64));
            }
            Event::WaitRound { owner, rounds } => {
                put("owner", Value::String(owner.clone()));
                put("rounds", num(*rounds as u64));
            }
            Event::RetryAttempt {
                what,
                attempt,
                delay,
                error,
            } => {
                put("what", Value::String(what.clone()));
                put("attempt", num(u64::from(*attempt)));
                put("delay_ms", num(ms(*delay)));
                put("error", Value::String(error.clone()));
            }
        }
        Value::Object(m)
    }

    /// The human console line, if this event has one: `(to_stderr,
    /// needs_verbose, line)`. Failure lines go to stderr unconditionally;
    /// progress lines go to stdout only when verbose. The texts are the
    /// runner's historical lines, which tooling greps.
    fn console(&self) -> Option<(bool, bool, String)> {
        match self {
            Event::CampaignPlanned {
                campaign,
                cells,
                unique_jobs,
                deduped,
                cached,
                to_simulate,
                threads,
            } => Some((
                false,
                true,
                format!(
                    "campaign `{campaign}`: {cells} cells -> {unique_jobs} unique jobs \
                     ({deduped} deduped in flight), {cached} cached, {to_simulate} to \
                     simulate on {threads} threads"
                ),
            )),
            Event::CampaignSimulated {
                campaign,
                simulated,
                wall,
            } => Some((
                false,
                true,
                format!("campaign `{campaign}`: simulated {simulated} jobs in {wall:.1?}"),
            )),
            Event::AppendFailed {
                shard,
                label,
                error,
                ..
            } => Some((
                true,
                false,
                format!("campaign store: append failed for {label} (shard {shard}): {error}"),
            )),
            Event::PersistFailures { campaign, count } => Some((
                true,
                false,
                format!(
                    "campaign `{campaign}`: {count} results could not be persisted and \
                     will re-simulate on the next run"
                ),
            )),
            Event::LeaseAcquired {
                owner,
                shard,
                missing_jobs,
                reclaimed,
            } => Some((
                false,
                true,
                format!(
                    "worker `{owner}`: leased shard {shard} ({missing_jobs} missing jobs{})",
                    if *reclaimed {
                        ", reclaimed from dead owner"
                    } else {
                        ""
                    }
                ),
            )),
            Event::LeaseHeld {
                owner,
                shard,
                holder,
                evicted_stale,
            } => Some((
                false,
                true,
                format!(
                    "worker `{owner}`: shard {shard} held by `{holder}`{}",
                    if *evicted_stale {
                        " (after this worker evicted a stale lease)"
                    } else {
                        ""
                    }
                ),
            )),
            Event::JobSimulated { .. }
            | Event::LeaseRetry { .. }
            | Event::LeaseRenewed { .. }
            | Event::LeaseReleased { .. }
            | Event::WaitRound { .. }
            | Event::RetryAttempt { .. } => None,
        }
    }
}

/// A campaign event sink: an optional JSONL file plus the console.
///
/// Cloneable via `Arc`; `emit` takes `&self` and is safe from executor
/// worker threads.
#[derive(Debug, Default)]
pub struct EventLog {
    sink: Option<Mutex<std::fs::File>>,
}

impl EventLog {
    /// A log with no JSONL sink: events only render their console lines.
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// Opens (appending) a JSONL sink at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn to_path(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog {
            sink: Some(Mutex::new(file)),
        })
    }

    /// Whether a JSONL sink is attached.
    pub fn is_recording(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event: appends its JSON line to the sink (if any) and
    /// prints its console line (progress lines only when `verbose`).
    /// Sink write failures are swallowed — diagnostics must never fail a
    /// campaign.
    pub fn emit(&self, verbose: bool, event: &Event) {
        if let Some(sink) = &self.sink {
            let line = event.to_json().to_string();
            let mut f = sink.lock().expect("event sink lock");
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        if let Some((to_stderr, needs_verbose, line)) = event.console() {
            if to_stderr {
                eprintln!("{line}");
            } else if verbose && needs_verbose {
                println!("{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_flat_json_with_name_and_timestamp() {
        let e = Event::LeaseAcquired {
            owner: "w-1".into(),
            shard: 3,
            missing_jobs: 7,
            reclaimed: true,
        };
        let v = e.to_json();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("event").unwrap().as_str(), Some("lease_acquired"));
        assert!(obj.get("ts_ms").unwrap().as_u64().unwrap() > 0);
        assert_eq!(obj.get("owner").unwrap().as_str(), Some("w-1"));
        assert_eq!(obj.get("shard").unwrap().as_u64(), Some(3));
        assert_eq!(obj.get("reclaimed"), Some(&Value::Bool(true)));
    }

    #[test]
    fn append_failures_name_shard_and_label() {
        let e = Event::AppendFailed {
            owner: Some("w-9".into()),
            shard: 5,
            label: "mix00/DSARP@32Gb".into(),
            error: "disk full".into(),
        };
        let (to_stderr, _, line) = e.console().unwrap();
        assert!(to_stderr);
        assert!(line.contains("mix00/DSARP@32Gb"), "{line}");
        assert!(line.contains("shard 5"), "{line}");
        let obj = e.to_json();
        assert_eq!(
            obj.as_object().unwrap().get("label").unwrap().as_str(),
            Some("mix00/DSARP@32Gb")
        );
    }

    #[test]
    fn sink_collects_one_json_line_per_event() {
        let dir = std::env::temp_dir()
            .join("dsarp-events-tests")
            .join(format!("sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let log = EventLog::to_path(&path).unwrap();
        assert!(log.is_recording());
        log.emit(
            false,
            &Event::WaitRound {
                owner: "w".into(),
                rounds: 1,
            },
        );
        log.emit(
            false,
            &Event::LeaseReleased {
                owner: "w".into(),
                shard: 2,
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.as_object().unwrap().get("event").unwrap().as_str(),
            Some("wait_round")
        );
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            second.as_object().unwrap().get("event").unwrap().as_str(),
            Some("lease_released")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_lines_match_legacy_console_format() {
        let planned = Event::CampaignPlanned {
            campaign: "paper".into(),
            cells: 10,
            unique_jobs: 8,
            deduped: 2,
            cached: 8,
            to_simulate: 0,
            threads: 4,
        };
        let (_, _, line) = planned.console().unwrap();
        assert_eq!(
            line,
            "campaign `paper`: 10 cells -> 8 unique jobs (2 deduped in flight), \
             8 cached, 0 to simulate on 4 threads"
        );
        let held = Event::LeaseHeld {
            owner: "a".into(),
            shard: 1,
            holder: "b".into(),
            evicted_stale: false,
        };
        let (_, _, line) = held.console().unwrap();
        assert_eq!(line, "worker `a`: shard 1 held by `b`");
    }
}
