//! Content fingerprints for campaign jobs.
//!
//! A job's fingerprint is a 128-bit FNV-1a hash of the *canonical* JSON
//! rendering of its key — object keys sorted recursively, floats in
//! shortest round-trip form — so any change to a [`dsarp_sim::SimConfig`]
//! knob, a benchmark parameter, or the run length changes the fingerprint,
//! while re-serializing an identical key always reproduces it.

use serde_json::Value;
use std::fmt;

/// A 128-bit content hash identifying one simulation job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(text: &str) -> Option<Self> {
        (text.len() == 32)
            .then(|| u128::from_str_radix(text, 16).ok())
            .flatten()
            .map(Fingerprint)
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Fingerprints a value tree via its canonical rendering.
pub fn fingerprint_value(v: &Value) -> Fingerprint {
    let mut text = String::new();
    render_canonical(v, &mut text);
    fingerprint_bytes(text.as_bytes())
}

/// Fingerprints raw bytes (same FNV-1a-128 as [`fingerprint_value`]).
///
/// This is the content hash of trace files: a `TraceDir` workload folds
/// each trace's byte hash into its job fingerprints, so editing a trace
/// on disk invalidates exactly the cells that replay it.
pub fn fingerprint_bytes(bytes: &[u8]) -> Fingerprint {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    Fingerprint(h)
}

/// Renders `v` as JSON with object keys sorted recursively, so field
/// declaration order never leaks into fingerprints.
fn render_canonical(v: &Value, out: &mut String) {
    match v {
        Value::Object(m) => {
            let mut entries: Vec<(&String, &Value)> = m.iter().collect();
            entries.sort_by_key(|(k, _)| k.as_str());
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&Value::String((*k).clone()).to_string());
                out.push(':');
                render_canonical(val, out);
            }
            out.push('}');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_canonical(item, out);
            }
            out.push(']');
        }
        scalar => out.push_str(&scalar.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Map;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert((*k).to_string(), v.clone());
        }
        Value::Object(m)
    }

    #[test]
    fn key_order_does_not_matter() {
        let a = obj(&[("x", Value::Bool(true)), ("y", Value::Null)]);
        let b = obj(&[("y", Value::Null), ("x", Value::Bool(true))]);
        assert_eq!(fingerprint_value(&a), fingerprint_value(&b));
    }

    #[test]
    fn content_does_matter() {
        let a = obj(&[("x", Value::Bool(true))]);
        let b = obj(&[("x", Value::Bool(false))]);
        let c = obj(&[("z", Value::Bool(true))]);
        assert_ne!(fingerprint_value(&a), fingerprint_value(&b));
        assert_ne!(fingerprint_value(&a), fingerprint_value(&c));
    }

    #[test]
    fn byte_and_value_hashes_agree_on_the_rendering() {
        // `fingerprint_value` is definitionally the byte hash of the
        // canonical rendering; pin that so the two cannot drift.
        let v = obj(&[("x", Value::Bool(true))]);
        assert_eq!(fingerprint_value(&v), fingerprint_bytes(b"{\"x\":true}"),);
        assert_ne!(fingerprint_bytes(b"a"), fingerprint_bytes(b"b"));
        assert_ne!(fingerprint_bytes(b""), fingerprint_bytes(b"\0"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let fp = fingerprint_value(&Value::Null);
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
    }
}
