//! Individual simulation jobs: the unit of caching and execution.

use crate::fingerprint::{fingerprint_value, Fingerprint};
use dsarp_sim::{SimConfig, System};
use dsarp_workloads::{BenchmarkSpec, IntensityCategory, Workload};
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};

/// The raw, normalization-free result of one multiprogrammed run — enough
/// to recompute every [`dsarp_sim::Metrics`] once alone-IPCs are known.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-core IPC.
    pub ipc: Vec<f64>,
    /// Energy per DRAM access (nJ).
    pub energy_per_access_nj: f64,
    /// Sum of per-core IPCs.
    pub total_ipc: f64,
}

/// One schedulable simulation.
#[derive(Debug, Clone)]
pub enum Job {
    /// Single-benchmark alone-IPC measurement.
    Alone {
        /// The (already `alone()`-projected) configuration.
        cfg: SimConfig,
        /// The benchmark under measurement.
        bench: &'static BenchmarkSpec,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
    /// One multiprogrammed grid cell.
    Grid {
        /// Full system configuration.
        cfg: SimConfig,
        /// The workload mix.
        workload: Workload,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
}

/// What a job produced.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Alone-IPC of the measured benchmark.
    Alone(f64),
    /// Raw stats of the multiprogrammed run.
    Grid(RunSummary),
}

impl Job {
    /// A human-readable label (for logs and store records).
    pub fn label(&self) -> String {
        match self {
            Job::Alone { cfg, bench, .. } => {
                format!("alone/{}@{}", bench.name, cfg.density)
            }
            Job::Grid { cfg, workload, .. } => {
                format!(
                    "{}/{}@{}",
                    workload.name,
                    cfg.mechanism.label(),
                    cfg.density
                )
            }
        }
    }

    /// The job's content key: everything that determines its result.
    ///
    /// Workload *names* are deliberately excluded — two mixes assembling
    /// the same benchmarks in the same order onto the same configuration
    /// are the same simulation, whatever they are called.
    pub fn key_value(&self) -> Value {
        let mut m = Map::new();
        match self {
            Job::Alone { cfg, bench, cycles } => {
                m.insert("kind".into(), Value::String("alone".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "bench".into(),
                    serde_json::to_value(bench).expect("infallible"),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
            Job::Grid {
                cfg,
                workload,
                cycles,
            } => {
                m.insert("kind".into(), Value::String("grid".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "benchmarks".into(),
                    serde_json::to_value(&workload.benchmarks).expect("infallible"),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
        }
        Value::Object(m)
    }

    /// The job's content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint_value(&self.key_value())
    }

    /// Runs the simulation and packages the result as a store [`Record`]
    /// under `fp` (the single-process executor and distributed workers both
    /// persist through this, so record shapes cannot drift apart).
    pub fn run_record(&self, fp: Fingerprint) -> crate::store::Record {
        match self.execute() {
            JobOutput::Alone(ipc) => crate::store::Record::alone(fp, self.label(), ipc),
            JobOutput::Grid(summary) => crate::store::Record::grid(fp, self.label(), summary),
        }
    }

    /// Runs the simulation.
    pub fn execute(&self) -> JobOutput {
        match self {
            Job::Alone { cfg, bench, cycles } => {
                let wl = Workload {
                    name: format!("alone-{}", bench.name),
                    category: IntensityCategory::P100,
                    benchmarks: vec![bench],
                };
                JobOutput::Alone(System::new(cfg, &wl).run(*cycles).ipc[0].max(1e-9))
            }
            Job::Grid {
                cfg,
                workload,
                cycles,
            } => {
                let stats = System::new(cfg, workload).run(*cycles);
                JobOutput::Grid(RunSummary {
                    energy_per_access_nj: stats.energy_per_access_nj(),
                    total_ipc: stats.total_ipc(),
                    ipc: stats.ipc,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsarp_core::Mechanism;
    use dsarp_dram::Density;

    fn workload() -> Workload {
        dsarp_workloads::mixes::intensive_mixes(4, 1)[0].clone()
    }

    fn grid_job(cfg: SimConfig, cycles: u64) -> Job {
        Job::Grid {
            cfg,
            workload: workload(),
            cycles,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G32).with_cores(4);
        let base = grid_job(cfg, 10_000);
        assert_eq!(base.fingerprint(), grid_job(cfg, 10_000).fingerprint());

        let other_density = SimConfig::paper(Mechanism::Dsarp, Density::G8).with_cores(4);
        let other_mech = SimConfig::paper(Mechanism::RefAb, Density::G32).with_cores(4);
        let more_subarrays = cfg.with_subarrays(64);
        let other_seed = cfg.with_seed(99);
        let mut fps = vec![
            base.fingerprint(),
            grid_job(other_density, 10_000).fingerprint(),
            grid_job(other_mech, 10_000).fingerprint(),
            grid_job(more_subarrays, 10_000).fingerprint(),
            grid_job(other_seed, 10_000).fingerprint(),
            grid_job(cfg, 20_000).fingerprint(),
        ];
        fps.sort();
        fps.dedup();
        assert_eq!(
            fps.len(),
            6,
            "every knob change must change the fingerprint"
        );
    }

    #[test]
    fn workload_name_does_not_affect_fingerprint() {
        let cfg = SimConfig::paper(Mechanism::RefPb, Density::G16).with_cores(4);
        let mut renamed = workload();
        renamed.name = "other-name".into();
        let a = Job::Grid {
            cfg,
            workload: workload(),
            cycles: 5_000,
        };
        let b = Job::Grid {
            cfg,
            workload: renamed,
            cycles: 5_000,
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn alone_and_grid_kinds_do_not_collide() {
        let cfg = SimConfig::paper(Mechanism::NoRefresh, Density::G8);
        let alone = Job::Alone {
            cfg: cfg.alone(),
            bench: workload().benchmarks[0],
            cycles: 5_000,
        };
        let grid = grid_job(cfg, 5_000);
        assert_ne!(alone.fingerprint(), grid.fingerprint());
    }
}
