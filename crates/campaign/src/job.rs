//! Individual simulation jobs: the unit of caching and execution.

use crate::fingerprint::{fingerprint_value, Fingerprint};
use crate::traces::{TraceRef, TraceWorkload};
use dsarp_sim::{RunStats, SimConfig, SimTelemetry, SystemBuilder};
use dsarp_workloads::{BenchmarkSpec, Workload};
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};

/// The raw, normalization-free result of one multiprogrammed run — enough
/// to recompute every [`dsarp_sim::Metrics`] once alone-IPCs are known.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-core IPC.
    pub ipc: Vec<f64>,
    /// Energy per DRAM access (nJ).
    pub energy_per_access_nj: f64,
    /// Sum of per-core IPCs.
    pub total_ipc: f64,
}

/// One schedulable simulation.
#[derive(Debug, Clone)]
pub enum Job {
    /// Single-benchmark alone-IPC measurement.
    Alone {
        /// The (already `alone()`-projected) configuration.
        cfg: SimConfig,
        /// The benchmark under measurement.
        bench: &'static BenchmarkSpec,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
    /// One multiprogrammed grid cell.
    Grid {
        /// Full system configuration.
        cfg: SimConfig,
        /// The workload mix.
        workload: Workload,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
    /// Single-trace alone-IPC measurement (trace-driven workloads).
    TraceAlone {
        /// The (already `alone()`-projected) configuration.
        cfg: SimConfig,
        /// The trace under measurement.
        trace: TraceRef,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
    /// One multiprogrammed grid cell replaying a bundle of trace files.
    TraceGrid {
        /// Full system configuration.
        cfg: SimConfig,
        /// The trace bundle (one file per core).
        workload: TraceWorkload,
        /// DRAM cycles to simulate.
        cycles: u64,
    },
}

/// What a job produced.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Alone-IPC of the measured benchmark.
    Alone(f64),
    /// Raw stats of the multiprogrammed run.
    Grid(RunSummary),
}

impl Job {
    /// A human-readable label (for logs and store records).
    pub fn label(&self) -> String {
        match self {
            Job::Alone { cfg, bench, .. } => {
                format!("alone/{}@{}", bench.name, cfg.density)
            }
            Job::Grid { cfg, workload, .. } => {
                format!(
                    "{}/{}@{}",
                    workload.name,
                    cfg.mechanism.label(),
                    cfg.density
                )
            }
            Job::TraceAlone { cfg, trace, .. } => {
                format!("trace-alone/{}@{}", trace.name, cfg.density)
            }
            Job::TraceGrid { cfg, workload, .. } => {
                format!(
                    "trace/{}/{}@{}",
                    workload.name,
                    cfg.mechanism.label(),
                    cfg.density
                )
            }
        }
    }

    /// The job's content key: everything that determines its result.
    ///
    /// Workload *names* are deliberately excluded — two mixes assembling
    /// the same benchmarks in the same order onto the same configuration
    /// are the same simulation, whatever they are called. Trace jobs key
    /// on each file's *content hash*, never its path or name: renaming or
    /// moving a trace keeps every cached cell, while editing one byte of
    /// it invalidates exactly the cells that replay it.
    pub fn key_value(&self) -> Value {
        let mut m = Map::new();
        match self {
            Job::Alone { cfg, bench, cycles } => {
                m.insert("kind".into(), Value::String("alone".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "bench".into(),
                    serde_json::to_value(bench).expect("infallible"),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
            Job::Grid {
                cfg,
                workload,
                cycles,
            } => {
                m.insert("kind".into(), Value::String("grid".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "benchmarks".into(),
                    serde_json::to_value(&workload.benchmarks).expect("infallible"),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
            Job::TraceAlone { cfg, trace, cycles } => {
                m.insert("kind".into(), Value::String("trace-alone".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "trace".into(),
                    Value::String(trace.content_hash.to_string()),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
            Job::TraceGrid {
                cfg,
                workload,
                cycles,
            } => {
                m.insert("kind".into(), Value::String("trace-grid".into()));
                m.insert("cfg".into(), serde_json::to_value(cfg).expect("infallible"));
                m.insert(
                    "traces".into(),
                    Value::Array(
                        workload
                            .traces
                            .iter()
                            .map(|t| Value::String(t.content_hash.to_string()))
                            .collect(),
                    ),
                );
                m.insert(
                    "cycles".into(),
                    serde_json::to_value(cycles).expect("infallible"),
                );
            }
        }
        Value::Object(m)
    }

    /// The job's content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint_value(&self.key_value())
    }

    /// Runs the simulation and packages the result as a store
    /// [`Record`](crate::store::Record)
    /// under `fp` (the single-process executor and distributed workers both
    /// persist through this, so record shapes cannot drift apart).
    pub fn run_record(&self, fp: Fingerprint) -> crate::store::Record {
        match self.execute() {
            JobOutput::Alone(ipc) => crate::store::Record::alone(fp, self.label(), ipc),
            JobOutput::Grid(summary) => crate::store::Record::grid(fp, self.label(), summary),
        }
    }

    /// [`Job::run_record`] plus the run's [`SimTelemetry`] sidecar. The
    /// record is built from the same fields whether telemetry is sampled
    /// or not (sampling is observationally pure), so record bytes — and
    /// therefore shard files — are identical either way.
    pub fn run_record_with_telemetry(
        &self,
        fp: Fingerprint,
    ) -> (crate::store::Record, Option<Box<SimTelemetry>>) {
        self.run_record_with(fp, true, false)
    }

    /// [`Job::run_record`] with both execution options explicit (see
    /// [`Job::execute_with`]).
    pub fn run_record_with(
        &self,
        fp: Fingerprint,
        telemetry: bool,
        per_cycle: bool,
    ) -> (crate::store::Record, Option<Box<SimTelemetry>>) {
        let (output, telemetry) = self.execute_with(telemetry, per_cycle);
        let record = match output {
            JobOutput::Alone(ipc) => crate::store::Record::alone(fp, self.label(), ipc),
            JobOutput::Grid(summary) => crate::store::Record::grid(fp, self.label(), summary),
        };
        (record, telemetry)
    }

    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Trace jobs panic (with a message naming the file) if a trace file
    /// vanishes or its content changes between campaign expansion and
    /// execution — see [`TraceRef::open`].
    pub fn execute(&self) -> JobOutput {
        self.execute_with(false, false).0
    }

    /// [`Job::execute`], optionally sampling simulator telemetry and/or
    /// forcing per-cycle stepping (`per_cycle` — [`System::run_per_cycle`]
    /// instead of the skip-ahead [`System::run`]; results are identical by
    /// the simulator's exactness guarantee, only wall time differs).
    ///
    /// [`System::run`]: dsarp_sim::System::run
    /// [`System::run_per_cycle`]: dsarp_sim::System::run_per_cycle
    pub fn execute_with(
        &self,
        telemetry: bool,
        per_cycle: bool,
    ) -> (JobOutput, Option<Box<SimTelemetry>>) {
        let mut stats = self.run_stats(telemetry, per_cycle);
        let telemetry = stats.telemetry.take();
        let output = match self {
            Job::Alone { .. } | Job::TraceAlone { .. } => JobOutput::Alone(stats.ipc[0].max(1e-9)),
            Job::Grid { .. } | Job::TraceGrid { .. } => JobOutput::Grid(RunSummary {
                energy_per_access_nj: stats.energy_per_access_nj(),
                total_ipc: stats.total_ipc(),
                ipc: stats.ipc,
            }),
        };
        (output, telemetry)
    }

    /// Builds the job's [`dsarp_sim::System`] and runs it to raw stats.
    fn run_stats(&self, telemetry: bool, per_cycle: bool) -> RunStats {
        fn run(
            builder: SystemBuilder<'_>,
            cycles: u64,
            telemetry: bool,
            per_cycle: bool,
        ) -> RunStats {
            let mut system = builder.telemetry(telemetry).build();
            if per_cycle {
                system.run_per_cycle(cycles)
            } else {
                system.run(cycles)
            }
        }
        match self {
            Job::Alone { cfg, bench, cycles } => {
                let wl = Workload::alone_for(bench);
                run(
                    SystemBuilder::new(cfg).workload(&wl),
                    *cycles,
                    telemetry,
                    per_cycle,
                )
            }
            Job::Grid {
                cfg,
                workload,
                cycles,
            } => run(
                SystemBuilder::new(cfg).workload(workload),
                *cycles,
                telemetry,
                per_cycle,
            ),
            Job::TraceAlone { cfg, trace, cycles } => {
                let sources = vec![trace.open()];
                run(
                    SystemBuilder::new(cfg).trace_sources(sources),
                    *cycles,
                    telemetry,
                    per_cycle,
                )
            }
            Job::TraceGrid {
                cfg,
                workload,
                cycles,
            } => run(
                SystemBuilder::new(cfg).trace_sources(workload.sources(cfg.cores)),
                *cycles,
                telemetry,
                per_cycle,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsarp_core::Mechanism;
    use dsarp_dram::Density;

    fn workload() -> Workload {
        dsarp_workloads::mixes::intensive_mixes(4, 1)[0].clone()
    }

    fn grid_job(cfg: SimConfig, cycles: u64) -> Job {
        Job::Grid {
            cfg,
            workload: workload(),
            cycles,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G32).with_cores(4);
        let base = grid_job(cfg, 10_000);
        assert_eq!(base.fingerprint(), grid_job(cfg, 10_000).fingerprint());

        let other_density = SimConfig::paper(Mechanism::Dsarp, Density::G8).with_cores(4);
        let other_mech = SimConfig::paper(Mechanism::RefAb, Density::G32).with_cores(4);
        let more_subarrays = cfg.with_subarrays(64);
        let other_seed = cfg.with_seed(99);
        let mut fps = vec![
            base.fingerprint(),
            grid_job(other_density, 10_000).fingerprint(),
            grid_job(other_mech, 10_000).fingerprint(),
            grid_job(more_subarrays, 10_000).fingerprint(),
            grid_job(other_seed, 10_000).fingerprint(),
            grid_job(cfg, 20_000).fingerprint(),
        ];
        fps.sort();
        fps.dedup();
        assert_eq!(
            fps.len(),
            6,
            "every knob change must change the fingerprint"
        );
    }

    #[test]
    fn workload_name_does_not_affect_fingerprint() {
        let cfg = SimConfig::paper(Mechanism::RefPb, Density::G16).with_cores(4);
        let mut renamed = workload();
        renamed.name = "other-name".into();
        let a = Job::Grid {
            cfg,
            workload: workload(),
            cycles: 5_000,
        };
        let b = Job::Grid {
            cfg,
            workload: renamed,
            cycles: 5_000,
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn trace_fingerprints_key_on_content_not_path() {
        use crate::traces::{TraceRef, TraceWorkload};
        let tref = |path: &str, name: &str, hash: u128| {
            TraceRef::detached(path, name, Fingerprint(hash), 10)
        };
        let cfg = SimConfig::paper(Mechanism::Dsarp, Density::G32).with_cores(2);
        let grid = |a: TraceRef, b: TraceRef| Job::TraceGrid {
            cfg,
            workload: TraceWorkload::new(vec![a, b]),
            cycles: 5_000,
        };
        let base = grid(tref("/x/a.trace", "a", 1), tref("/x/b.trace", "b", 2));
        // Moving/renaming the files changes nothing.
        let moved = grid(tref("/y/a2.trace", "a2", 1), tref("/y/b2.trace", "b2", 2));
        assert_eq!(base.fingerprint(), moved.fingerprint());
        // Editing one trace's content changes the fingerprint.
        let edited = grid(tref("/x/a.trace", "a", 9), tref("/x/b.trace", "b", 2));
        assert_ne!(base.fingerprint(), edited.fingerprint());
        // Core order matters (core 0 and core 1 see different streams).
        let swapped = grid(tref("/x/b.trace", "b", 2), tref("/x/a.trace", "a", 1));
        assert_ne!(base.fingerprint(), swapped.fingerprint());
        // Alone jobs on the same trace are a different kind.
        let alone = Job::TraceAlone {
            cfg: cfg.alone(),
            trace: tref("/x/a.trace", "a", 1),
            cycles: 5_000,
        };
        let alone_moved = Job::TraceAlone {
            cfg: cfg.alone(),
            trace: tref("/z/r.trace", "r", 1),
            cycles: 5_000,
        };
        assert_eq!(alone.fingerprint(), alone_moved.fingerprint());
        assert_ne!(alone.fingerprint(), base.fingerprint());
    }

    #[test]
    fn alone_and_grid_kinds_do_not_collide() {
        let cfg = SimConfig::paper(Mechanism::NoRefresh, Density::G8);
        let alone = Job::Alone {
            cfg: cfg.alone(),
            bench: workload().benchmarks[0],
            cycles: 5_000,
        };
        let grid = grid_job(cfg, 5_000);
        assert_ne!(alone.fingerprint(), grid.fingerprint());
    }
}
