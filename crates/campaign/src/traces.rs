//! Trace-driven campaign workloads: directories of captured trace files
//! (any v1 dialect — plain text, `text-ext`, or binary `.dtrace`),
//! content-hashed into job fingerprints.
//!
//! A [`TraceRef`] names one trace file together with the 128-bit FNV hash
//! of its raw bytes; the hash — never the path — is what
//! [`crate::Job::key_value`] folds into the fingerprint, so renaming or
//! moving a trace keeps every cached cell while editing one byte of it
//! invalidates exactly the cells that replay that trace. A
//! [`TraceWorkload`] bundles `cores` traces into one multi-programmed
//! mix, the trace equivalent of a [`dsarp_workloads::Workload`].
//!
//! Resolution is **single-pass**: [`TraceRef::load`] validates, counts
//! and content-hashes each file in one chunked read
//! ([`dsarp_cpu::read_trace_path`]). Text-dialect traces keep their
//! parsed ops as a shared snapshot, so [`TraceRef::open`] replays them
//! with zero further disk reads; binary traces stream from disk with
//! O(chunk) memory ([`dsarp_cpu::BinTraceSource`]), re-verifying the
//! content hash on every full pass. Either way a warm expansion plus
//! execution costs one read per trace file, never the former
//! read-twice-hash-twice.
//!
//! Enumeration is deterministic and host-independent: directory entries
//! are matched by file *name* against a glob (`*`/`?` wildcards), sorted
//! byte-wise, and chunked into consecutive `cores`-wide bundles (a final
//! short bundle wraps around to the start of the sorted list, so every
//! trace appears in at least one bundle).
//!
//! Every trace is validated at resolution time with the strict scanner:
//! a torn or truncated file — text missing its final newline, or a
//! `.dtrace` whose length disagrees with its header — is a
//! [`TraceSetError`] naming the offending path, not a silently wrong
//! simulation.

use crate::fingerprint::Fingerprint;
use dsarp_cpu::{
    read_trace_path, BinTraceSource, Materialize, SharedCyclicTrace, TraceDialect, TraceFileError,
    TraceOp, TraceSource,
};
use dsarp_workloads::{SyntheticTrace, Workload};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a trace workload set failed to resolve. Every variant names the
/// file (or directory) at fault — `worker`, `merge` and `compact` surface
/// these messages verbatim when a spec references a bad trace.
#[derive(Debug)]
pub enum TraceSetError {
    /// Reading the directory or a trace file failed.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace file failed validation (malformed, empty, or truncated).
    Invalid {
        /// The trace file at fault.
        path: PathBuf,
        /// The underlying parse error.
        source: TraceFileError,
    },
    /// The directory exists but no file name matches the glob.
    NoMatches {
        /// The directory searched.
        dir: PathBuf,
        /// The glob that matched nothing.
        glob: String,
    },
    /// A trace bundle needs at least one core.
    ZeroCores,
}

impl std::fmt::Display for TraceSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSetError::Io { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            TraceSetError::Invalid { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            TraceSetError::NoMatches { dir, glob } => {
                write!(f, "trace dir {}: no file matches `{glob}`", dir.display())
            }
            TraceSetError::ZeroCores => write!(f, "trace workloads need cores >= 1"),
        }
    }
}

impl std::error::Error for TraceSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceSetError::Io { source, .. } => Some(source),
            TraceSetError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TraceSetError> for std::io::Error {
    fn from(e: TraceSetError) -> Self {
        std::io::Error::other(e.to_string())
    }
}

/// One validated trace file: path for replay, content hash for identity.
///
/// Equality ignores the replay snapshot and the read counter — two refs
/// are equal when they name the same file with the same resolved
/// identity (path, name, dialect, hash, entry count).
#[derive(Debug, Clone)]
pub struct TraceRef {
    /// Where the trace lives (as given; workers sharing a store must see
    /// the same paths, exactly like the store directory itself).
    pub path: PathBuf,
    /// File stem — the workload-facing name (labels, grid rows).
    pub name: String,
    /// FNV-1a-128 hash of the file's raw bytes under its dialect's fold
    /// (byte-wise for text dialects, word-wise for `.dtrace`). The only
    /// part of a `TraceRef` that enters job fingerprints.
    pub content_hash: Fingerprint,
    /// Trace entries parsed at validation (stores count separately).
    pub entries: usize,
    /// Which encoding the file uses, detected at [`TraceRef::load`].
    pub dialect: TraceDialect,
    /// Text dialects: the ops parsed at resolution, shared by every
    /// [`TraceRef::open`] so execution replays the resolved bytes with
    /// zero further reads. `None` for binary traces (streamed) and
    /// [`TraceRef::detached`] refs (re-read at open).
    ops: Option<Arc<[TraceOp]>>,
    /// Whole-file disk reads attributed to this ref (shared by clones).
    reads: Arc<AtomicU64>,
}

impl PartialEq for TraceRef {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
            && self.name == other.name
            && self.content_hash == other.content_hash
            && self.entries == other.entries
            && self.dialect == other.dialect
    }
}

impl Eq for TraceRef {}

impl TraceRef {
    /// Reads, strictly validates, counts and content-hashes one trace
    /// file in a single chunked pass, detecting its dialect. Text-dialect
    /// ops are kept as the replay snapshot.
    ///
    /// # Errors
    ///
    /// [`TraceSetError`] naming `path` on I/O failure or an invalid
    /// (malformed / empty / truncated) trace.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, TraceSetError> {
        let path = path.into();
        let summary =
            read_trace_path(&path, Materialize::TextOnly).map_err(|source| match source {
                TraceFileError::Io(source) => TraceSetError::Io {
                    path: path.clone(),
                    source,
                },
                source => TraceSetError::Invalid {
                    path: path.clone(),
                    source,
                },
            })?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        Ok(TraceRef {
            path,
            name,
            content_hash: Fingerprint(summary.hash),
            entries: summary.entries,
            dialect: summary.dialect,
            ops: summary.ops.map(Arc::from),
            reads: Arc::new(AtomicU64::new(1)),
        })
    }

    /// Builds a ref from already-known identity without touching the
    /// filesystem — for tests and for reconstructing refs from stored
    /// metadata. The dialect is assumed plain text and there is no replay
    /// snapshot, so [`TraceRef::open`] re-reads and re-verifies the file.
    pub fn detached(
        path: impl Into<PathBuf>,
        name: impl Into<String>,
        content_hash: Fingerprint,
        entries: usize,
    ) -> Self {
        TraceRef {
            path: path.into(),
            name: name.into(),
            content_hash,
            entries,
            dialect: TraceDialect::Text,
            ops: None,
            reads: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Whole-file disk reads this ref (and its clones) have performed —
    /// the resolution read plus any re-reads at open. Streaming binary
    /// replay counts one read per [`TraceRef::open`].
    pub fn disk_reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Opens the trace for execution as an infinite cyclic source.
    ///
    /// Text dialects replay the snapshot parsed at resolution — zero
    /// disk reads, and by construction exactly the bytes the fingerprint
    /// was derived from. Binary traces stream from disk in O(chunk)
    /// memory; the content hash is re-folded and checked on every full
    /// pass, so a mid-campaign edit panics (naming the file) instead of
    /// replaying different bytes under a stale fingerprint.
    ///
    /// # Panics
    ///
    /// Panics (with a message naming the file) if the file disappeared or
    /// — for refs without a snapshot — no longer matches
    /// [`TraceRef::content_hash`].
    pub fn open(&self) -> Box<dyn TraceSource> {
        if let Some(ops) = &self.ops {
            return Box::new(SharedCyclicTrace::new(Arc::clone(ops)));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        if self.dialect == TraceDialect::Bin {
            let source =
                BinTraceSource::open(&self.path, self.content_hash.0).unwrap_or_else(|e| {
                    panic!(
                        "trace file {} vanished or tore while the campaign was \
                         running: {e}",
                        self.path.display()
                    )
                });
            return Box::new(source);
        }
        // Detached text ref: re-read, verify against the recorded hash,
        // and replay the re-parsed ops (the pre-snapshot contract).
        let summary = read_trace_path(&self.path, Materialize::All).unwrap_or_else(|e| {
            panic!(
                "trace file {} vanished or failed to re-parse while the \
                 campaign was running: {e}",
                self.path.display()
            )
        });
        assert!(
            Fingerprint(summary.hash) == self.content_hash,
            "trace file {} changed while the campaign was running \
             (content hash mismatch); re-run to pick up the new contents",
            self.path.display()
        );
        let ops = summary.ops.expect("Materialize::All keeps ops");
        Box::new(SharedCyclicTrace::new(ops.into()))
    }
}

/// A multi-programmed workload of captured traces: one [`TraceRef`] per
/// core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWorkload {
    /// Bundle name, derived from the member file stems (display only —
    /// excluded from fingerprints, like synthetic workload names).
    pub name: String,
    /// One trace per core, in core order.
    pub traces: Vec<TraceRef>,
}

impl TraceWorkload {
    /// Builds a bundle from per-core traces, deriving its name.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn new(traces: Vec<TraceRef>) -> Self {
        assert!(
            !traces.is_empty(),
            "a trace bundle needs at least one trace"
        );
        let name = if traces.len() == 1 {
            traces[0].name.clone()
        } else {
            traces
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        TraceWorkload { name, traces }
    }

    /// Number of cores this bundle occupies.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Opens the first `cores` member traces as boxed sources for
    /// [`dsarp_sim::SystemBuilder::trace_sources`].
    ///
    /// # Panics
    ///
    /// As [`TraceRef::open`]; also if the bundle has fewer than `cores`
    /// traces.
    pub fn sources(&self, cores: usize) -> Vec<Box<dyn TraceSource>> {
        assert!(
            self.traces.len() >= cores,
            "trace bundle {} has {} traces for {} cores",
            self.name,
            self.traces.len(),
            cores
        );
        self.traces[..cores].iter().map(|t| t.open()).collect()
    }
}

/// Matches `name` against a glob supporting `*` (any run, including
/// empty) and `?` (any single character). Matching is byte-wise over the
/// whole name — there is no directory recursion; globs apply to file
/// names within the trace directory only.
///
/// Iterative two-pointer matcher backtracking to the most recent `*`
/// only: `O(name × glob)` worst case, so adversarial multi-star globs
/// cannot hang enumeration the way naive recursion would.
pub fn glob_match(glob: &str, name: &str) -> bool {
    let (p, n) = (glob.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    // The last `*` seen and the name position its current match ends at.
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Grow the star's span by one byte and retry after it.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Enumerates `dir` for file names matching `glob`, sorted byte-wise by
/// name (deterministic and host-independent), loads and validates each
/// trace, and chunks the sorted list into consecutive `cores`-wide
/// bundles. A final short chunk wraps around to the start of the list,
/// so every trace appears at least once.
///
/// # Errors
///
/// [`TraceSetError`] naming the directory or the first offending file.
pub fn resolve_trace_dir(
    dir: &Path,
    glob: &str,
    cores: usize,
) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    let entries = std::fs::read_dir(dir).map_err(|source| TraceSetError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    // Keep the real DirEntry path alongside the (possibly lossy) name the
    // glob sees: rebuilding a path from a lossy name would break — or
    // alias — file names that are not valid UTF-8.
    let mut matched: Vec<(std::ffi::OsString, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| TraceSetError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        if entry.path().is_file() && glob_match(glob, &name.to_string_lossy()) {
            matched.push((name, entry.path()));
        }
    }
    if matched.is_empty() {
        return Err(TraceSetError::NoMatches {
            dir: dir.to_path_buf(),
            glob: glob.to_string(),
        });
    }
    matched.sort();
    let refs: Vec<TraceRef> = matched
        .into_iter()
        .map(|(_, path)| TraceRef::load(path))
        .collect::<Result<_, _>>()?;
    bundle(refs, cores)
}

/// Loads an explicit trace-file list (order preserved — the caller
/// controls bundling) and chunks it into `cores`-wide bundles with the
/// same wrap-around rule as [`resolve_trace_dir`].
///
/// # Errors
///
/// [`TraceSetError`] naming the first offending file.
pub fn resolve_trace_files(
    files: &[String],
    cores: usize,
) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    let refs: Vec<TraceRef> = files.iter().map(TraceRef::load).collect::<Result<_, _>>()?;
    bundle(refs, cores)
}

/// Chunks validated traces into `cores`-wide bundles (wrap-around tail)
/// and disambiguates colliding derived bundle names — two same-stem files
/// from different directories would otherwise alias in the assembled
/// grid's `(workload, mechanism, density)` index and silently shadow
/// each other's rows.
fn bundle(refs: Vec<TraceRef>, cores: usize) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    if refs.is_empty() {
        return Err(TraceSetError::NoMatches {
            dir: PathBuf::new(),
            glob: String::new(),
        });
    }
    let mut bundles = Vec::with_capacity(refs.len().div_ceil(cores));
    for chunk_start in (0..refs.len()).step_by(cores) {
        let traces: Vec<TraceRef> = (0..cores)
            .map(|i| refs[(chunk_start + i) % refs.len()].clone())
            .collect();
        bundles.push(TraceWorkload::new(traces));
    }
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for b in &mut bundles {
        let n = seen.entry(b.name.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            b.name = format!("{}#{n}", b.name);
        }
    }
    Ok(bundles)
}

/// Captures synthetic workloads as a trace directory: for each workload
/// and core, `ops` entries of the exact generator stream
/// [`dsarp_sim::SystemBuilder`] would feed that core (same per-core
/// address partitioning, same `seed`) are exported in `dialect` as
/// `<dir>/<workload>-c<NN>.<ext>` (`.trace` for text dialects, `.dtrace`
/// for binary). The naming sorts per-workload files consecutively, so a
/// [`resolve_trace_dir`] sweep with the same core count reassembles
/// exactly these bundles.
///
/// The lossless dialects ([`TraceDialect::TextExt`], [`TraceDialect::Bin`])
/// capture every generator feature — store bubbles and load dependence
/// included — so replay is bit-exact for the whole catalogue. Plain
/// [`TraceDialect::Text`] is lossy for those two features (see
/// [`dsarp_cpu::trace_file::export`]): a captured trace replays the
/// generator stream bit-exactly only when the workload produces
/// loads-only streams; otherwise replay is the format's documented
/// approximation.
///
/// Returns the written paths in enumeration order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn capture_workloads(
    dir: &Path,
    workloads: &[Workload],
    seed: u64,
    ops: usize,
    dialect: TraceDialect,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for wl in workloads {
        for (i, bench) in wl.benchmarks.iter().enumerate() {
            let mut source = SyntheticTrace::new(bench, i, wl.cores(), seed);
            let path = dir.join(format!("{}-c{i:02}.{}", wl.name, dialect.extension()));
            let file = std::fs::File::create(&path)?;
            let mut out = std::io::BufWriter::new(file);
            dsarp_cpu::trace_v1::export_dialect(&mut source, ops, &mut out, dialect)?;
            std::io::Write::flush(&mut out)?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dsarp-traces-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("*.trace", "a.trace"));
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("w?-c*.trace", "w0-c07.trace"));
        assert!(!glob_match("*.trace", "a.trace.bak"));
        assert!(!glob_match("?.trace", "ab.trace"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-c"));
        assert!(glob_match("", ""));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*", "a"));
        assert!(!glob_match("a*b", "ab-x"));
        // Adversarial multi-star globs must stay linear-ish, not hang.
        let long = "a".repeat(200) + "b";
        assert!(!glob_match("*a*a*a*a*a*a*a*a*c", &long));
        assert!(glob_match("*a*a*a*a*a*a*a*a*b", &long));
    }

    #[test]
    fn dir_resolution_is_sorted_and_content_hashed() {
        let dir = tmpdir("sorted");
        // Written in non-sorted order; enumeration must sort by name.
        std::fs::write(dir.join("b.trace"), "2 0x80\n").unwrap();
        std::fs::write(dir.join("a.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a trace").unwrap();
        let bundles = resolve_trace_dir(&dir, "*.trace", 1).unwrap();
        let names: Vec<&str> = bundles.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_ne!(
            bundles[0].traces[0].content_hash,
            bundles[1].traces[0].content_hash
        );

        // Renaming a file keeps its content hash (identity is content).
        let old = bundles[0].traces[0].content_hash;
        std::fs::rename(dir.join("a.trace"), dir.join("z.trace")).unwrap();
        let renamed = resolve_trace_dir(&dir, "*.trace", 1).unwrap();
        assert_eq!(renamed[1].name, "z");
        assert_eq!(renamed[1].traces[0].content_hash, old);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn short_final_bundle_wraps_to_the_start() {
        let dir = tmpdir("wrap");
        for n in ["a", "b", "c"] {
            std::fs::write(dir.join(format!("{n}.trace")), "1 0x40\n").unwrap();
        }
        let bundles = resolve_trace_dir(&dir, "*.trace", 2).unwrap();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].name, "a+b");
        assert_eq!(bundles[1].name, "c+a", "short tail wraps around");
        assert_eq!(bundles[1].cores(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn colliding_bundle_names_are_disambiguated() {
        let dir = tmpdir("collide");
        std::fs::create_dir_all(dir.join("run1")).unwrap();
        std::fs::create_dir_all(dir.join("run2")).unwrap();
        std::fs::write(dir.join("run1/app.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("run2/app.trace"), "2 0x80\n").unwrap();
        let files = vec![
            dir.join("run1/app.trace").to_string_lossy().into_owned(),
            dir.join("run2/app.trace").to_string_lossy().into_owned(),
        ];
        let bundles = resolve_trace_files(&files, 1).unwrap();
        let names: Vec<&str> = bundles.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["app", "app#2"], "grid rows must not alias");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn errors_name_the_offending_file() {
        let dir = tmpdir("errors");
        std::fs::write(dir.join("ok.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("torn.trace"), "1 0x40\n2 0x8").unwrap();
        let err = resolve_trace_dir(&dir, "*.trace", 1).unwrap_err();
        assert!(
            err.to_string().contains("torn.trace") && err.to_string().contains("truncated"),
            "{err}"
        );
        let err = TraceRef::load(dir.join("missing.trace")).unwrap_err();
        assert!(err.to_string().contains("missing.trace"), "{err}");
        let err = resolve_trace_dir(&dir, "*.xyz", 1).unwrap_err();
        assert!(err.to_string().contains("*.xyz"), "{err}");
        assert!(matches!(
            resolve_trace_files(&["x".into()], 0).unwrap_err(),
            TraceSetError::ZeroCores
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn text_replay_is_a_snapshot_of_the_resolved_bytes() {
        let dir = tmpdir("edit");
        let path = dir.join("t.trace");
        std::fs::write(&path, "1 0x40\n").unwrap();
        let r = TraceRef::load(&path).unwrap();
        assert_eq!((r.entries, r.dialect), (1, TraceDialect::Text));
        let mut t = r.open();
        assert_eq!(t.next_op().addr, 0x40);
        // Editing the file after resolution cannot desynchronize replay
        // from the fingerprint: open() replays the resolved snapshot, and
        // the next expansion re-hashes the new bytes into a new cell.
        std::fs::write(&path, "1 0x80\n").unwrap();
        assert_eq!(r.open().next_op().addr, 0x40, "snapshot, not the edit");
        assert_ne!(TraceRef::load(&path).unwrap().content_hash, r.content_hash);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn detached_refs_keep_the_verify_at_open_contract() {
        let dir = tmpdir("detached");
        let path = dir.join("t.trace");
        std::fs::write(&path, "1 0x40\n").unwrap();
        let loaded = TraceRef::load(&path).unwrap();
        let r = TraceRef::detached(&path, "t", loaded.content_hash, 1);
        assert_eq!(r, loaded, "identity fields match, snapshot is ignored");
        assert_eq!(r.open().next_op().addr, 0x40);
        std::fs::write(&path, "1 0x80\n").unwrap();
        let caught = std::panic::catch_unwind(|| r.open());
        assert!(caught.is_err(), "changed content must not silently replay");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn one_read_resolves_and_replays_a_text_trace() {
        let dir = tmpdir("reads");
        let path = dir.join("t.trace");
        std::fs::write(&path, "1 0x40\n2 0x80\n").unwrap();
        let r = TraceRef::load(&path).unwrap();
        assert_eq!(r.disk_reads(), 1, "resolution is one chunked read");
        // Replay — including a clone inside a workload and a full cycle
        // through the ops — costs zero further reads.
        let wl = TraceWorkload::new(vec![r.clone()]);
        let mut sources = wl.sources(1);
        for _ in 0..5 {
            sources[0].next_op();
        }
        drop(sources);
        assert_eq!(r.disk_reads(), 1, "open + execute adds no reads");

        // Binary traces stream instead of snapshotting: one more read
        // per open, never a whole-file buffer.
        let (_, bin) =
            dsarp_cpu::trace_v1::convert_bytes(&std::fs::read(&path).unwrap(), TraceDialect::Bin)
                .unwrap();
        let bpath = dir.join("t.dtrace");
        std::fs::write(&bpath, &bin).unwrap();
        let b = TraceRef::load(&bpath).unwrap();
        assert_eq!(
            (b.dialect, b.entries, b.disk_reads()),
            (TraceDialect::Bin, 2, 1)
        );
        let mut s = b.open();
        assert_eq!(s.next_op().addr, 0x40);
        assert_eq!(b.disk_reads(), 2, "streaming replay is the second read");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn capture_round_trips_through_dir_resolution() {
        let dir = tmpdir("capture");
        let wls = dsarp_workloads::mixes::intensive_mixes(2, 1)[..2].to_vec();
        let written = capture_workloads(&dir, &wls, 7, 500, TraceDialect::Text).unwrap();
        assert_eq!(written.len(), 4);
        let bundles = resolve_trace_dir(&dir, "*.trace", 2).unwrap();
        assert_eq!(bundles.len(), 2);
        for (b, wl) in bundles.iter().zip(&wls) {
            assert_eq!(b.name, format!("{0}-c00+{0}-c01", wl.name));
            for t in &b.traces {
                assert!(t.entries >= 500, "stores add entries, never remove");
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn lossless_captures_replay_the_exact_generator_stream() {
        let dir = tmpdir("lossless");
        let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..1].to_vec();
        let ops = 300;
        let mut truth = SyntheticTrace::new(wls[0].benchmarks[0], 0, 1, 7);
        let want: Vec<_> = (0..ops).map(|_| truth.next_op()).collect();
        for (dialect, glob) in [
            (TraceDialect::TextExt, "*.trace"),
            (TraceDialect::Bin, "*.dtrace"),
        ] {
            let sub = dir.join(dialect.label());
            capture_workloads(&sub, &wls, 7, ops, dialect).unwrap();
            let bundles = resolve_trace_dir(&sub, glob, 1).unwrap();
            assert_eq!(
                bundles[0].traces[0].entries, ops,
                "{dialect}: one entry per op"
            );
            let mut src = bundles[0].traces[0].open();
            let got: Vec<_> = (0..ops).map(|_| src.next_op()).collect();
            assert_eq!(got, want, "{dialect} must replay bit-exactly");
        }
        // Plain text of the same stream is the documented approximation:
        // entries can differ (attachment convention) and flags are lost.
        let sub = dir.join("text");
        capture_workloads(&sub, &wls, 7, ops, TraceDialect::Text).unwrap();
        let plain = resolve_trace_dir(&sub, "*.trace", 1).unwrap();
        assert!(plain[0].traces[0].entries >= ops);
        let _ = std::fs::remove_dir_all(dir);
    }
}
