//! Trace-driven campaign workloads: directories of captured
//! Ramulator-format trace files, content-hashed into job fingerprints.
//!
//! A [`TraceRef`] names one trace file together with the 128-bit FNV hash
//! of its raw bytes; the hash — never the path — is what
//! [`crate::Job::key_value`] folds into the fingerprint, so renaming or
//! moving a trace keeps every cached cell while editing one byte of it
//! invalidates exactly the cells that replay that trace. A
//! [`TraceWorkload`] bundles `cores` traces into one multi-programmed
//! mix, the trace equivalent of a [`dsarp_workloads::Workload`].
//!
//! Enumeration is deterministic and host-independent: directory entries
//! are matched by file *name* against a glob (`*`/`?` wildcards), sorted
//! byte-wise, and chunked into consecutive `cores`-wide bundles (a final
//! short bundle wraps around to the start of the sorted list, so every
//! trace appears in at least one bundle).
//!
//! Every trace is validated at resolution time with the strict parser
//! ([`FileTrace::parse_bytes_strict`]): a torn or truncated file is a
//! [`TraceSetError`] naming the offending path, not a silently wrong
//! simulation.

use crate::fingerprint::{fingerprint_bytes, Fingerprint};
use dsarp_cpu::{FileTrace, TraceFileError, TraceSource};
use dsarp_workloads::{SyntheticTrace, Workload};
use std::path::{Path, PathBuf};

/// Why a trace workload set failed to resolve. Every variant names the
/// file (or directory) at fault — `worker`, `merge` and `compact` surface
/// these messages verbatim when a spec references a bad trace.
#[derive(Debug)]
pub enum TraceSetError {
    /// Reading the directory or a trace file failed.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace file failed validation (malformed, empty, or truncated).
    Invalid {
        /// The trace file at fault.
        path: PathBuf,
        /// The underlying parse error.
        source: TraceFileError,
    },
    /// The directory exists but no file name matches the glob.
    NoMatches {
        /// The directory searched.
        dir: PathBuf,
        /// The glob that matched nothing.
        glob: String,
    },
    /// A trace bundle needs at least one core.
    ZeroCores,
}

impl std::fmt::Display for TraceSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSetError::Io { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            TraceSetError::Invalid { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            TraceSetError::NoMatches { dir, glob } => {
                write!(f, "trace dir {}: no file matches `{glob}`", dir.display())
            }
            TraceSetError::ZeroCores => write!(f, "trace workloads need cores >= 1"),
        }
    }
}

impl std::error::Error for TraceSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceSetError::Io { source, .. } => Some(source),
            TraceSetError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TraceSetError> for std::io::Error {
    fn from(e: TraceSetError) -> Self {
        std::io::Error::other(e.to_string())
    }
}

/// One validated trace file: path for replay, content hash for identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRef {
    /// Where the trace lives (as given; workers sharing a store must see
    /// the same paths, exactly like the store directory itself).
    pub path: PathBuf,
    /// File stem — the workload-facing name (labels, grid rows).
    pub name: String,
    /// FNV-1a-128 hash of the file's raw bytes. The only part of a
    /// `TraceRef` that enters job fingerprints.
    pub content_hash: Fingerprint,
    /// Trace entries parsed at validation (stores count separately).
    pub entries: usize,
}

impl TraceRef {
    /// Reads, strictly validates and hashes one trace file.
    ///
    /// # Errors
    ///
    /// [`TraceSetError`] naming `path` on I/O failure or an invalid
    /// (malformed / empty / truncated) trace.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, TraceSetError> {
        let path = path.into();
        let bytes = std::fs::read(&path).map_err(|source| TraceSetError::Io {
            path: path.clone(),
            source,
        })?;
        let trace =
            FileTrace::parse_bytes_strict(&bytes).map_err(|source| TraceSetError::Invalid {
                path: path.clone(),
                source,
            })?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        Ok(TraceRef {
            path,
            name,
            content_hash: fingerprint_bytes(&bytes),
            entries: trace.len(),
        })
    }

    /// Re-reads the trace for execution, verifying the bytes still match
    /// [`TraceRef::content_hash`].
    ///
    /// # Panics
    ///
    /// Panics (with a message naming the file) if the file disappeared,
    /// fails to parse, or its content changed since resolution — the job
    /// fingerprint was derived from the resolved bytes, so replaying
    /// different ones would cache a wrong result under the wrong key.
    pub fn open(&self) -> FileTrace {
        let bytes = std::fs::read(&self.path).unwrap_or_else(|e| {
            panic!(
                "trace file {} vanished while the campaign was running: {e}",
                self.path.display()
            )
        });
        assert!(
            fingerprint_bytes(&bytes) == self.content_hash,
            "trace file {} changed while the campaign was running \
             (content hash mismatch); re-run to pick up the new contents",
            self.path.display()
        );
        FileTrace::parse_bytes_strict(&bytes).unwrap_or_else(|e| {
            panic!(
                "trace file {} failed to re-parse during execution: {e}",
                self.path.display()
            )
        })
    }
}

/// A multi-programmed workload of captured traces: one [`TraceRef`] per
/// core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWorkload {
    /// Bundle name, derived from the member file stems (display only —
    /// excluded from fingerprints, like synthetic workload names).
    pub name: String,
    /// One trace per core, in core order.
    pub traces: Vec<TraceRef>,
}

impl TraceWorkload {
    /// Builds a bundle from per-core traces, deriving its name.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn new(traces: Vec<TraceRef>) -> Self {
        assert!(
            !traces.is_empty(),
            "a trace bundle needs at least one trace"
        );
        let name = if traces.len() == 1 {
            traces[0].name.clone()
        } else {
            traces
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        TraceWorkload { name, traces }
    }

    /// Number of cores this bundle occupies.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Opens the first `cores` member traces as boxed sources for
    /// [`dsarp_sim::System::with_trace_sources`].
    ///
    /// # Panics
    ///
    /// As [`TraceRef::open`]; also if the bundle has fewer than `cores`
    /// traces.
    pub fn sources(&self, cores: usize) -> Vec<Box<dyn TraceSource>> {
        assert!(
            self.traces.len() >= cores,
            "trace bundle {} has {} traces for {} cores",
            self.name,
            self.traces.len(),
            cores
        );
        self.traces[..cores]
            .iter()
            .map(|t| Box::new(t.open()) as Box<dyn TraceSource>)
            .collect()
    }
}

/// Matches `name` against a glob supporting `*` (any run, including
/// empty) and `?` (any single character). Matching is byte-wise over the
/// whole name — there is no directory recursion; globs apply to file
/// names within the trace directory only.
///
/// Iterative two-pointer matcher backtracking to the most recent `*`
/// only: `O(name × glob)` worst case, so adversarial multi-star globs
/// cannot hang enumeration the way naive recursion would.
pub fn glob_match(glob: &str, name: &str) -> bool {
    let (p, n) = (glob.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    // The last `*` seen and the name position its current match ends at.
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Grow the star's span by one byte and retry after it.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Enumerates `dir` for file names matching `glob`, sorted byte-wise by
/// name (deterministic and host-independent), loads and validates each
/// trace, and chunks the sorted list into consecutive `cores`-wide
/// bundles. A final short chunk wraps around to the start of the list,
/// so every trace appears at least once.
///
/// # Errors
///
/// [`TraceSetError`] naming the directory or the first offending file.
pub fn resolve_trace_dir(
    dir: &Path,
    glob: &str,
    cores: usize,
) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    let entries = std::fs::read_dir(dir).map_err(|source| TraceSetError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    // Keep the real DirEntry path alongside the (possibly lossy) name the
    // glob sees: rebuilding a path from a lossy name would break — or
    // alias — file names that are not valid UTF-8.
    let mut matched: Vec<(std::ffi::OsString, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| TraceSetError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        if entry.path().is_file() && glob_match(glob, &name.to_string_lossy()) {
            matched.push((name, entry.path()));
        }
    }
    if matched.is_empty() {
        return Err(TraceSetError::NoMatches {
            dir: dir.to_path_buf(),
            glob: glob.to_string(),
        });
    }
    matched.sort();
    let refs: Vec<TraceRef> = matched
        .into_iter()
        .map(|(_, path)| TraceRef::load(path))
        .collect::<Result<_, _>>()?;
    bundle(refs, cores)
}

/// Loads an explicit trace-file list (order preserved — the caller
/// controls bundling) and chunks it into `cores`-wide bundles with the
/// same wrap-around rule as [`resolve_trace_dir`].
///
/// # Errors
///
/// [`TraceSetError`] naming the first offending file.
pub fn resolve_trace_files(
    files: &[String],
    cores: usize,
) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    let refs: Vec<TraceRef> = files.iter().map(TraceRef::load).collect::<Result<_, _>>()?;
    bundle(refs, cores)
}

/// Chunks validated traces into `cores`-wide bundles (wrap-around tail)
/// and disambiguates colliding derived bundle names — two same-stem files
/// from different directories would otherwise alias in the assembled
/// grid's `(workload, mechanism, density)` index and silently shadow
/// each other's rows.
fn bundle(refs: Vec<TraceRef>, cores: usize) -> Result<Vec<TraceWorkload>, TraceSetError> {
    if cores == 0 {
        return Err(TraceSetError::ZeroCores);
    }
    if refs.is_empty() {
        return Err(TraceSetError::NoMatches {
            dir: PathBuf::new(),
            glob: String::new(),
        });
    }
    let mut bundles = Vec::with_capacity(refs.len().div_ceil(cores));
    for chunk_start in (0..refs.len()).step_by(cores) {
        let traces: Vec<TraceRef> = (0..cores)
            .map(|i| refs[(chunk_start + i) % refs.len()].clone())
            .collect();
        bundles.push(TraceWorkload::new(traces));
    }
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for b in &mut bundles {
        let n = seen.entry(b.name.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            b.name = format!("{}#{n}", b.name);
        }
    }
    Ok(bundles)
}

/// Captures synthetic workloads as a trace directory: for each workload
/// and core, `ops` entries of the exact generator stream
/// [`dsarp_sim::System::new`] would feed that core (same per-core address
/// partitioning, same `seed`) are exported in the Ramulator text format
/// as `<dir>/<workload>-c<NN>.trace`. The naming sorts per-workload
/// files consecutively, so a [`resolve_trace_dir`] sweep with the same
/// core count reassembles exactly these bundles.
///
/// The text format is lossy for two generator features — store bubbles
/// and load dependence (see [`dsarp_cpu::trace_file::export`]) — so a
/// captured trace replays the generator stream bit-exactly only when the
/// workload produces loads-only streams; otherwise replay is the
/// format's documented approximation.
///
/// Returns the written paths in enumeration order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn capture_workloads(
    dir: &Path,
    workloads: &[Workload],
    seed: u64,
    ops: usize,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for wl in workloads {
        for (i, bench) in wl.benchmarks.iter().enumerate() {
            let mut source = SyntheticTrace::new(bench, i, wl.cores(), seed);
            let path = dir.join(format!("{}-c{i:02}.trace", wl.name));
            let file = std::fs::File::create(&path)?;
            let mut out = std::io::BufWriter::new(file);
            dsarp_cpu::trace_file::export(&mut source, ops, &mut out)?;
            std::io::Write::flush(&mut out)?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dsarp-traces-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("*.trace", "a.trace"));
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("w?-c*.trace", "w0-c07.trace"));
        assert!(!glob_match("*.trace", "a.trace.bak"));
        assert!(!glob_match("?.trace", "ab.trace"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-c"));
        assert!(glob_match("", ""));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*", "a"));
        assert!(!glob_match("a*b", "ab-x"));
        // Adversarial multi-star globs must stay linear-ish, not hang.
        let long = "a".repeat(200) + "b";
        assert!(!glob_match("*a*a*a*a*a*a*a*a*c", &long));
        assert!(glob_match("*a*a*a*a*a*a*a*a*b", &long));
    }

    #[test]
    fn dir_resolution_is_sorted_and_content_hashed() {
        let dir = tmpdir("sorted");
        // Written in non-sorted order; enumeration must sort by name.
        std::fs::write(dir.join("b.trace"), "2 0x80\n").unwrap();
        std::fs::write(dir.join("a.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a trace").unwrap();
        let bundles = resolve_trace_dir(&dir, "*.trace", 1).unwrap();
        let names: Vec<&str> = bundles.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_ne!(
            bundles[0].traces[0].content_hash,
            bundles[1].traces[0].content_hash
        );

        // Renaming a file keeps its content hash (identity is content).
        let old = bundles[0].traces[0].content_hash;
        std::fs::rename(dir.join("a.trace"), dir.join("z.trace")).unwrap();
        let renamed = resolve_trace_dir(&dir, "*.trace", 1).unwrap();
        assert_eq!(renamed[1].name, "z");
        assert_eq!(renamed[1].traces[0].content_hash, old);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn short_final_bundle_wraps_to_the_start() {
        let dir = tmpdir("wrap");
        for n in ["a", "b", "c"] {
            std::fs::write(dir.join(format!("{n}.trace")), "1 0x40\n").unwrap();
        }
        let bundles = resolve_trace_dir(&dir, "*.trace", 2).unwrap();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].name, "a+b");
        assert_eq!(bundles[1].name, "c+a", "short tail wraps around");
        assert_eq!(bundles[1].cores(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn colliding_bundle_names_are_disambiguated() {
        let dir = tmpdir("collide");
        std::fs::create_dir_all(dir.join("run1")).unwrap();
        std::fs::create_dir_all(dir.join("run2")).unwrap();
        std::fs::write(dir.join("run1/app.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("run2/app.trace"), "2 0x80\n").unwrap();
        let files = vec![
            dir.join("run1/app.trace").to_string_lossy().into_owned(),
            dir.join("run2/app.trace").to_string_lossy().into_owned(),
        ];
        let bundles = resolve_trace_files(&files, 1).unwrap();
        let names: Vec<&str> = bundles.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, ["app", "app#2"], "grid rows must not alias");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn errors_name_the_offending_file() {
        let dir = tmpdir("errors");
        std::fs::write(dir.join("ok.trace"), "1 0x40\n").unwrap();
        std::fs::write(dir.join("torn.trace"), "1 0x40\n2 0x8").unwrap();
        let err = resolve_trace_dir(&dir, "*.trace", 1).unwrap_err();
        assert!(
            err.to_string().contains("torn.trace") && err.to_string().contains("truncated"),
            "{err}"
        );
        let err = TraceRef::load(dir.join("missing.trace")).unwrap_err();
        assert!(err.to_string().contains("missing.trace"), "{err}");
        let err = resolve_trace_dir(&dir, "*.xyz", 1).unwrap_err();
        assert!(err.to_string().contains("*.xyz"), "{err}");
        assert!(matches!(
            resolve_trace_files(&["x".into()], 0).unwrap_err(),
            TraceSetError::ZeroCores
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn open_rejects_mid_campaign_edits() {
        let dir = tmpdir("edit");
        let path = dir.join("t.trace");
        std::fs::write(&path, "1 0x40\n").unwrap();
        let r = TraceRef::load(&path).unwrap();
        assert_eq!(r.entries, 1);
        let mut t = r.open();
        assert_eq!(t.next_op().addr, 0x40);
        std::fs::write(&path, "1 0x80\n").unwrap();
        let caught = std::panic::catch_unwind(|| r.open());
        assert!(caught.is_err(), "changed content must not silently replay");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn capture_round_trips_through_dir_resolution() {
        let dir = tmpdir("capture");
        let wls = dsarp_workloads::mixes::intensive_mixes(2, 1)[..2].to_vec();
        let written = capture_workloads(&dir, &wls, 7, 500).unwrap();
        assert_eq!(written.len(), 4);
        let bundles = resolve_trace_dir(&dir, "*.trace", 2).unwrap();
        assert_eq!(bundles.len(), 2);
        for (b, wl) in bundles.iter().zip(&wls) {
            assert_eq!(b.name, format!("{0}-c00+{0}-c01", wl.name));
            for t in &b.traces {
                assert!(t.entries >= 500, "stores add entries, never remove");
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
