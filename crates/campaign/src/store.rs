//! The on-disk result store: content-addressed JSON-lines shards.
//!
//! Layout under the store root (default `.campaign/`):
//!
//! ```text
//! .campaign/<campaign-name>/
//! ├── manifest.json          # spec echo + format version (debugging aid)
//! └── shards/
//!     ├── shard-00.jsonl     # one record per line: {"fp","kind","label",...}
//!     ├── shard-01.jsonl
//!     └── ...
//! ```
//!
//! Records are routed to `shard-(fp % SHARDS)` and appended with an
//! immediate flush, so a killed run loses at most the record being
//! written. On open, every parseable line is loaded; a torn final line
//! (from a crash mid-append) is skipped with a warning and its job simply
//! re-runs. Duplicate fingerprints keep the first record, so re-appends
//! after a partial flush are harmless.

use crate::fingerprint::Fingerprint;
use crate::job::RunSummary;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Number of shard files a store splits its records across.
pub const SHARDS: usize = 8;

/// Store format version, bumped on incompatible record changes.
pub const FORMAT_VERSION: u32 = 1;

/// One cached result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Job fingerprint (32 hex digits).
    pub fp: String,
    /// `"alone"` or `"grid"`.
    pub kind: String,
    /// Human-readable job label (not part of the key).
    pub label: String,
    /// Alone-IPC payload.
    pub alone_ipc: Option<f64>,
    /// Grid payload.
    pub summary: Option<RunSummary>,
}

impl Record {
    /// Builds an alone-IPC record.
    pub fn alone(fp: Fingerprint, label: String, ipc: f64) -> Self {
        Record {
            fp: fp.to_string(),
            kind: "alone".into(),
            label,
            alone_ipc: Some(ipc),
            summary: None,
        }
    }

    /// Builds a grid-cell record.
    pub fn grid(fp: Fingerprint, label: String, summary: RunSummary) -> Self {
        Record {
            fp: fp.to_string(),
            kind: "grid".into(),
            label,
            alone_ipc: None,
            summary: Some(summary),
        }
    }
}

/// An open campaign store.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    records: HashMap<u128, Record>,
    /// Per-shard append handles, lazily opened; mutexed so executor worker
    /// threads can flush completed jobs concurrently.
    writers: Vec<Mutex<Option<File>>>,
    loaded: usize,
    skipped_lines: usize,
}

impl Store {
    /// Opens (creating if needed) the store for `campaign_name` under
    /// `root`, loading every existing record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. Unparseable shard *lines* are skipped,
    /// not errors: they re-run.
    pub fn open(root: &Path, campaign_name: &str, manifest: &Value) -> std::io::Result<Self> {
        let dir = root.join(campaign_name);
        std::fs::create_dir_all(dir.join("shards"))?;
        let mut store = Store {
            dir,
            records: HashMap::new(),
            writers: (0..SHARDS).map(|_| Mutex::new(None)).collect(),
            loaded: 0,
            skipped_lines: 0,
        };
        for shard in 0..SHARDS {
            let path = store.shard_path(shard);
            if !path.exists() {
                continue;
            }
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match Self::parse_line(&line) {
                    Some((fp, record)) => {
                        store.records.entry(fp.0).or_insert(record);
                        store.loaded += 1;
                    }
                    None => {
                        // Torn append from a killed run: drop it, the job
                        // will simply be simulated again.
                        store.skipped_lines += 1;
                        eprintln!(
                            "campaign store: skipping unparseable line in {}",
                            path.display()
                        );
                    }
                }
            }
        }
        let mut manifest_doc = serde_json::Map::new();
        manifest_doc.insert(
            "format_version".into(),
            serde_json::to_value(FORMAT_VERSION).expect("infallible"),
        );
        manifest_doc.insert("campaign".into(), Value::String(campaign_name.into()));
        manifest_doc.insert("spec".into(), manifest.clone());
        // Written via a pid-unique temp file + rename: concurrent worker
        // processes open the same store, and interleaved direct writes
        // could tear the manifest.
        let tmp = store
            .dir
            .join(format!("manifest.json.tmp-{}", std::process::id()));
        std::fs::write(&tmp, format!("{}\n", Value::Object(manifest_doc)))?;
        std::fs::rename(&tmp, store.dir.join("manifest.json"))?;
        Ok(store)
    }

    /// Attaches to (creating if needed) the store directory for
    /// `campaign_name` under `root` WITHOUT loading records or rewriting
    /// the manifest — the append-only path for workers that learn shard
    /// contents through [`Store::shard_fingerprints`] instead of a full
    /// load.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn attach(root: &Path, campaign_name: &str) -> std::io::Result<Self> {
        let dir = root.join(campaign_name);
        std::fs::create_dir_all(dir.join("shards"))?;
        Ok(Store {
            dir,
            records: HashMap::new(),
            writers: (0..SHARDS).map(|_| Mutex::new(None)).collect(),
            loaded: 0,
            skipped_lines: 0,
        })
    }

    /// Decodes one shard line into `(fingerprint, record)`; `None` for a
    /// torn or otherwise unparseable line. The single decoder behind
    /// [`Store::open`], [`Store::shard_fingerprints`], [`Store::compact`]
    /// and the campaign server's append endpoint, so the readers cannot
    /// drift apart.
    pub fn decode_line(line: &str) -> Option<(Fingerprint, Record)> {
        serde_json::from_str::<Record>(line)
            .ok()
            .and_then(|r| Fingerprint::parse(&r.fp).map(|fp| (fp, r)))
    }

    /// Encodes one record as its shard line (no trailing newline) — the
    /// exact bytes [`Store::append`] writes.
    pub fn encode_line(record: &Record) -> String {
        serde_json::to_string(record).expect("records serialize")
    }

    fn parse_line(line: &str) -> Option<(Fingerprint, Record)> {
        Self::decode_line(line)
    }

    /// The shard file path for `shard` of the campaign at `campaign_dir`.
    pub fn shard_file(campaign_dir: &Path, shard: usize) -> PathBuf {
        campaign_dir
            .join("shards")
            .join(format!("shard-{shard:02}.jsonl"))
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        Self::shard_file(&self.dir, shard)
    }

    /// Which shard `fp` routes to.
    pub fn shard_of(fp: Fingerprint) -> usize {
        (fp.0 % SHARDS as u128) as usize
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records loaded from disk at open.
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// Number of unparseable (torn) lines skipped at open.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Looks up a cached record.
    pub fn get(&self, fp: Fingerprint) -> Option<&Record> {
        self.records.get(&fp.0)
    }

    /// Whether `fp` is cached.
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.records.contains_key(&fp.0)
    }

    /// Appends `record` to its shard and flushes immediately. Safe to call
    /// from executor worker threads (`&self`); the in-memory map is updated
    /// separately by [`Store::absorb`] on the coordinating thread.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, fp: Fingerprint, record: &Record) -> std::io::Result<()> {
        let shard = Self::shard_of(fp);
        let mut guard = self.writers[shard].lock().expect("shard writer lock");
        if guard.is_none() {
            let path = self.shard_path(shard);
            // A writer killed mid-append can leave a partial line with no
            // trailing newline; appending straight after it would splice
            // the next record into the torn bytes and lose BOTH. Heal the
            // tail once, when this process first opens the shard.
            let torn_tail = match std::fs::File::open(&path) {
                Ok(mut f) => {
                    use std::io::{Read, Seek, SeekFrom};
                    if f.seek(SeekFrom::End(0))? == 0 {
                        false
                    } else {
                        f.seek(SeekFrom::End(-1))?;
                        let mut last = [0u8; 1];
                        f.read_exact(&mut last)?;
                        last[0] != b'\n'
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                Err(e) => return Err(e),
            };
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            if torn_tail {
                file.write_all(b"\n")?;
            }
            *guard = Some(file);
        }
        let file = guard.as_mut().expect("just opened");
        let line = format!("{}\n", Self::encode_line(record));
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Inserts a freshly computed record into the in-memory map (first
    /// record per fingerprint wins, matching load semantics).
    pub fn absorb(&mut self, fp: Fingerprint, record: Record) {
        self.records.entry(fp.0).or_insert(record);
    }

    /// Total records known (disk + absorbed).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates the fingerprints of every known record.
    pub fn fingerprints(&self) -> impl Iterator<Item = Fingerprint> + '_ {
        self.records.keys().map(|&fp| Fingerprint(fp))
    }

    /// Every known record, keyed by fingerprint (disk + absorbed).
    pub fn records(&self) -> &HashMap<u128, Record> {
        &self.records
    }

    /// Reads every record currently on disk for the campaign at
    /// `campaign_dir`, first record per fingerprint winning — the
    /// snapshot [`crate::backend::StoreBackend`]s assemble grids from.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; unparseable lines are skipped.
    pub fn read_all(campaign_dir: &Path) -> std::io::Result<HashMap<u128, Record>> {
        let mut records = HashMap::new();
        for shard in 0..SHARDS {
            let path = Self::shard_file(campaign_dir, shard);
            let file = match File::open(&path) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            for line in BufReader::new(file).lines() {
                if let Some((fp, record)) = Self::parse_line(&line?) {
                    records.entry(fp.0).or_insert(record);
                }
            }
        }
        Ok(records)
    }

    /// The current byte size of one shard file (0 if never written).
    /// Shards are append-only, so an unchanged size means unchanged
    /// contents — workers use this to skip re-parsing shards between
    /// rescan rounds.
    pub fn shard_size(&self, shard: usize) -> u64 {
        std::fs::metadata(self.shard_path(shard))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Re-reads one shard file from disk, returning the fingerprints
    /// present right now. Distributed workers call this after acquiring a
    /// shard lease: their in-memory view may predate records another
    /// worker appended, and only still-missing cells should re-run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; unparseable lines are ignored.
    pub fn shard_fingerprints(&self, shard: usize) -> std::io::Result<HashSet<u128>> {
        Self::read_shard_fingerprints(&self.dir, shard)
    }

    /// [`Store::shard_fingerprints`] without an open store — the
    /// [`crate::backend::LocalBackend`]'s rescan path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; unparseable lines are ignored.
    pub fn read_shard_fingerprints(
        campaign_dir: &Path,
        shard: usize,
    ) -> std::io::Result<HashSet<u128>> {
        let mut out = HashSet::new();
        let path = Self::shard_file(campaign_dir, shard);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for line in BufReader::new(file).lines() {
            if let Some((fp, _)) = Self::parse_line(&line?) {
                out.insert(fp.0);
            }
        }
        Ok(out)
    }

    /// Reads the shard's bytes from `offset` to the end of the **last
    /// complete line** — the read-side twin of [`Store::append`]'s torn-
    /// tail healing. A writer killed mid-append (or caught mid-write by
    /// this read) leaves a partial line with no trailing newline; a
    /// reader consuming raw tails would observe the torn JSON. Clamping
    /// at the final newline guarantees every returned chunk is whole
    /// lines, and the skipped bytes are re-served once the line completes
    /// (appends are flushed newline-terminated) or is healed.
    ///
    /// `reset` is true when `offset` lies beyond the current file end
    /// (the shard was compacted since the reader's last poll): the tail
    /// is then served from offset 0 and the reader should replace, not
    /// extend, its view.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a missing shard file is an empty
    /// tail at offset 0.
    pub fn read_tail(campaign_dir: &Path, shard: usize, offset: u64) -> std::io::Result<ShardTail> {
        use std::io::{Read, Seek, SeekFrom};
        let path = Self::shard_file(campaign_dir, shard);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ShardTail {
                    bytes: Vec::new(),
                    next_offset: 0,
                    reset: offset > 0,
                })
            }
            Err(e) => return Err(e),
        };
        let len = file.seek(SeekFrom::End(0))?;
        let (start, reset) = if offset > len {
            (0, true)
        } else {
            (offset, false)
        };
        file.seek(SeekFrom::Start(start))?;
        let mut bytes = Vec::with_capacity(usize::try_from(len - start).unwrap_or(0));
        file.read_to_end(&mut bytes)?;
        // Clamp to the last complete line; a torn tail is withheld until
        // its newline lands (or healing terminates it).
        let complete = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |pos| pos + 1);
        bytes.truncate(complete);
        Ok(ShardTail {
            next_offset: start + complete as u64,
            bytes,
            reset,
        })
    }

    /// Rewrites every shard of the campaign at `root`/`campaign_name`,
    /// keeping only the first record of each fingerprint in `keep` and
    /// dropping orphans (fingerprints no longer reachable from any known
    /// spec), duplicate appends, and torn lines. Each shard is rewritten
    /// through a temp file + rename, so a crash mid-compaction leaves
    /// either the old or the new shard, never a mix; a shard left with no
    /// records is deleted.
    ///
    /// Callers must hold every shard lease for the duration (appends only
    /// happen under a lease): compaction rewrites files workers append to,
    /// and a record appended between the read and the rename would be
    /// silently dropped. The `experiments compact` subcommand does this.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn compact(
        root: &Path,
        campaign_name: &str,
        keep: &std::collections::HashSet<u128>,
    ) -> std::io::Result<CompactionStats> {
        let shards_dir = root.join(campaign_name).join("shards");
        let mut stats = CompactionStats::default();
        for shard in 0..SHARDS {
            let path = shards_dir.join(format!("shard-{shard:02}.jsonl"));
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                // Permission or corruption errors must fail the pass, not
                // silently leave one shard uncompacted under a success
                // report.
                Err(e) => return Err(e),
            };
            stats.bytes_before += text.len() as u64;
            let mut kept_fps = std::collections::HashSet::new();
            let mut out = String::new();
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match Self::parse_line(line).map(|(fp, _)| fp.0) {
                    Some(fp) if !keep.contains(&fp) => stats.dropped_orphans += 1,
                    Some(fp) if !kept_fps.insert(fp) => stats.dropped_duplicates += 1,
                    Some(_) => {
                        out.push_str(line);
                        out.push('\n');
                        stats.kept += 1;
                    }
                    None => stats.dropped_torn += 1,
                }
            }
            if out.is_empty() {
                std::fs::remove_file(&path)?;
            } else {
                stats.bytes_after += out.len() as u64;
                let tmp = path.with_extension(format!("jsonl.tmp-{}", std::process::id()));
                std::fs::write(&tmp, out)?;
                std::fs::rename(&tmp, &path)?;
            }
        }
        Ok(stats)
    }
}

/// One line-aligned incremental read of a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTail {
    /// Whole-line bytes from the requested offset (possibly empty).
    pub bytes: Vec<u8>,
    /// Offset to request next: requested offset + `bytes.len()`, or the
    /// served length from 0 after a `reset`.
    pub next_offset: u64,
    /// The requested offset was past the end of the file (compacted
    /// shard): `bytes` restarts from offset 0 and replaces the reader's
    /// accumulated view of raw bytes (accumulated *records* stay valid —
    /// compaction only drops orphans, duplicates and torn lines).
    pub reset: bool,
}

/// Outcome of one [`Store::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Records surviving compaction.
    pub kept: usize,
    /// Records dropped because their fingerprint is not reachable.
    pub dropped_orphans: usize,
    /// Torn/unparseable lines dropped.
    pub dropped_torn: usize,
    /// Duplicate appends of a kept fingerprint dropped.
    pub dropped_duplicates: usize,
    /// Shard bytes before compaction.
    pub bytes_before: u64,
    /// Shard bytes after compaction.
    pub bytes_after: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dsarp-campaign-store-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_summary() -> RunSummary {
        RunSummary {
            ipc: vec![0.5, 1.25],
            energy_per_access_nj: 17.375,
            total_ipc: 1.75,
        }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let root = tmpdir("roundtrip");
        let manifest = Value::Null;
        let mut store = Store::open(&root, "c", &manifest).unwrap();
        assert!(store.is_empty());

        let fp_a = Fingerprint(1);
        let fp_g = Fingerprint(2);
        let a = Record::alone(fp_a, "alone/x".into(), 1.5);
        let g = Record::grid(fp_g, "w0/DSARP".into(), sample_summary());
        store.append(fp_a, &a).unwrap();
        store.append(fp_g, &g).unwrap();
        store.absorb(fp_a, a.clone());
        store.absorb(fp_g, g.clone());
        assert_eq!(store.len(), 2);

        let reopened = Store::open(&root, "c", &manifest).unwrap();
        assert_eq!(reopened.loaded(), 2);
        assert_eq!(reopened.get(fp_a), Some(&a));
        assert_eq!(reopened.get(fp_g), Some(&g));
        assert!(reopened.get(Fingerprint(3)).is_none());
        assert!(root.join("c").join("manifest.json").exists());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let root = tmpdir("torn");
        let manifest = Value::Null;
        let store = Store::open(&root, "c", &manifest).unwrap();
        let fp = Fingerprint(7);
        store
            .append(fp, &Record::alone(fp, "ok".into(), 2.0))
            .unwrap();
        // Simulate a kill mid-append: a truncated record on the same shard.
        let shard = root
            .join("c/shards")
            .join(format!("shard-{:02}.jsonl", Store::shard_of(fp)));
        let mut f = OpenOptions::new().append(true).open(shard).unwrap();
        write!(f, "{{\"fp\":\"dead").unwrap();
        drop(f);

        let reopened = Store::open(&root, "c", &manifest).unwrap();
        assert_eq!(reopened.loaded(), 1);
        assert_eq!(reopened.skipped_lines(), 1);
        assert!(reopened.contains(fp));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn append_after_torn_tail_preserves_the_new_record() {
        let root = tmpdir("torn-tail-append");
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        let fp_a = Fingerprint(8); // shard 0
        store
            .append(fp_a, &Record::alone(fp_a, "a".into(), 1.0))
            .unwrap();
        // Kill mid-append: partial line, no trailing newline.
        let shard = root.join("c/shards/shard-00.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        write!(f, "{{\"fp\":\"dead").unwrap();
        drop(f);

        // A fresh process (reclaim or resume) appends the re-run result.
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        let fp_b = Fingerprint(16); // same shard
        let b = Record::alone(fp_b, "b".into(), 2.0);
        store.append(fp_b, &b).unwrap();

        // The new record must NOT be spliced into the torn bytes.
        let reopened = Store::open(&root, "c", &Value::Null).unwrap();
        assert_eq!(reopened.loaded(), 2);
        assert_eq!(reopened.skipped_lines(), 1, "only the torn line is lost");
        assert_eq!(reopened.get(fp_b), Some(&b));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn compact_drops_orphans_torn_lines_and_duplicates() {
        let root = tmpdir("compact");
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        let keep_fp = Fingerprint(8); // shard 0
        let orphan_fp = Fingerprint(16); // same shard
        let kept = Record::alone(keep_fp, "keep".into(), 1.0);
        store.append(keep_fp, &kept).unwrap();
        store.append(keep_fp, &kept).unwrap(); // duplicate append
        store
            .append(orphan_fp, &Record::alone(orphan_fp, "orphan".into(), 2.0))
            .unwrap();
        let shard = root.join("c/shards/shard-00.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        write!(f, "{{\"fp\":\"torn").unwrap();
        drop(f);

        let keep: std::collections::HashSet<u128> = [keep_fp.0].into_iter().collect();
        let stats = Store::compact(&root, "c", &keep).unwrap();
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.dropped_orphans, 1);
        assert_eq!(stats.dropped_duplicates, 1);
        assert_eq!(stats.dropped_torn, 1);
        assert!(stats.bytes_after < stats.bytes_before);

        let reopened = Store::open(&root, "c", &Value::Null).unwrap();
        assert_eq!(reopened.loaded(), 1);
        assert_eq!(reopened.skipped_lines(), 0, "torn line must be gone");
        assert_eq!(reopened.get(keep_fp), Some(&kept));
        assert!(!reopened.contains(orphan_fp));

        // Compacting everything away deletes the shard file.
        let stats = Store::compact(&root, "c", &std::collections::HashSet::new()).unwrap();
        assert_eq!(stats.kept, 0);
        assert!(!shard.exists());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn read_tail_is_incremental_line_aligned_and_withholds_torn_bytes() {
        let root = tmpdir("tail");
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        let dir = root.join("c");
        let fp_a = Fingerprint(8); // shard 0
        let a = Record::alone(fp_a, "a".into(), 1.0);
        store.append(fp_a, &a).unwrap();

        let first = Store::read_tail(&dir, 0, 0).unwrap();
        assert!(!first.reset);
        assert!(first.bytes.ends_with(b"\n"));
        assert_eq!(first.next_offset, first.bytes.len() as u64);
        let (fp, rec) = Store::decode_line(std::str::from_utf8(&first.bytes).unwrap().trim_end())
            .expect("served line parses");
        assert_eq!((fp, &rec), (fp_a, &a));

        // Nothing new: empty tail, same offset.
        let again = Store::read_tail(&dir, 0, first.next_offset).unwrap();
        assert!(again.bytes.is_empty());
        assert_eq!(again.next_offset, first.next_offset);

        // A torn append lands: the fragment must be withheld.
        let shard = dir.join("shards/shard-00.jsonl");
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        write!(f, "{{\"fp\":\"torn").unwrap();
        drop(f);
        let torn = Store::read_tail(&dir, 0, first.next_offset).unwrap();
        assert!(torn.bytes.is_empty(), "torn fragment must be withheld");
        assert_eq!(torn.next_offset, first.next_offset);

        // Healing (next append) completes the fragment into a skippable
        // line plus the new record; both are now served whole.
        let fp_b = Fingerprint(16); // same shard
        let b = Record::alone(fp_b, "b".into(), 2.0);
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        store.append(fp_b, &b).unwrap();
        let healed = Store::read_tail(&dir, 0, first.next_offset).unwrap();
        assert!(healed.bytes.ends_with(b"\n"));
        let lines: Vec<&str> = std::str::from_utf8(&healed.bytes)
            .unwrap()
            .lines()
            .collect();
        assert_eq!(lines.len(), 2, "torn-then-healed line + the new record");
        assert!(Store::decode_line(lines[0]).is_none());
        assert_eq!(Store::decode_line(lines[1]), Some((fp_b, b)));

        // Offset past EOF (compaction shrank the file): reset from 0.
        let reset = Store::read_tail(&dir, 0, 1 << 30).unwrap();
        assert!(reset.reset);
        assert_eq!(reset.next_offset, healed.next_offset);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn records_spread_across_shards() {
        let root = tmpdir("spread");
        let store = Store::open(&root, "c", &Value::Null).unwrap();
        for i in 0..64u128 {
            let fp = Fingerprint(i * 0x9E37_79B9_7F4A_7C15);
            store
                .append(fp, &Record::alone(fp, format!("r{i}"), i as f64))
                .unwrap();
        }
        let shard_files = std::fs::read_dir(root.join("c/shards"))
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
            .count();
        assert!(
            shard_files > 1,
            "records must shard across files, got {shard_files}"
        );
        let reopened = Store::open(&root, "c", &Value::Null).unwrap();
        assert_eq!(reopened.loaded(), 64);
        let _ = std::fs::remove_dir_all(root);
    }
}
