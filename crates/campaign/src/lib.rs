//! Campaign engine: cached, resumable, sharded experiment orchestration.
//!
//! The paper's evaluation is a large rectangular sweep — 100 workloads ×
//! 12 mechanisms × 3 densities plus eight sensitivity studies — and the
//! simulator recomputed all of it on every invocation. This crate turns
//! that one-shot harness into an incremental service:
//!
//! * [`CampaignSpec`] describes a campaign declaratively as named sweeps
//!   over the evaluation axes (workloads, mechanisms, densities, cores,
//!   subarrays, retention, `tFAW`, watermarks, seeds).
//! * Every expanded cell is a [`Job`] keyed by a content
//!   [`Fingerprint`] of `(SimConfig, workload, cycles)`; identical cells
//!   across sweeps collapse to one simulation.
//! * The [`Store`] persists results as JSON-lines shards under
//!   `.campaign/<name>/`; completed jobs are flushed immediately, so a
//!   killed campaign resumes where it stopped and an identical re-run
//!   simulates nothing.
//! * [`Campaign::run`] executes the misses on the shared thread pool and
//!   assembles per-sweep [`dsarp_sim::experiments::Grid`]s, which the
//!   existing figure/table reducers consume unchanged.
//!
//! * The [`traces`] module adds **trace-driven workloads**: a
//!   [`WorkloadSet::TraceDir`] sweeps a whole directory of captured
//!   Ramulator-format trace files (replayed through `dsarp-cpu`'s trace
//!   reader), folding each file's content hash into the job fingerprint —
//!   editing one trace invalidates exactly its own cells; the
//!   `trace-capture` subcommand records synthetic workloads as trace
//!   suites.
//! * The [`lease`] module adds **distributed execution**: N independent
//!   `experiments worker` processes lease shards of the missing-job set
//!   through a cooperative `shard-NN.lock` protocol (owner + heartbeat,
//!   stale leases reclaimed after a TTL), each appending only to its own
//!   shard files; `experiments merge` waits for the drain, reclaims dead
//!   workers' cells, and reduces artifacts byte-identically to a
//!   single-process run.
//!
//! The `experiments` binary in this crate regenerates every artifact of
//! the paper through the engine:
//!
//! ```text
//! cargo run --release -p dsarp-campaign --bin experiments -- --scale quick
//! ```
//!
//! # Example
//!
//! ```
//! use dsarp_campaign::{Campaign, CampaignSpec, SweepSpec, WorkloadSet};
//! use dsarp_core::Mechanism;
//! use dsarp_dram::Density;
//! use dsarp_sim::experiments::Scale;
//!
//! let scale = Scale { dram_cycles: 2_000, alone_cycles: 1_000,
//!                     per_category: 1, threads: 2, warmup_ops: 500 };
//! let spec = CampaignSpec::new("doc", scale).with_sweep(SweepSpec::new(
//!     "demo",
//!     WorkloadSet::Intensive { cores: 2 },
//!     &[Mechanism::RefAb, Mechanism::Dsarp],
//!     &[Density::G8],
//! ));
//! let dir = std::env::temp_dir().join("dsarp-campaign-doctest");
//! # std::fs::remove_dir_all(&dir).ok();
//! let mut campaign = Campaign::open(&dir, spec.clone()).unwrap();
//! let first = campaign.run().unwrap();
//! assert!(first.grid("demo").rows().len() > 0);
//!
//! // Re-running the identical campaign simulates nothing.
//! let again = Campaign::open(&dir, spec).unwrap().run().unwrap();
//! assert_eq!(again.stats.simulated, 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod events;
pub mod export;
pub mod fingerprint;
pub mod job;
pub mod lease;
pub mod remote;
pub mod retry;
pub mod runner;
pub mod spec;
pub mod store;
pub mod traces;

pub use backend::{AcquireOutcome, BackendLease, LocalBackend, StoreBackend};
pub use events::{Event, EventLog};
pub use fingerprint::Fingerprint;
pub use job::{Job, JobOutput, RunSummary};
pub use lease::{Lease, LeaseInfo};
pub use remote::RemoteStore;
pub use retry::RetryPolicy;
pub use runner::{
    CacheStats, Campaign, CampaignClient, CampaignReport, PhaseTiming, WorkerOptions, WorkerReport,
};
pub use spec::{CampaignSpec, CampaignWorkload, SweepSpec, WorkloadSet};
pub use store::{CompactionStats, Record, Store};
pub use traces::{TraceRef, TraceSetError, TraceWorkload};
