//! Regenerates every table and figure of the paper's evaluation through
//! the campaign engine: all runs are content-addressed, cached under the
//! campaign store, and resumable — re-running reuses every completed cell.
//!
//! ```text
//! experiments [run]     [--scale quick|full] [--cycles N] [--per-category N]
//!                       [--threads N] [--out DIR] [--campaign DIR] [--fresh]
//!                       [--exp NAME] [--spec FILE.json] [--emit-spec FILE]
//!                       [--traces DIR [--trace-cores N] [--trace-glob G]]
//!                       [--events FILE.jsonl] [--telemetry] [--no-skip-ahead]
//! experiments worker    (--campaign DIR | --store-url URL)
//!                       [--spec FILE | --traces DIR]
//!                       [--owner ID] [--ttl-ms N] [--poll-ms N]
//!                       [--threads N] [--exp NAME] [--events FILE.jsonl]
//! experiments merge     (--campaign DIR | --store-url URL)
//!                       [--spec FILE | --traces DIR] [... run flags]
//! experiments status    [--campaign DIR] [--spec FILE | --traces DIR]
//! experiments compact   --campaign DIR [--spec FILE | --traces DIR]
//! experiments serve     [--listen ADDR] [--campaign DIR]
//!                       [--spec FILE | --traces DIR]
//! experiments trace-capture --traces DIR [--count N] [--trace-cores N]
//!                       [--ops N] [--seed N] [--format text|text-ext|bin]
//! experiments trace-convert --from FILE --to FILE [--format text|text-ext|bin]
//! ```
//!
//! * `run` (default): single-process execution plus artifact reduction.
//! * `worker`: leases shards of the missing-job set via `shard-NN.lock`
//!   files, simulates only leased cells, and exits once the campaign is
//!   drained (by itself and/or other workers). Run N of these — across
//!   processes or hosts sharing the store directory — to distribute one
//!   campaign.
//! * `merge`: the coordinator — waits for leases to drain, reclaims dead
//!   workers' unfinished cells (re-running them locally), then reduces
//!   tables/figures exactly as `run` does, byte-identically.
//! * `status`: one-shot progress table — per-shard done/missing cell
//!   counts against the spec plus the current lease holders (live or
//!   stale). Read-only; safe to run while workers drain. For a campaign
//!   behind `experiments serve`, scrape `GET /status` instead.
//! * `compact`: rewrites shards keeping only fingerprints reachable from
//!   the spec, dropping orphaned records, duplicate appends and torn lines.
//! * `serve`: hosts the campaign store over HTTP (prints the URL on the
//!   first stdout line), so `worker --store-url URL` and
//!   `merge --store-url URL` distribute the campaign across hosts with no
//!   shared filesystem — leases, dedup and crash reclaim work exactly as
//!   they do against a shared `--campaign DIR`. See the README's
//!   "Campaign server" section for the endpoint table.
//! * `trace-capture`: records synthetic memory-intensive mixes as a
//!   directory of trace files (one file per workload per core), so users
//!   and CI can self-generate trace suites to sweep. `--format` picks the
//!   encoding: plain Ramulator `text` (default, lossy for store bubbles
//!   and load dependence), the lossless `text-ext` dialect, or the
//!   lossless binary `bin` (`.dtrace`) — see the README's trace dialect
//!   spec.
//! * `trace-convert`: re-encodes one trace file between dialects
//!   (`--from FILE --to FILE`). The target dialect is inferred from the
//!   `--to` extension (`.dtrace` means `bin`, anything else `text-ext`)
//!   unless `--format` says otherwise. Conversions between the lossless
//!   dialects round-trip byte-stably.
//! * `--traces DIR` sweeps a directory of captured traces instead of the
//!   built-in paper campaign: file names matching `--trace-glob` (default
//!   `*.trace`; use `*.dtrace` for binary suites) are sorted and bundled
//!   `--trace-cores` (default 1) at a time, and each file's content hash
//!   feeds the job fingerprints, so editing a trace re-simulates exactly
//!   its own cells. The sweep runs `REFab`/`REFpb`/`DSARP` at 32 Gb;
//!   `--emit-spec` the spec and edit it for other axes.
//! * `--spec FILE.json` executes a serialized [`CampaignSpec`] instead of
//!   the built-in paper campaign (no recompilation for new sweeps);
//!   `--emit-spec FILE` dumps the built-in (or `--traces`) spec as a
//!   starting point.
//! * `--events FILE.jsonl` appends one structured JSON event per campaign
//!   progress step (planning, per-job simulation, lease churn, remote
//!   retries) to `FILE.jsonl` — see the README's "Observability" section
//!   for the schema. Console output is unchanged.
//! * `--telemetry` (run only) additionally samples per-bank simulator
//!   telemetry and writes one sidecar JSON per simulated cell under
//!   `<store>/telemetry/<fingerprint>.json`. Shard records and grids are
//!   byte-identical with or without it.
//! * `--no-skip-ahead` (run only) forces per-cycle stepping
//!   ([`dsarp_sim::System::run_per_cycle`]) instead of the event-driven
//!   skip-ahead loop. Every record, grid and telemetry sidecar is
//!   byte-identical either way (the simulator's exactness guarantee);
//!   the flag exists to demonstrate that and to isolate the skip-ahead
//!   engine when debugging. Wall time is the only difference.
//!
//! Outputs one CSV per artifact under `--out` (default `results/`), a
//! combined `EXPERIMENTS_RAW.md`, and `campaign_report.json` with cache
//! statistics. The result store lives under `--campaign` (default
//! `.campaign/`); `--fresh` wipes it first.

use dsarp_campaign::store::SHARDS;
use dsarp_campaign::{
    export, lease, traces, Campaign, CampaignClient, CampaignReport, CampaignSpec, Event, EventLog,
    RemoteStore, Store, SweepSpec, WorkerOptions, WorkloadSet,
};
use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::experiments::{
    ablations, chart, fig05, fig06_07, fig12_table2, fig13, fig14, fig15, fig16,
    harness::{Scale, WORKLOAD_SEED},
    overlap, report, table3, table4, table5, table6,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmd {
    Run,
    Worker,
    Merge,
    Status,
    Compact,
    Serve,
    TraceCapture,
    TraceConvert,
}

/// CLI refusal: a named offending token and a nonzero exit, without the
/// panic machinery (no backtrace advice for a usage error).
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

struct Args {
    cmd: Cmd,
    scale: Scale,
    out: PathBuf,
    campaign_dir: PathBuf,
    fresh: bool,
    only: Option<String>,
    spec_file: Option<PathBuf>,
    emit_spec: Option<PathBuf>,
    owner: Option<String>,
    ttl_ms: u64,
    poll_ms: u64,
    /// Remote campaign store (worker/merge): talk to an `experiments
    /// serve` instance instead of a shared `--campaign` directory.
    store_url: Option<String>,
    /// `serve` bind address (default `127.0.0.1:0`).
    listen: Option<String>,
    /// Explicit scale overrides, applied to `--spec` files too.
    cycles: Option<u64>,
    per_category: Option<usize>,
    threads: Option<usize>,
    /// Whether `--scale` was passed explicitly (invalid with `--spec`,
    /// whose file carries its own scale).
    scale_set: bool,
    /// Trace directory: capture target for `trace-capture`, sweep source
    /// otherwise.
    traces: Option<PathBuf>,
    trace_cores: usize,
    trace_glob: String,
    /// `trace-capture` knobs.
    capture_count: usize,
    capture_ops: usize,
    capture_seed: u64,
    capture_knobs_set: bool,
    /// Trace encoding for `trace-capture` / `trace-convert` (`--format`).
    trace_format: Option<dsarp_cpu::TraceDialect>,
    /// `trace-convert` source and destination files.
    convert_from: Option<PathBuf>,
    convert_to: Option<PathBuf>,
    /// Structured JSONL event log destination (`--events FILE`).
    events: Option<PathBuf>,
    /// Per-cell simulator telemetry sidecars (`--telemetry`, run only).
    telemetry: bool,
    /// Force per-cycle stepping (`--no-skip-ahead`, run only).
    per_cycle: bool,
}

fn parse_args() -> Args {
    let mut scale = Scale::full();
    // Individual knobs are collected separately and applied after the
    // loop, so `--cycles 4000 --scale quick` and `--scale quick --cycles
    // 4000` mean the same thing.
    let mut cycles = None;
    let mut per_category = None;
    let mut threads = None;
    let mut out = PathBuf::from("results");
    let mut campaign_dir = PathBuf::from(".campaign");
    let mut fresh = false;
    let mut only = None;
    let mut scale_set = false;
    let mut spec_file = None;
    let mut emit_spec = None;
    let mut owner = None;
    let mut ttl_ms = lease::DEFAULT_TTL_MS;
    let mut poll_ms = 500;
    let mut store_url = None;
    let mut listen = None;
    let mut campaign_set = false;
    let mut traces = None;
    let mut trace_cores = 1usize;
    let mut trace_glob = String::from("*.trace");
    let mut capture_count = 4usize;
    let mut capture_ops = 50_000usize;
    // The paper SimConfig's seed: captured entries are the exact streams
    // the synthetic default sweeps generate. (The text format itself is
    // lossy for store bubbles and load dependence, so replay is
    // bit-exact only for loads-only streams — see the README.)
    let mut capture_seed = 0xD5A2_2014u64;
    let mut capture_knobs_set = false;
    let mut trace_format = None;
    let mut convert_from = None;
    let mut convert_to = None;
    let mut events = None;
    let mut telemetry = false;
    let mut per_cycle = false;
    let mut trace_knobs_set = false;
    // Flags that only make sense for simulation-running subcommands; a
    // trace-capture passing one must refuse, not look configured.
    let mut run_only_flags: Vec<&'static str> = Vec::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let cmd = match argv.first().map(String::as_str) {
        Some("run") => {
            i += 1;
            Cmd::Run
        }
        Some("worker") => {
            i += 1;
            Cmd::Worker
        }
        Some("merge") => {
            i += 1;
            Cmd::Merge
        }
        Some("status") => {
            i += 1;
            Cmd::Status
        }
        Some("compact") => {
            i += 1;
            Cmd::Compact
        }
        Some("serve") => {
            i += 1;
            Cmd::Serve
        }
        Some("trace-capture") => {
            i += 1;
            Cmd::TraceCapture
        }
        Some("trace-convert") => {
            i += 1;
            Cmd::TraceConvert
        }
        Some(other) if !other.starts_with("--") => die(&format!(
            "unknown subcommand `{other}` \
             (run|worker|merge|status|compact|serve|trace-capture|trace-convert)"
        )),
        _ => Cmd::Run,
    };
    while i < argv.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| die(&format!("missing value for {}", argv[*i - 1])))
                .clone()
        };
        match argv[i].as_str() {
            "--scale" => {
                scale_set = true;
                scale = match next(&mut i).as_str() {
                    "quick" => Scale::quick(),
                    "full" => Scale::full(),
                    other => panic!("unknown scale `{other}`"),
                }
            }
            "--cycles" => cycles = Some(next(&mut i).parse().expect("--cycles")),
            "--per-category" => per_category = Some(next(&mut i).parse().expect("--per-category")),
            "--threads" => threads = Some(next(&mut i).parse().expect("--threads")),
            "--out" => {
                run_only_flags.push("--out");
                out = PathBuf::from(next(&mut i));
            }
            "--campaign" => {
                run_only_flags.push("--campaign");
                campaign_set = true;
                campaign_dir = PathBuf::from(next(&mut i));
            }
            "--store-url" => store_url = Some(next(&mut i)),
            "--listen" => listen = Some(next(&mut i)),
            "--fresh" => fresh = true,
            "--exp" => only = Some(next(&mut i)),
            "--spec" => spec_file = Some(PathBuf::from(next(&mut i))),
            "--emit-spec" => emit_spec = Some(PathBuf::from(next(&mut i))),
            "--owner" => {
                run_only_flags.push("--owner");
                owner = Some(next(&mut i));
            }
            "--ttl-ms" => {
                run_only_flags.push("--ttl-ms");
                ttl_ms = next(&mut i).parse().expect("--ttl-ms");
            }
            "--poll-ms" => {
                run_only_flags.push("--poll-ms");
                poll_ms = next(&mut i).parse().expect("--poll-ms");
            }
            "--events" => {
                run_only_flags.push("--events");
                events = Some(PathBuf::from(next(&mut i)));
            }
            "--telemetry" => {
                run_only_flags.push("--telemetry");
                telemetry = true;
            }
            "--no-skip-ahead" => {
                run_only_flags.push("--no-skip-ahead");
                per_cycle = true;
            }
            "--traces" => traces = Some(PathBuf::from(next(&mut i))),
            "--trace-cores" => {
                trace_knobs_set = true;
                trace_cores = next(&mut i).parse().expect("--trace-cores");
            }
            "--trace-glob" => {
                trace_knobs_set = true;
                run_only_flags.push("--trace-glob");
                trace_glob = next(&mut i);
            }
            "--count" => {
                capture_knobs_set = true;
                capture_count = next(&mut i).parse().expect("--count");
            }
            "--ops" => {
                capture_knobs_set = true;
                capture_ops = next(&mut i).parse().expect("--ops");
            }
            "--seed" => {
                capture_knobs_set = true;
                capture_seed = next(&mut i).parse().expect("--seed");
            }
            "--format" => {
                let value = next(&mut i);
                trace_format = Some(dsarp_cpu::TraceDialect::parse(&value).unwrap_or_else(|| {
                    die(&format!("unknown --format `{value}` (text|text-ext|bin)"))
                }));
            }
            "--from" => convert_from = Some(PathBuf::from(next(&mut i))),
            "--to" => convert_to = Some(PathBuf::from(next(&mut i))),
            other => die(&format!("unknown argument `{other}` (see the module docs)")),
        }
        i += 1;
    }
    // Mode-invalid combinations refuse up front, naming the offending
    // flag: a silently ignored `--store-url` would run against the local
    // directory while the user believes the server is in the loop.
    if store_url.is_some() {
        match cmd {
            Cmd::Worker | Cmd::Merge => {}
            _ => die(&format!(
                "--store-url applies to worker/merge only, not `{}` \
                 (run `experiments serve` on the host that owns the store; \
                 its GET /status endpoint replaces `status`)",
                match cmd {
                    Cmd::Run => "run",
                    Cmd::Status => "status",
                    Cmd::Compact => "compact",
                    Cmd::Serve => "serve",
                    Cmd::TraceCapture => "trace-capture",
                    Cmd::TraceConvert => "trace-convert",
                    Cmd::Worker | Cmd::Merge => unreachable!(),
                }
            )),
        }
        if campaign_set {
            die("--campaign conflicts with --store-url (the server owns the store directory)");
        }
        if fresh {
            die("--fresh conflicts with --store-url (wipe the store on the serving host)");
        }
    }
    if listen.is_some() && cmd != Cmd::Serve {
        die("--listen applies to `serve` only");
    }
    if telemetry && cmd != Cmd::Run {
        die("--telemetry applies to `run` only (sidecars are written by the local executor)");
    }
    if per_cycle && cmd != Cmd::Run {
        die(
            "--no-skip-ahead applies to `run` only (workers always use the default loop; \
             results are identical by the exactness guarantee)",
        );
    }
    if events.is_some() && !matches!(cmd, Cmd::Run | Cmd::Worker | Cmd::Merge) {
        die("--events applies to run/worker/merge (the simulating subcommands)");
    }
    if cmd == Cmd::Serve && fresh {
        die("--fresh conflicts with serve (wipe the store before starting the server)");
    }
    if let Some(c) = cycles {
        scale.dram_cycles = c;
    }
    if let Some(p) = per_category {
        scale.per_category = p;
    }
    if let Some(t) = threads {
        scale = scale.with_threads(t);
    }
    // Silently ignored flags must refuse, not look configured.
    assert!(
        traces.is_some() || !trace_knobs_set,
        "--trace-cores/--trace-glob configure a --traces DIR sweep (or trace-capture); \
         pass --traces too"
    );
    if cmd == Cmd::TraceCapture {
        assert!(
            !scale_set && cycles.is_none() && per_category.is_none() && threads.is_none(),
            "--scale/--cycles/--per-category/--threads configure simulation runs; \
             trace-capture only takes --traces/--count/--trace-cores/--ops/--seed/--format"
        );
        assert!(
            run_only_flags.is_empty(),
            "{} configure simulation runs and are ignored by trace-capture \
             (it only takes --traces/--count/--trace-cores/--ops/--seed/--format)",
            run_only_flags.join("/")
        );
    }
    if trace_format.is_some() && !matches!(cmd, Cmd::TraceCapture | Cmd::TraceConvert) {
        die("--format picks a trace encoding; it applies to trace-capture/trace-convert only");
    }
    if (convert_from.is_some() || convert_to.is_some()) && cmd != Cmd::TraceConvert {
        die("--from/--to apply to trace-convert only");
    }
    if cmd == Cmd::TraceConvert {
        assert!(
            !scale_set
                && cycles.is_none()
                && per_category.is_none()
                && threads.is_none()
                && run_only_flags.is_empty()
                && !trace_knobs_set
                && !capture_knobs_set
                && traces.is_none()
                && spec_file.is_none()
                && only.is_none()
                && !fresh,
            "trace-convert only takes --from FILE --to FILE [--format text|text-ext|bin]"
        );
        if convert_from.is_none() || convert_to.is_none() {
            die("trace-convert needs both --from FILE and --to FILE");
        }
    }
    if let Some(name) = only.as_deref() {
        // A --spec file and the --traces campaign carry their own sweep
        // names; only the built-in paper campaign has a fixed artifact
        // list to validate against.
        if spec_file.is_none() && traces.is_none() {
            const KNOWN: [&str; 15] = [
                "fig5",
                "fig6",
                "fig7",
                "fig12",
                "table2",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "table3",
                "table4",
                "table5",
                "table6",
                "overlap",
                "ablations",
            ];
            assert!(
                KNOWN.contains(&name),
                "unknown experiment `{name}`; expected one of {KNOWN:?}"
            );
        }
    }
    Args {
        cmd,
        scale,
        out,
        campaign_dir,
        fresh,
        only,
        spec_file,
        emit_spec,
        owner,
        ttl_ms,
        poll_ms,
        store_url,
        listen,
        cycles,
        per_category,
        threads,
        scale_set,
        traces,
        trace_cores,
        trace_glob,
        capture_count,
        capture_ops,
        capture_seed,
        capture_knobs_set,
        trace_format,
        convert_from,
        convert_to,
        events,
        telemetry,
        per_cycle,
    }
}

/// Opens the `--events` JSONL sink, or a disabled log when the flag is
/// absent. Console output is identical either way.
fn event_log(args: &Args) -> Arc<EventLog> {
    match &args.events {
        Some(path) => Arc::new(
            EventLog::to_path(path)
                .unwrap_or_else(|e| die(&format!("cannot open --events {}: {e}", path.display()))),
        ),
        None => Arc::new(EventLog::disabled()),
    }
}

fn wanted(only: &Option<String>, name: &str) -> bool {
    only.as_deref().is_none_or(|o| o == name)
}

/// Which sweep-name prefixes the requested artifacts need.
fn required_sweeps(only: &Option<String>) -> Vec<&'static str> {
    const MAIN_ARTIFACTS: [&str; 8] = [
        "fig6", "fig7", "fig12", "table2", "fig13", "fig14", "fig15", "fig16",
    ];
    let mut prefixes = Vec::new();
    if MAIN_ARTIFACTS.iter().any(|n| wanted(only, n)) {
        prefixes.push("main");
    }
    for (artifact, prefix) in [
        ("table3", "table3/"),
        ("table4", "table4/"),
        ("table5", "table5/"),
        ("table6", "table6"),
        ("overlap", "overlap"),
        ("ablations", "ablations/"),
    ] {
        if wanted(only, artifact) {
            prefixes.push(prefix);
        }
    }
    prefixes
}

/// The trace-sweep mechanisms `--traces DIR` evaluates by default; emit
/// the spec and edit it for other axes.
const TRACE_MECHS: [Mechanism; 3] = [Mechanism::RefAb, Mechanism::RefPb, Mechanism::Dsarp];

/// The campaign a bare `--traces DIR` runs: one sweep over the directory's
/// bundles at 32 Gb.
fn trace_spec(args: &Args, dir: &Path) -> CampaignSpec {
    CampaignSpec::new("traces", args.scale).with_sweep(SweepSpec::new(
        "traces",
        WorkloadSet::TraceDir {
            path: dir.to_string_lossy().into_owned(),
            glob: args.trace_glob.clone(),
            cores: args.trace_cores,
        },
        &TRACE_MECHS,
        &[Density::G32],
    ))
}

/// Resolves the campaign spec: a `--spec` file when given (with any
/// explicit `--cycles`/`--per-category`/`--threads` overrides applied on
/// top — changing cycles or workloads changes job fingerprints), a
/// `--traces DIR` sweep next, the built-in paper campaign otherwise. The
/// second element is true for custom specs, which reduce to generic
/// per-sweep grid CSVs instead of the paper's named artifacts.
fn resolve_spec(args: &Args) -> (CampaignSpec, bool) {
    // Two spec sources cannot both win; refuse rather than ignore one.
    assert!(
        args.spec_file.is_none() || args.traces.is_none(),
        "--traces conflicts with --spec (a spec file can hold a TraceDir sweep itself)"
    );
    if let Some(dir) = &args.traces {
        let mut spec = trace_spec(args, dir);
        if let Some(prefix) = args.only.as_deref() {
            spec = spec.filtered(&[prefix]);
            assert!(
                !spec.sweeps.is_empty(),
                "--exp {prefix} matches no sweep of the trace campaign (its sweep is `traces`)"
            );
        }
        return (spec, true);
    }
    match &args.spec_file {
        Some(path) => {
            // A silently ignored preset would run at the file's scale
            // while the user believes they asked for another.
            assert!(
                !args.scale_set,
                "--scale conflicts with --spec (the spec file carries its own scale; \
                 use --cycles/--per-category/--threads to override individual knobs)"
            );
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read --spec {}: {e}", path.display()));
            let mut spec = CampaignSpec::from_json(&text)
                .unwrap_or_else(|e| panic!("cannot parse --spec {}: {e}", path.display()));
            if let Some(c) = args.cycles {
                spec.scale.dram_cycles = c;
            }
            if let Some(p) = args.per_category {
                spec.scale.per_category = p;
            }
            if let Some(t) = args.threads {
                spec.scale = spec.scale.with_threads(t);
            }
            if let Some(prefix) = args.only.as_deref() {
                spec = spec.filtered(&[prefix]);
                assert!(
                    !spec.sweeps.is_empty(),
                    "--exp {prefix} matches no sweep of the custom spec"
                );
            }
            (spec, true)
        }
        None => {
            let prefixes = required_sweeps(&args.only);
            (CampaignSpec::paper(args.scale).filtered(&prefixes), false)
        }
    }
}

fn worker_options(args: &Args) -> WorkerOptions {
    let job_delay_ms = std::env::var("DSARP_JOB_DELAY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    WorkerOptions {
        owner: args
            .owner
            .clone()
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        ttl_ms: args.ttl_ms,
        poll_ms: args.poll_ms,
        job_delay_ms,
    }
}

fn main() {
    let args = parse_args();
    // Capture knobs silently ignored by other subcommands would look like
    // configuration while changing nothing.
    assert!(
        args.cmd == Cmd::TraceCapture || !args.capture_knobs_set,
        "--count/--ops/--seed configure `trace-capture` only"
    );
    if let Some(path) = &args.emit_spec {
        // Silently skipping a requested worker/merge/compact (or ignoring
        // a --spec file) would look like success while doing nothing.
        assert!(
            args.cmd == Cmd::Run && args.spec_file.is_none(),
            "--emit-spec writes the built-in spec and exits; it cannot be combined \
             with a subcommand or --spec"
        );
        let (spec, what) = match &args.traces {
            Some(dir) => (trace_spec(&args, dir), "trace-sweep"),
            None => (CampaignSpec::paper(args.scale), "built-in paper"),
        };
        std::fs::write(path, spec.to_json()).expect("write --emit-spec file");
        println!(
            "wrote the {what} spec ({} sweeps) to {}",
            spec.sweeps.len(),
            path.display()
        );
        return;
    }
    if args.cmd == Cmd::TraceCapture {
        run_trace_capture(&args);
        return;
    }
    if args.cmd == Cmd::TraceConvert {
        run_trace_convert(&args);
        return;
    }
    let (spec, custom) = resolve_spec(&args);
    match args.cmd {
        Cmd::Worker => run_worker_cmd(&args, spec),
        Cmd::Status => run_status_cmd(&args, &spec),
        Cmd::Compact => run_compact_cmd(&args, &spec),
        Cmd::Serve => run_serve_cmd(&args, spec),
        Cmd::Run | Cmd::Merge => run_or_merge(&args, spec, custom),
        Cmd::TraceCapture | Cmd::TraceConvert => unreachable!("handled above"),
    }
}

/// `status`: renders per-shard drain progress against the spec plus the
/// current lease table, read-only (no lease taken, no record written).
fn run_status_cmd(args: &Args, spec: &CampaignSpec) {
    assert!(
        !args.fresh,
        "--fresh would wipe the store status is meant to inspect; use it with `run`"
    );
    let campaign_dir = args.campaign_dir.join(&spec.name);
    // Expected cells per shard, from the same expansion run/worker use;
    // cross-sweep duplicates collapse exactly as they do when simulating.
    let mut expected: Vec<std::collections::HashSet<u128>> = (0..SHARDS)
        .map(|_| std::collections::HashSet::new())
        .collect();
    for sweep in &spec.sweeps {
        let jobs = sweep
            .jobs(&spec.scale, spec.workload_seed)
            .unwrap_or_else(|e| panic!("sweep `{}` failed to expand: {e}", sweep.name));
        for job in jobs {
            let fp = job.fingerprint();
            expected[Store::shard_of(fp)].insert(fp.0);
        }
    }
    let leases = lease::list(&campaign_dir, SHARDS);
    let now = lease::now_ms();
    println!(
        "campaign `{}` at {} ({} sweeps)",
        spec.name,
        campaign_dir.display(),
        spec.sweeps.len()
    );
    println!("shard   done missing  lease");
    let (mut total_done, mut total_expected) = (0usize, 0usize);
    for (shard, want) in expected.iter().enumerate() {
        let present = Store::read_shard_fingerprints(&campaign_dir, shard)
            .unwrap_or_else(|e| panic!("cannot read shard {shard}: {e}"));
        let done = want.iter().filter(|fp| present.contains(fp)).count();
        total_done += done;
        total_expected += want.len();
        let lease_text = match leases.iter().find(|(s, _, _)| *s == shard) {
            Some((_, info, live)) => {
                let age_ms = now.saturating_sub(info.heartbeat_ms);
                format!(
                    "{} `{}` (pid {}, heartbeat {age_ms} ms ago, ttl {} ms)",
                    if *live { "held by" } else { "STALE from" },
                    info.owner,
                    info.pid,
                    info.ttl_ms
                )
            }
            None => String::from("-"),
        };
        println!(
            "  {shard:02}  {done:>5} {:>7}  {lease_text}",
            want.len() - done
        );
    }
    let pct = if total_expected == 0 {
        100.0
    } else {
        100.0 * total_done as f64 / total_expected as f64
    };
    println!(
        "total: {total_done}/{total_expected} cells done ({pct:.1}%), {} lease files on disk",
        leases.len()
    );
}

/// `serve`: hosts the campaign store over HTTP until killed. The first
/// stdout line is `serving <name> at http://ADDR` — scripts parse the URL
/// from it (`--listen 127.0.0.1:0` picks a free port).
fn run_serve_cmd(args: &Args, spec: CampaignSpec) {
    use std::io::Write;
    let listen = args.listen.as_deref().unwrap_or("127.0.0.1:0");
    let http = minihttp::Server::bind(listen)
        .unwrap_or_else(|e| die(&format!("cannot bind --listen {listen}: {e}")));
    let addr = http.local_addr().expect("bound listener has an address");
    let server =
        dsarp_serve::CampaignServer::new(&args.campaign_dir, spec).expect("open campaign store");
    println!(
        "serving {} at http://{addr} (store: {})",
        server.campaign_name(),
        server.campaign_dir().display()
    );
    std::io::stdout().flush().expect("flush URL line");
    server.serve(http).expect("serve campaign");
}

/// `trace-capture`: records `--count` memory-intensive synthetic mixes of
/// `--trace-cores` cores as trace files under `--traces DIR` (one file
/// per workload per core, `--ops` entries each, in the `--format`
/// dialect). File naming (`<mix>-c<NN>.<ext>`) sorts each mix's cores
/// consecutively, so a `--traces DIR --trace-cores N` sweep reassembles
/// exactly these bundles.
fn run_trace_capture(args: &Args) {
    let dir = args.traces.as_deref().unwrap_or_else(|| {
        panic!("trace-capture needs --traces DIR (the capture target directory)")
    });
    assert!(
        args.spec_file.is_none() && args.only.is_none() && !args.fresh,
        "--spec/--exp/--fresh do not apply to trace-capture"
    );
    let dialect = args.trace_format.unwrap_or(dsarp_cpu::TraceDialect::Text);
    let workloads: Vec<dsarp_workloads::Workload> =
        dsarp_workloads::mixes::intensive_mixes(args.trace_cores, WORKLOAD_SEED)
            .into_iter()
            .take(args.capture_count)
            .collect();
    assert!(
        workloads.len() == args.capture_count,
        "--count {} exceeds the {} available intensive mixes",
        args.capture_count,
        dsarp_workloads::mixes::intensive_mixes(args.trace_cores, WORKLOAD_SEED).len()
    );
    let t0 = Instant::now();
    let written = traces::capture_workloads(
        dir,
        &workloads,
        args.capture_seed,
        args.capture_ops,
        dialect,
    )
    .expect("capture trace files");
    println!(
        "[{:>7.1?}] captured {} workloads x {} cores ({} entries each, {dialect}) \
         into {} files under {}",
        t0.elapsed(),
        workloads.len(),
        args.trace_cores,
        args.capture_ops,
        written.len(),
        dir.display()
    );
}

/// `trace-convert`: re-encodes `--from FILE` into `--to FILE`. The target
/// dialect comes from `--format`, else from the `--to` extension
/// (`.dtrace` means binary, anything else the lossless `text-ext`).
fn run_trace_convert(args: &Args) {
    use dsarp_cpu::TraceDialect;
    let from = args.convert_from.as_deref().expect("checked at parse");
    let to = args.convert_to.as_deref().expect("checked at parse");
    let target =
        args.trace_format
            .unwrap_or_else(|| match to.extension().and_then(|e| e.to_str()) {
                Some("dtrace") => TraceDialect::Bin,
                _ => TraceDialect::TextExt,
            });
    let bytes = std::fs::read(from)
        .unwrap_or_else(|e| die(&format!("cannot read --from {}: {e}", from.display())));
    let t0 = Instant::now();
    let (summary, out) = dsarp_cpu::trace_v1::convert_bytes(&bytes, target)
        .unwrap_or_else(|e| die(&format!("trace file {}: {e}", from.display())));
    std::fs::write(to, &out)
        .unwrap_or_else(|e| die(&format!("cannot write --to {}: {e}", to.display())));
    println!(
        "[{:>7.1?}] converted {} ({}, {} entries, {} bytes) -> {} ({target}, {} bytes)",
        t0.elapsed(),
        from.display(),
        summary.dialect,
        summary.entries,
        summary.bytes,
        to.display(),
        out.len()
    );
}

fn run_worker_cmd(args: &Args, spec: CampaignSpec) {
    assert!(
        !args.fresh,
        "--fresh would wipe records other workers are producing; use it with `run`"
    );
    let opts = worker_options(args);
    let events = event_log(args);
    let t0 = Instant::now();
    let report = match &args.store_url {
        Some(url) => {
            // Remote drain: every store and lease operation goes through
            // the campaign server; nothing is created locally.
            let mut backend =
                RemoteStore::connect(url, &spec.name).expect("connect to campaign server");
            if events.is_recording() {
                // Transport back-offs land in the same JSONL stream as
                // lease churn, so a flaky server is visible per attempt.
                let log = Arc::clone(&events);
                backend.set_retry_observer(Box::new(move |what, attempt, delay, error| {
                    log.emit(
                        false,
                        &Event::RetryAttempt {
                            what: what.to_string(),
                            attempt,
                            delay,
                            error: error.to_string(),
                        },
                    );
                }));
            }
            let mut client = CampaignClient::new(spec);
            client.verbose = true;
            client.set_events(events);
            client
                .run_worker(&backend, &opts)
                .expect("worker execution")
        }
        None => {
            let mut campaign =
                Campaign::open(&args.campaign_dir, spec).expect("open campaign store");
            campaign.verbose = true;
            campaign.set_events(events);
            campaign.run_worker(&opts).expect("worker execution")
        }
    };
    println!(
        "worker `{}` done in {:.1?}: {} shard leases ({} reclaimed from dead owners), \
         {} jobs simulated, {} wait rounds",
        opts.owner,
        t0.elapsed(),
        report.shards_leased,
        report.reclaimed,
        report.simulated,
        report.wait_rounds
    );
    // Persist failures never reach this point: run_worker aborts the
    // drain with Err (and the expect above panics) rather than looping
    // on a failing disk.
}

fn run_compact_cmd(args: &Args, spec: &CampaignSpec) {
    assert!(
        !args.fresh,
        "--fresh is meaningless for compact (use `run --fresh`)"
    );
    // A sweep filter would shrink the keep-set and delete every other
    // sweep's cached records as "orphans" — almost certainly not what
    // `--exp` was meant to do.
    assert!(
        args.only.is_none(),
        "compact keeps fingerprints reachable from the WHOLE spec; \
         --exp would drop every other sweep's records (remove the flag)"
    );
    let campaign_dir = args.campaign_dir.join(&spec.name);

    // Everything that can refuse runs BEFORE any lease is taken, so a
    // failed compact never strands 8 fresh locks that block workers (and
    // compact retries) for a whole TTL.
    let mut keep = std::collections::HashSet::new();
    for sweep in &spec.sweeps {
        // A trace sweep whose files are missing/unreadable must refuse
        // here, naming the offending file: expanding to an empty keep-set
        // would otherwise compact every cached record away as orphans.
        let jobs = sweep
            .jobs(&spec.scale, spec.workload_seed)
            .unwrap_or_else(|e| {
                panic!(
                    "refusing to compact: sweep `{}` failed to expand — {e} \
                 (fix or restore the trace, or compact with the spec that matches the store)",
                    sweep.name
                )
            });
        for job in jobs {
            keep.insert(job.fingerprint().0);
        }
    }
    // Refuse a compaction that would empty a non-empty store: the spec
    // (or its scale — cycles are part of the fingerprint) almost
    // certainly does not match what the store was populated with.
    let manifest = serde_json::to_value(spec).expect("specs serialize");
    let store =
        Store::open(&args.campaign_dir, &spec.name, &manifest).expect("open campaign store");
    let reachable = store
        .fingerprints()
        .filter(|fp| keep.contains(&fp.0))
        .count();
    assert!(
        store.is_empty() || reachable > 0,
        "refusing to compact: the spec reaches none of the store's {} records — \
         wrong --spec file or --scale/--cycles for this store?",
        store.len()
    );
    drop(store);

    // Exclude every writer for the rewrite: appends only happen under a
    // shard lease, so holding all of them is sufficient. (A point-in-time
    // liveness scan would race a worker acquiring a lease and appending
    // between the scan and the rename.)
    let owner = format!("compact-{}", std::process::id());
    let mut held = Vec::new();
    for shard in 0..SHARDS {
        match lease::Lease::acquire(&campaign_dir, shard, &owner, args.ttl_ms)
            .expect("acquire compaction lease")
        {
            lease::Acquire::Acquired(lock) => held.push(lock),
            lease::Acquire::Held { holder, .. } => {
                for lock in held {
                    let _ = lock.release();
                }
                panic!(
                    "refusing to compact: shard {shard} is leased by `{}` \
                     (wait for workers to finish, or let the lease go stale)",
                    holder.owner
                );
            }
        }
    }
    // The rewrite runs under a heartbeat so a slow pass (large store,
    // NFS) cannot let the compaction leases go stale and be reclaimed by
    // a worker mid-rewrite. Leases are released before the Result is
    // unwrapped, so an I/O failure doesn't strand them either.
    let heartbeat = lease::Heartbeat::new();
    let lock_refs: Vec<&lease::Lease> = held.iter().collect();
    let renew_every = std::time::Duration::from_millis((args.ttl_ms / 4).max(1));
    let result = std::thread::scope(|s| {
        s.spawn(|| heartbeat.run(&lock_refs, renew_every));
        let _stop = heartbeat.stopper();
        let stats = Store::compact(&args.campaign_dir, &spec.name, &keep);
        // While every writer is excluded anyway, clear temp files and
        // eviction tombstones orphaned by killed processes.
        let swept = lease::sweep_orphans(&campaign_dir, args.ttl_ms).unwrap_or(0);
        (stats, swept)
    });
    for lock in held {
        lock.release().expect("release compaction lease");
    }
    let (stats, swept) = result;
    let stats = stats.expect("compact store");
    println!(
        "compacted campaign `{}`: kept {} records, dropped {} orphans + {} duplicates + \
         {} torn lines ({} -> {} bytes); swept {swept} orphaned lease temp files",
        spec.name,
        stats.kept,
        stats.dropped_orphans,
        stats.dropped_duplicates,
        stats.dropped_torn,
        stats.bytes_before,
        stats.bytes_after
    );
}

fn run_or_merge(args: &Args, spec: CampaignSpec, custom: bool) {
    let out = &args.out;
    std::fs::create_dir_all(out).expect("create output dir");
    let mut md = String::from("# DSARP reproduction — raw experiment output\n\n");
    md.push_str(&format!(
        "Scale: {} DRAM cycles/run, {} workloads/category, {} threads.\n\n",
        spec.scale.dram_cycles,
        spec.scale.per_category,
        spec.scale.resolved_threads()
    ));
    let t0 = Instant::now();

    // Figure 5 is analytic: no simulation, no campaign.
    if !custom && wanted(&args.only, "fig5") {
        let rows = fig05::run();
        report::write_csv(out, "fig05_trfc_trend", &rows).unwrap();
        md.push_str(&report::to_markdown("Figure 5: tRFCab trend (ns)", &rows));
        println!("[{:>7.1?}] fig5 done", t0.elapsed());
    }

    // Everything else reduces from the campaign.
    if args.fresh {
        assert!(
            args.cmd == Cmd::Run,
            "--fresh would wipe records other workers are producing; use it with `run`"
        );
        let store = args.campaign_dir.join(&spec.name);
        if store.exists() {
            std::fs::remove_dir_all(&store).expect("wipe campaign store");
        }
    }
    if spec.sweeps.is_empty() {
        finish(out, &md, t0);
        return;
    }
    let prefixes = required_sweeps(&args.only);
    let events = event_log(args);
    let result = match (args.cmd, &args.store_url) {
        (Cmd::Merge, Some(url)) => {
            // Remote coordinator: drain + snapshot + assemble through the
            // campaign server, touching no local store directory. The
            // output is byte-identical to a local merge over the same
            // records (assembly is deterministic in the record set).
            let opts = worker_options(args);
            let mut backend =
                RemoteStore::connect(url, &spec.name).expect("connect to campaign server");
            if events.is_recording() {
                let log = Arc::clone(&events);
                backend.set_retry_observer(Box::new(move |what, attempt, delay, error| {
                    log.emit(
                        false,
                        &Event::RetryAttempt {
                            what: what.to_string(),
                            attempt,
                            delay,
                            error: error.to_string(),
                        },
                    );
                }));
            }
            let mut client = CampaignClient::new(spec);
            client.verbose = true;
            client.set_events(events);
            let (result, worker) = client.merge(&backend, &opts).expect("campaign merge");
            print_merge_report(&t0, &opts, &worker);
            result
        }
        (cmd, _) => {
            let mut campaign =
                Campaign::open(&args.campaign_dir, spec).expect("open campaign store");
            campaign.verbose = true;
            campaign.telemetry = args.telemetry;
            campaign.per_cycle = args.per_cycle;
            campaign.set_events(events);
            if cmd == Cmd::Merge {
                let opts = worker_options(args);
                let (result, worker) = campaign.merge(&opts).expect("campaign merge");
                print_merge_report(&t0, &opts, &worker);
                result
            } else {
                campaign.run().expect("campaign execution")
            }
        }
    };
    println!(
        "[{:>7.1?}] campaign done: {} cells, {} cached, {} simulated",
        t0.elapsed(),
        result.stats.cells,
        result.stats.cache_hits,
        result.stats.simulated
    );
    export::write_report_json(out, &result).unwrap();

    if custom {
        // Custom specs reduce to one generic grid CSV/JSONL per sweep.
        for (name, grid) in &result.grids {
            let file = format!("grid_{}", name.replace(['/', ' '], "-"));
            export::write_grid(out, &file, grid).unwrap();
            md.push_str(&report::to_markdown(&format!("Sweep {name}"), grid.rows()));
        }
        println!("[{:>7.1?}] grid exports done", t0.elapsed());
        finish(out, &md, t0);
        return;
    }

    if prefixes.contains(&"main") {
        reduce_main_grid(args, &result, &mut md, &t0, out);
    }
    if wanted(&args.only, "table3") {
        let rows: Vec<table3::Table3Row> = table3::CORE_SWEEP
            .iter()
            .map(|&cores| table3::reduce(result.grid(&format!("table3/cores{cores}")), cores))
            .collect();
        report::write_csv(out, "table3_core_count", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 3: DSARP vs REFab by core count (32 Gb, intensive, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table3 done", t0.elapsed());
    }
    if wanted(&args.only, "table4") {
        let rows: Vec<table4::Table4Row> = table4::SWEEP
            .iter()
            .map(|&(faw, rrd)| {
                table4::reduce(result.grid(&format!("table4/faw{faw}-rrd{rrd}")), faw, rrd)
            })
            .collect();
        report::write_csv(out, "table4_tfaw", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 4: SARPpb over REFpb vs tFAW/tRRD (32 Gb, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table4 done", t0.elapsed());
    }
    if wanted(&args.only, "table5") {
        let rows: Vec<table5::Table5Row> = table5::SWEEP
            .iter()
            .map(|&n| table5::reduce(result.grid(&format!("table5/sub{n}")), n))
            .collect();
        report::write_csv(out, "table5_subarrays", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 5: SARPpb over REFpb vs subarrays/bank (32 Gb, %)",
            &rows,
        ));
        println!("[{:>7.1?}] table5 done", t0.elapsed());
    }
    if wanted(&args.only, "ablations") {
        let grids = ablations::AblationGrids {
            throttle: result.grid("ablations/throttle").clone(),
            unthrottled: result.grid("ablations/unthrottled").clone(),
            darp: result.grid("ablations/darp").clone(),
            watermarks: ablations::WATERMARK_SWEEP
                .iter()
                .map(|&(enter, exit)| {
                    (
                        enter,
                        exit,
                        result.grid(&format!("ablations/wm{enter}-{exit}")).clone(),
                    )
                })
                .collect(),
        };
        let rows = ablations::reduce(&grids);
        report::write_csv(out, "ablations", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Ablations (32 Gb, intensive, %)",
            &rows,
        ));
        println!("[{:>7.1?}] ablations done", t0.elapsed());
    }
    if wanted(&args.only, "overlap") {
        let rows = overlap::reduce(result.grid("overlap"), &overlap::OVERLAP_DENSITIES);
        report::write_csv(out, "overlap_extension", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Extension: footnote-5 overlapped REFpb (% over REFpb)",
            &rows,
        ));
        println!("[{:>7.1?}] overlap done", t0.elapsed());
    }
    if wanted(&args.only, "table6") {
        let rows = table6::reduce(result.grid("table6"), &Density::evaluated());
        report::write_csv(out, "table6_64ms", &rows).unwrap();
        md.push_str(&report::to_markdown(
            "Table 6: DSARP improvements at 64 ms retention (%)",
            &rows,
        ));
        println!("[{:>7.1?}] table6 done", t0.elapsed());
    }

    finish(out, &md, t0);
}

fn print_merge_report(t0: &Instant, opts: &WorkerOptions, worker: &dsarp_campaign::WorkerReport) {
    println!(
        "[{:>7.1?}] merge `{}`: {} shard leases ({} reclaimed), {} cells re-run \
         locally, {} wait rounds",
        t0.elapsed(),
        opts.owner,
        worker.shards_leased,
        worker.reclaimed,
        worker.simulated,
        worker.wait_rounds
    );
}

fn reduce_main_grid(
    args: &Args,
    result: &CampaignReport,
    md: &mut String,
    t0: &Instant,
    out: &Path,
) {
    let densities = Density::evaluated();
    let grid = result.grid("main");
    export::write_grid(out, "main_grid", grid).unwrap();

    if wanted(&args.only, "fig6") || wanted(&args.only, "fig7") {
        let (fig6, fig7) = fig06_07::reduce(grid, &densities);
        report::write_csv(out, "fig06_refab_loss", &fig6).unwrap();
        report::write_csv(out, "fig07_refab_refpb_loss", &fig7).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 6: WS loss of REFab vs no-refresh (%)",
            &fig6,
        ));
        md.push_str(&report::to_markdown(
            "Figure 7: WS loss of REFab/REFpb vs no-refresh (%)",
            &fig7,
        ));
    }

    if wanted(&args.only, "fig12") || wanted(&args.only, "table2") {
        let fig12 = fig12_table2::reduce_fig12(grid, &densities);
        let table2 = fig12_table2::reduce_table2(grid, &densities);
        report::write_csv(out, "fig12_sorted_ws", &fig12).unwrap();
        let series: Vec<(&str, Vec<f64>)> = [Mechanism::RefPb, Mechanism::Darp, Mechanism::Dsarp]
            .iter()
            .map(|m| {
                let mut pts: Vec<&fig12_table2::Fig12Point> = fig12
                    .iter()
                    .filter(|p| p.density == Density::G32 && p.mechanism == *m)
                    .collect();
                pts.sort_by_key(|p| p.sorted_index);
                (m.label(), pts.iter().map(|p| p.ws_over_refab).collect())
            })
            .collect();
        md.push_str(&chart::line_chart(
            "Figure 12 at 32 Gb: WS over REFab, workloads sorted by DARP gain",
            &series,
            12,
        ));
        report::write_csv(out, "table2_ws_improvements", &table2).unwrap();
        md.push_str(&report::to_markdown(
            "Table 2: max / gmean WS improvement over REFpb and REFab (%)",
            &table2,
        ));
    }

    if wanted(&args.only, "fig13") {
        let f13 = fig13::reduce(grid, &densities);
        report::write_csv(out, "fig13_all_mechanisms", &f13).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 13: gmean WS improvement over REFab (%)",
            &f13,
        ));
        let bars: Vec<(String, f64)> = f13
            .iter()
            .filter(|r| r.density == Density::G32)
            .map(|r| (r.mechanism.label().to_string(), r.gmean_over_refab_pct))
            .collect();
        md.push_str(&chart::bar_chart(
            "Figure 13 at 32 Gb (% over REFab)",
            &bars,
            40,
        ));
    }

    if wanted(&args.only, "fig14") {
        let f14 = fig14::reduce(grid, &densities);
        report::write_csv(out, "fig14_energy", &f14).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 14: energy per access (nJ)",
            &f14,
        ));
    }

    if wanted(&args.only, "fig15") {
        let f15 = fig15::reduce(grid, &densities);
        report::write_csv(out, "fig15_intensity", &f15).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 15: DSARP WS improvement by memory intensity (%)",
            &f15,
        ));
    }

    if wanted(&args.only, "fig16") {
        let f16 = fig16::reduce(grid, &densities);
        report::write_csv(out, "fig16_fgr_ar", &f16).unwrap();
        md.push_str(&report::to_markdown(
            "Figure 16: WS normalized to REFab",
            &f16,
        ));
    }
    println!("[{:>7.1?}] grid reductions done", t0.elapsed());
}

fn finish(out: &Path, md: &str, t0: Instant) {
    std::fs::write(out.join("EXPERIMENTS_RAW.md"), md).expect("write markdown report");
    println!(
        "[{:>7.1?}] all requested experiments written to {}",
        t0.elapsed(),
        out.display()
    );
}
