//! Campaign-as-a-service: the HTTP shard/lease server behind
//! `experiments serve`.
//!
//! The server owns one campaign store directory and exposes the whole
//! distributed-drain protocol over HTTP/1.1, so workers on hosts with no
//! shared filesystem participate through
//! [`dsarp_campaign::RemoteStore`] exactly as local workers do through
//! the directory:
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /campaign` | identity handshake: name, shard count, format |
//! | `GET /shards` | byte size of every shard |
//! | `GET /shards/{nn}?offset=K` | shard bytes from `K`, clamped to whole lines |
//! | `POST /shards/{nn}/append` | append JSON lines, deduplicating server-side |
//! | `POST /leases/{nn}` | acquire / renew / release a shard lease |
//! | `GET /cells/{fingerprint}` | one record; fingerprint doubles as ETag |
//! | `GET /export/grid_{sweep}.csv` | assembled grid CSV with content ETag |
//! | `GET /metrics` | server metrics, Prometheus text exposition |
//! | `GET /status` | campaign progress + lease table as JSON |
//!
//! Leases taken over HTTP are the same `shard-NN.lock` files local
//! workers use — acquire runs [`Lease::acquire`] with the caller's owner
//! id, renew/release run the stateless by-owner paths — so a SIGKILLed
//! remote worker's lease goes stale and is reclaimed by any surviving
//! worker, local or remote, with no extra machinery.
//!
//! Reads are incremental and tear-free: `GET /shards/{nn}` resumes from
//! the client's offset and [`Store::read_tail`] withholds bytes past the
//! last newline, so a reader polling during a concurrent append never
//! observes a torn JSON line. Records are content-addressed, which makes
//! `GET /cells/{fp}` trivially cacheable: the fingerprint IS the ETag,
//! and a matching `If-None-Match` short-circuits to `304 Not Modified`
//! without touching the store.
//!
//! Every request is also counted into a [`dsarp_obs::Registry`]:
//! `dsarp_http_requests_total{method,route,code}`,
//! `dsarp_http_request_duration_us{route}` and the request/response byte
//! counters, scraped at `GET /metrics`. Routes are normalized (the shard
//! number or fingerprint collapses to a `{..}` placeholder), so label
//! cardinality is bounded by the route table above, not by traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsarp_campaign::fingerprint::fingerprint_bytes;
use dsarp_campaign::lease::{self, Acquire, Lease};
use dsarp_campaign::remote::{AppendReply, CampaignInfo, LeaseReply, LeaseRequest, SizesReply};
use dsarp_campaign::store::{Record, ShardTail, FORMAT_VERSION, SHARDS};
use dsarp_campaign::{CampaignClient, CampaignSpec, Fingerprint, Store};
use dsarp_obs::{Counter, Family, Histogram, Registry};
use dsarp_sim::experiments::report;
use minihttp::{Request, Response, Server};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// In-memory view of one shard, grown incrementally from the shard file.
/// `offset` is how far the file has been decoded; records keep
/// first-per-fingerprint wins, matching [`Store`] load semantics.
#[derive(Debug, Default)]
struct ShardView {
    offset: u64,
    fps: HashSet<u128>,
    records: HashMap<u128, Record>,
}

/// Request-level server metrics, registered once and bumped per request.
#[derive(Debug)]
struct ServerMetrics {
    registry: Registry,
    requests: Arc<Family<Counter>>,
    latency: Arc<Family<Histogram>>,
    request_bytes: Arc<Counter>,
    response_bytes: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter_family(
            "dsarp_http_requests_total",
            "HTTP requests served, by method, normalized route and status class",
            &["method", "route", "code"],
        );
        let latency = registry.histogram_family(
            "dsarp_http_request_duration_us",
            "Request handling latency in microseconds, by normalized route",
            &["route"],
        );
        let request_bytes = registry.counter(
            "dsarp_http_request_bytes_total",
            "Request body bytes received",
        );
        let response_bytes = registry.counter(
            "dsarp_http_response_bytes_total",
            "Response body bytes sent",
        );
        ServerMetrics {
            registry,
            requests,
            latency,
            request_bytes,
            response_bytes,
        }
    }
}

/// The normalized route label for a request: path parameters (shard
/// number, fingerprint, export file) collapse to `{..}` so metric label
/// cardinality is bounded by the route table, not by traffic.
fn route_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["healthz"]) => "/healthz",
        ("GET", ["campaign"]) => "/campaign",
        ("GET", ["shards"]) => "/shards",
        ("GET", ["shards", _]) => "/shards/{..}",
        ("POST", ["shards", _, "append"]) => "/shards/{..}/append",
        ("POST", ["leases", _]) => "/leases/{..}",
        ("GET", ["cells", _]) => "/cells/{..}",
        ("GET", ["export", _]) => "/export/{..}",
        ("GET", ["metrics"]) => "/metrics",
        ("GET", ["status"]) => "/status",
        _ => "other",
    }
}

/// `NNN` → `"2xx"`-style status class, the `code` label of
/// `dsarp_http_requests_total`.
fn status_class(status: u16) -> &'static str {
    match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// One campaign store served over HTTP.
#[derive(Debug)]
pub struct CampaignServer {
    dir: PathBuf,
    spec: CampaignSpec,
    store: Store,
    views: Vec<Mutex<ShardView>>,
    metrics: ServerMetrics,
}

impl CampaignServer {
    /// Opens (or creates) the campaign's store under `root` and prepares
    /// to serve it. The manifest compatibility check is the same one
    /// local runs perform.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and manifest mismatches.
    pub fn new(root: &Path, spec: CampaignSpec) -> io::Result<Self> {
        let manifest = serde_json::to_value(&spec).expect("specs serialize");
        let store = Store::open(root, &spec.name, &manifest)?;
        Ok(CampaignServer {
            dir: store.dir().to_path_buf(),
            spec,
            store,
            views: (0..SHARDS)
                .map(|_| Mutex::new(ShardView::default()))
                .collect(),
            metrics: ServerMetrics::new(),
        })
    }

    /// The campaign this server hosts.
    pub fn campaign_name(&self) -> &str {
        &self.spec.name
    }

    /// The campaign store directory being served.
    pub fn campaign_dir(&self) -> &Path {
        &self.dir
    }

    /// Serves requests on `server` until its handle is shut down.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop errors.
    pub fn serve(self, server: Server) -> io::Result<()> {
        let this = Arc::new(self);
        server.serve(move |req| this.handle(req))
    }

    /// Routes one request and records it into the server metrics. Public
    /// so tests can drive the server without sockets.
    pub fn handle(&self, req: &Request) -> Response {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        let route = route_label(&req.method, &segments);
        // Resolve the series once per request, then drop the handles: the
        // per-request path is not hot enough to justify caching them.
        let start = Instant::now();
        let resp = self.route(req, &segments);
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics
            .requests
            .with_labels(&[&req.method, route, status_class(resp.status)])
            .inc();
        self.metrics.latency.with_labels(&[route]).observe(us);
        self.metrics.request_bytes.add(req.body.len() as u64);
        self.metrics.response_bytes.add(resp.body.len() as u64);
        resp
    }

    /// The uninstrumented route table behind [`CampaignServer::handle`].
    fn route(&self, req: &Request, segments: &[&str]) -> Response {
        let out = match (req.method.as_str(), segments) {
            ("GET", ["healthz"]) => Ok(Response::text(200, "ok")),
            ("GET", ["campaign"]) => Ok(self.campaign_info()),
            ("GET", ["shards"]) => Ok(self.shard_sizes()),
            ("GET", ["shards", nn]) => self.shard_tail(nn, req),
            ("POST", ["shards", nn, "append"]) => self.shard_append(nn, req),
            ("POST", ["leases", nn]) => self.lease_op(nn, req),
            ("GET", ["cells", fp]) => self.cell(fp, req),
            ("GET", ["export", file]) => self.export(file, req),
            ("GET", ["metrics"]) => Ok(self.metrics_text()),
            ("GET", ["status"]) => self.status_json(),
            _ => Ok(Response::text(
                404,
                format!("no route for {} {}", req.method, req.path),
            )),
        };
        out.unwrap_or_else(|e| {
            let status = match e.kind() {
                io::ErrorKind::InvalidData | io::ErrorKind::InvalidInput => 400,
                // An undrained campaign is a conflict with the request,
                // not an absent resource: the URL is right, the store
                // isn't ready for it yet.
                io::ErrorKind::NotFound => 409,
                _ => 500,
            };
            Response::text(status, e.to_string())
        })
    }

    /// `GET /metrics`: the registry in Prometheus text exposition format.
    /// The scrape itself is counted, but into the NEXT scrape's view (a
    /// response cannot include its own accounting).
    fn metrics_text(&self) -> Response {
        Response::with_body(
            200,
            "text/plain; version=0.0.4",
            self.metrics.registry.render_prometheus(),
        )
    }

    /// `GET /status`: campaign identity, per-shard record counts/bytes and
    /// the lease table as one JSON object — the remote twin of the
    /// `experiments status` subcommand.
    fn status_json(&self) -> io::Result<Response> {
        fn num(n: u64) -> serde_json::Value {
            serde_json::Value::Number(serde_json::Number::from_u64(n))
        }
        let now = lease::now_ms();
        let leases = lease::list(&self.dir, SHARDS);
        let mut shards = Vec::new();
        let mut total_records = 0u64;
        for shard in 0..SHARDS {
            let records = self.refresh_view(shard)?.records.len() as u64;
            total_records += records;
            let mut m = serde_json::Map::new();
            m.insert("shard".into(), num(shard as u64));
            m.insert("records".into(), num(records));
            m.insert("bytes".into(), num(self.store.shard_size(shard)));
            let lease_value = match leases.iter().find(|(s, _, _)| *s == shard) {
                Some((_, info, live)) => {
                    let mut l = serde_json::Map::new();
                    l.insert(
                        "owner".into(),
                        serde_json::Value::String(info.owner.clone()),
                    );
                    l.insert("pid".into(), num(u64::from(info.pid)));
                    l.insert("live".into(), serde_json::Value::Bool(*live));
                    l.insert(
                        "heartbeat_ms_ago".into(),
                        num(now.saturating_sub(info.heartbeat_ms)),
                    );
                    l.insert("ttl_ms".into(), num(info.ttl_ms));
                    serde_json::Value::Object(l)
                }
                None => serde_json::Value::Null,
            };
            m.insert("lease".into(), lease_value);
            shards.push(serde_json::Value::Object(m));
        }
        let mut doc = serde_json::Map::new();
        doc.insert(
            "campaign".into(),
            serde_json::Value::String(self.spec.name.clone()),
        );
        doc.insert("format_version".into(), num(u64::from(FORMAT_VERSION)));
        doc.insert("sweeps".into(), num(self.spec.sweeps.len() as u64));
        doc.insert("records".into(), num(total_records));
        doc.insert("shards".into(), serde_json::Value::Array(shards));
        Ok(Response::json(
            200,
            serde_json::Value::Object(doc).to_string(),
        ))
    }

    fn campaign_info(&self) -> Response {
        let info = CampaignInfo {
            name: self.spec.name.clone(),
            shards: SHARDS,
            format_version: FORMAT_VERSION,
        };
        Response::json(200, serde_json::to_string(&info).expect("info serializes"))
    }

    fn shard_sizes(&self) -> Response {
        let reply = SizesReply {
            sizes: (0..SHARDS).map(|s| self.store.shard_size(s)).collect(),
        };
        Response::json(200, serde_json::to_string(&reply).expect("sizes serialize"))
    }

    fn parse_shard(nn: &str) -> io::Result<usize> {
        match nn.parse::<usize>() {
            Ok(shard) if shard < SHARDS => Ok(shard),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad shard `{nn}` (00..{:02})", SHARDS - 1),
            )),
        }
    }

    fn shard_tail(&self, nn: &str, req: &Request) -> io::Result<Response> {
        let shard = Self::parse_shard(nn)?;
        let offset: u64 = match req.query_param("offset") {
            Some(text) => text.parse().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("bad offset `{text}`"))
            })?,
            None => 0,
        };
        let tail: ShardTail = Store::read_tail(&self.dir, shard, offset)?;
        Ok(Response::with_body(200, "application/x-ndjson", tail.bytes)
            .header("x-next-offset", &tail.next_offset.to_string())
            .header("x-shard-reset", if tail.reset { "1" } else { "0" }))
    }

    /// Brings one shard's in-memory view up to date with its file. Also
    /// how appends see records other processes wrote directly to the
    /// directory (mixed local/remote topologies).
    fn refresh_view(&self, shard: usize) -> io::Result<std::sync::MutexGuard<'_, ShardView>> {
        let mut view = self.views[shard].lock().expect("shard view lock poisoned");
        let tail = Store::read_tail(&self.dir, shard, view.offset)?;
        if tail.reset {
            *view = ShardView::default();
        }
        for line in String::from_utf8_lossy(&tail.bytes).lines() {
            if let Some((fp, record)) = Store::decode_line(line) {
                if view.fps.insert(fp.0) {
                    view.records.insert(fp.0, record);
                }
            }
        }
        view.offset = tail.next_offset;
        Ok(view)
    }

    fn shard_append(&self, nn: &str, req: &Request) -> io::Result<Response> {
        let shard = Self::parse_shard(nn)?;
        let body = String::from_utf8_lossy(&req.body);
        // Decode every line before appending any: a half-applied body
        // would make the client's retry semantics murky.
        let mut incoming = Vec::new();
        for line in body.lines().filter(|l| !l.trim().is_empty()) {
            let (fp, record) = Store::decode_line(line).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "undecodable record line")
            })?;
            if Store::shard_of(fp) != shard {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "record {fp} routes to shard {}, not {shard}",
                        Store::shard_of(fp)
                    ),
                ));
            }
            incoming.push((fp, record));
        }
        let mut view = self.refresh_view(shard)?;
        let (mut appended, mut deduped) = (0, 0);
        for (fp, record) in incoming {
            // First record wins: a fingerprint already in the shard keeps
            // its original line, and the duplicate is dropped here rather
            // than appended and skipped at every future load.
            if view.fps.contains(&fp.0) {
                deduped += 1;
                continue;
            }
            self.store.append(fp, &record)?;
            view.fps.insert(fp.0);
            view.records.insert(fp.0, record);
            appended += 1;
        }
        view.offset = self.store.shard_size(shard);
        let reply = AppendReply { appended, deduped };
        Ok(Response::json(
            200,
            serde_json::to_string(&reply).expect("reply serializes"),
        ))
    }

    fn lease_op(&self, nn: &str, req: &Request) -> io::Result<Response> {
        let shard = Self::parse_shard(nn)?;
        let body: LeaseRequest = serde_json::from_str(&String::from_utf8_lossy(&req.body))
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad lease request: {e}"),
                )
            })?;
        if body.owner.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "lease request without owner",
            ));
        }
        match body.op.as_str() {
            "acquire" => {
                let reply = match Lease::acquire(&self.dir, shard, &body.owner, body.ttl_ms)? {
                    // Drop (not release) the Lease value: the lock file on
                    // disk IS the lease. The remote owner renews it through
                    // the stateless by-owner path below, and if it dies,
                    // the lock goes stale and is reclaimed like any other.
                    Acquire::Acquired(lock) => LeaseReply {
                        acquired: true,
                        reclaimed: lock.reclaimed(),
                        evicted_stale: false,
                        holder: None,
                    },
                    Acquire::Held {
                        holder,
                        evicted_stale,
                    } => LeaseReply {
                        acquired: false,
                        reclaimed: false,
                        evicted_stale,
                        holder: Some(holder),
                    },
                };
                Ok(Response::json(
                    200,
                    serde_json::to_string(&reply).expect("reply serializes"),
                ))
            }
            "renew" => match lease::renew_as(&self.dir, shard, &body.owner, body.ttl_ms) {
                Ok(()) => Ok(Response::text(200, "renewed")),
                // Ownership loss is a conflict the client must not retry,
                // not a server fault.
                Err(e) if e.kind() == io::ErrorKind::Other => {
                    Ok(Response::text(409, e.to_string()))
                }
                Err(e) => Err(e),
            },
            "release" => {
                lease::release_as(&self.dir, shard, &body.owner)?;
                Ok(Response::text(200, "released"))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown lease op `{other}` (acquire|renew|release)"),
            )),
        }
    }

    fn cell(&self, fp_text: &str, req: &Request) -> io::Result<Response> {
        let fp = Fingerprint::parse(fp_text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad fingerprint `{fp_text}`"),
            )
        })?;
        let etag = format!("\"{fp}\"");
        // Records are content-addressed and immutable: a client holding
        // this fingerprint's ETag cannot hold a stale body, so the 304
        // path never touches the store.
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Ok(Response::new(304).header("etag", &etag));
        }
        let view = self.refresh_view(Store::shard_of(fp))?;
        match view.records.get(&fp.0) {
            Some(record) => Ok(Response::json(
                200,
                serde_json::to_string(record).expect("records serialize"),
            )
            .header("etag", &etag)),
            None => Ok(Response::text(404, format!("no record {fp}"))),
        }
    }

    /// `GET /export/grid_{sweep}.csv`, where `{sweep}` is the sweep name
    /// with `/` and spaces replaced by `-` — the same file names
    /// `experiments run` writes under `--out`. The ETag is a content hash
    /// of the CSV, so pollers pay for assembly only when records changed
    /// the output.
    fn export(&self, file: &str, req: &Request) -> io::Result<Response> {
        let Some(sanitized) = file
            .strip_prefix("grid_")
            .and_then(|f| f.strip_suffix(".csv"))
        else {
            return Ok(Response::text(
                404,
                format!("unknown export `{file}` (want grid_<sweep>.csv)"),
            ));
        };
        let Some(sweep) = self
            .spec
            .sweeps
            .iter()
            .map(|s| s.name.as_str())
            .find(|name| name.replace(['/', ' '], "-") == sanitized)
        else {
            let known: Vec<String> = self
                .spec
                .sweeps
                .iter()
                .map(|s| format!("grid_{}.csv", s.name.replace(['/', ' '], "-")))
                .collect();
            return Ok(Response::text(
                404,
                format!("no sweep matches `{file}`; exports: {}", known.join(", ")),
            ));
        };
        let mut records = HashMap::new();
        for shard in 0..SHARDS {
            let view = self.refresh_view(shard)?;
            records.extend(view.records.iter().map(|(k, v)| (*k, v.clone())));
        }
        let grids = CampaignClient::new(self.spec.clone()).assemble(&records)?;
        let grid = grids.get(sweep).expect("assembled spec sweep");
        let csv = report::to_csv(grid.rows());
        let etag = format!("\"{}\"", fingerprint_bytes(csv.as_bytes()));
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Ok(Response::new(304).header("etag", &etag));
        }
        Ok(Response::with_body(200, "text/csv", csv.into_bytes()).header("etag", &etag))
    }
}
