//! Trace-driven campaign acceptance tests.
//!
//! * Property: `trace-capture` → `TraceDir` campaign equals the
//!   synthetic-workload computation cell-for-cell. Plain text covers
//!   loads-only streams (stores with bubbles and dependent loads have no
//!   lossless rendering there); the v1 lossless dialects (`text-ext`,
//!   binary `.dtrace`) extend the same guarantee to the full catalogue —
//!   stores, store bubbles and load dependence included.
//! * A torn/truncated trace is rejected with an error naming the file,
//!   not replayed as a silently wrong simulation — in every encoding.
//! * Cold → warm replays simulate nothing and reduce byte-identically;
//!   corrupting one byte of one trace (text or binary record) recomputes
//!   exactly that trace's cells.
//! * The CLI path: a `--spec` JSON with a `TraceDir` sweep runs cold,
//!   resumes warm with zero re-simulation, and two `worker` processes
//!   plus `merge` produce output byte-identical to the single-process
//!   run over the same trace directory; `trace-convert` round-trips
//!   byte-stably and converted suites reduce to identical grids.

use dsarp_campaign::traces::{capture_workloads, resolve_trace_dir};
use dsarp_campaign::{Campaign, CampaignReport, CampaignSpec, SweepSpec, WorkloadSet};
use dsarp_core::Mechanism;
use dsarp_cpu::TraceDialect;
use dsarp_dram::Density;
use dsarp_sim::experiments::harness::{Grid, Scale};
use dsarp_sim::experiments::report;
use dsarp_sim::SimConfig;
use dsarp_workloads::{BenchmarkSpec, IntensityCategory, MemClass, Workload};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

/// The paper `SimConfig` seed — captures must generate the exact streams
/// the synthetic sweeps feed their cores.
const SIM_SEED: u64 = 0xD5A2_2014;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dsarp-trace-int-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_scale() -> Scale {
    Scale {
        dram_cycles: 1_500,
        alone_cycles: 800,
        per_category: 1,
        threads: 2,
        warmup_ops: 200,
    }
}

/// Enough captured entries that neither warmup nor the timed run can wrap
/// the file: a core retires at most 18 instructions per DRAM cycle and
/// every entry is at least one instruction.
fn ops_needed(scale: &Scale) -> usize {
    (scale.warmup_ops + 18 * scale.dram_cycles.max(scale.alone_cycles)) as usize + 256
}

/// Renders every grid of a report to one comparable CSV blob.
fn render(report: &CampaignReport) -> String {
    let mut out = String::new();
    for (name, grid) in &report.grids {
        out.push_str(name);
        out.push('\n');
        out.push_str(&report::to_csv(grid.rows()));
    }
    out
}

fn trace_sweep_spec(name: &str, dir: &Path, cores: usize, scale: Scale) -> CampaignSpec {
    CampaignSpec::new(name, scale).with_sweep(SweepSpec::new(
        "traces",
        WorkloadSet::trace_dir(dir.to_string_lossy().into_owned(), cores),
        &[Mechanism::RefAb, Mechanism::Dsarp],
        &[Density::G8],
    ))
}

/// As [`trace_sweep_spec`] with an explicit glob (binary suites need
/// `*.dtrace`).
fn trace_sweep_spec_glob(
    name: &str,
    dir: &Path,
    glob: &str,
    cores: usize,
    scale: Scale,
) -> CampaignSpec {
    CampaignSpec::new(name, scale).with_sweep(SweepSpec::new(
        "traces",
        WorkloadSet::TraceDir {
            path: dir.to_string_lossy().into_owned(),
            glob: glob.into(),
            cores,
        },
        &[Mechanism::RefAb, Mechanism::Dsarp],
        &[Density::G8],
    ))
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(3))]

    /// `trace-capture` → `TraceDir` campaign == synthetic computation,
    /// cell-for-cell, across generator parameters. Loads-only archetypes
    /// are exactly what the Ramulator format round-trips losslessly; the
    /// capture must also be long enough that the cyclic replay never
    /// wraps within warmup + run.
    #[test]
    fn captured_trace_campaign_equals_synthetic_computation(
        mem_interval in 2u32..10,
        stream_sel in 0usize..3,
        cycle_step in 0u64..3,
    ) {
        let mut scale = tiny_scale();
        scale.dram_cycles = 1_000 + 250 * cycle_step;
        let spec: &'static BenchmarkSpec = Box::leak(Box::new(BenchmarkSpec {
            name: Box::leak(format!("conf-{mem_interval}-{stream_sel}").into_boxed_str()),
            mem_interval,
            store_frac: 0.0, // loads only: losslessly expressible
            stream_frac: [0.0, 0.4, 0.8][stream_sel],
            num_streams: 2,
            stream_stride: 64,
            working_set: 8 << 20,
            hot_frac: 0.3,
            hot_bytes: 128 << 10,
            dep_frac: 0.0, // the text format carries no dependence bit
            class: MemClass::Intensive,
        }));
        let workload = Workload {
            name: "wl".into(),
            category: IntensityCategory::P100,
            benchmarks: vec![spec],
        };

        let dir = tmpdir(&format!("prop-{mem_interval}-{stream_sel}-{cycle_step}"));
        let traces_dir = dir.join("traces");
        capture_workloads(
            &traces_dir,
            std::slice::from_ref(&workload),
            SIM_SEED,
            ops_needed(&scale),
            TraceDialect::Text,
        )
        .unwrap();

        let campaign_spec = trace_sweep_spec("prop", &traces_dir, 1, scale);
        let mut campaign = Campaign::open(&dir.join("store"), campaign_spec).unwrap();
        let report = campaign.run().unwrap();
        let grid = report.grid("traces");
        prop_assert_eq!(report.stats.simulated, report.stats.unique_jobs);

        let direct = Grid::compute_with(
            &[workload],
            &[Mechanism::RefAb, Mechanism::Dsarp],
            &[Density::G8],
            &scale,
            |m, d| SimConfig::paper(*m, *d).with_cores(1),
        );
        prop_assert_eq!(grid.rows().len(), direct.rows().len());
        for row in direct.rows() {
            // Same cells under different workload names: the captured file
            // is named `wl-c00`, the synthetic mix `wl`.
            let got = grid
                .get("wl-c00", row.mechanism, row.density)
                .unwrap_or_else(|| panic!("missing traced cell for {}", row.mechanism.label()));
            prop_assert_eq!(got.ws, row.ws, "{} ws", row.mechanism.label());
            prop_assert_eq!(got.hs, row.hs, "{} hs", row.mechanism.label());
            prop_assert_eq!(got.max_slowdown, row.max_slowdown);
            prop_assert_eq!(got.energy_nj, row.energy_nj);
            prop_assert_eq!(got.total_ipc, row.total_ipc);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(3))]

    /// Full-catalogue exactness: archetypes with stores (and their
    /// bubbles) and dependent loads — inexpressible in plain text —
    /// replay cell-for-cell equal to the synthetic computation via both
    /// lossless dialects, and the two dialects reduce to identical grids
    /// while keying the cache on different content hashes.
    #[test]
    fn full_catalogue_capture_replays_exactly_in_lossless_dialects(
        mem_interval in 2u32..8,
        store_sel in 0usize..3,
        dep_sel in 0usize..3,
    ) {
        let scale = tiny_scale();
        let spec: &'static BenchmarkSpec = Box::leak(Box::new(BenchmarkSpec {
            name: Box::leak(format!("full-{mem_interval}-{store_sel}-{dep_sel}").into_boxed_str()),
            mem_interval,
            store_frac: [0.15, 0.3, 0.5][store_sel],
            stream_frac: 0.4,
            num_streams: 2,
            stream_stride: 64,
            working_set: 8 << 20,
            hot_frac: 0.3,
            hot_bytes: 128 << 10,
            dep_frac: [0.1, 0.25, 0.4][dep_sel],
            class: MemClass::Intensive,
        }));
        let workload = Workload {
            name: "wl".into(),
            category: IntensityCategory::P100,
            benchmarks: vec![spec],
        };
        let dir = tmpdir(&format!("full-{mem_interval}-{store_sel}-{dep_sel}"));
        let direct = Grid::compute_with(
            std::slice::from_ref(&workload),
            &[Mechanism::RefAb, Mechanism::Dsarp],
            &[Density::G8],
            &scale,
            |m, d| SimConfig::paper(*m, *d).with_cores(1),
        );

        let mut renders = Vec::new();
        for (dialect, glob) in [(TraceDialect::TextExt, "*.trace"), (TraceDialect::Bin, "*.dtrace")] {
            let traces_dir = dir.join(dialect.label());
            capture_workloads(
                &traces_dir,
                std::slice::from_ref(&workload),
                SIM_SEED,
                ops_needed(&scale),
                dialect,
            )
            .unwrap();
            let bundles = resolve_trace_dir(&traces_dir, glob, 1).unwrap();
            prop_assert_eq!(bundles[0].traces[0].dialect, dialect);
            prop_assert_eq!(
                bundles[0].traces[0].entries,
                ops_needed(&scale),
                "lossless dialects store one entry per op, no attachment padding"
            );
            let campaign_spec =
                trace_sweep_spec_glob(&format!("full-{}", dialect.label()), &traces_dir, glob, 1, scale);
            let report = Campaign::open(&dir.join(format!("store-{dialect}")), campaign_spec)
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(report.stats.simulated, report.stats.unique_jobs);
            let grid = report.grid("traces");
            for row in direct.rows() {
                let got = grid
                    .get("wl-c00", row.mechanism, row.density)
                    .unwrap_or_else(|| panic!("missing {dialect} cell for {}", row.mechanism.label()));
                prop_assert_eq!(got.ws, row.ws, "{} {} ws", dialect, row.mechanism.label());
                prop_assert_eq!(got.hs, row.hs, "{} {} hs", dialect, row.mechanism.label());
                prop_assert_eq!(got.max_slowdown, row.max_slowdown);
                prop_assert_eq!(got.energy_nj, row.energy_nj);
                prop_assert_eq!(got.total_ipc, row.total_ipc);
            }
            renders.push(render(&report));
        }
        prop_assert_eq!(&renders[0], &renders[1], "text-ext and bin grids must be identical");

        // Identical op streams, different encodings: the cache keys on the
        // file bytes, so the dialects never alias each other's cells.
        let ext_hash = resolve_trace_dir(&dir.join("text-ext"), "*.trace", 1).unwrap()[0].traces[0]
            .content_hash;
        let bin_hash = resolve_trace_dir(&dir.join("bin"), "*.dtrace", 1).unwrap()[0].traces[0]
            .content_hash;
        prop_assert_ne!(ext_hash, bin_hash);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn truncated_trace_is_rejected_with_an_error_naming_the_file() {
    let dir = tmpdir("torn");
    let traces_dir = dir.join("traces");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..2].to_vec();
    capture_workloads(&traces_dir, &wls, SIM_SEED, 2_000, TraceDialect::Text).unwrap();

    // Tear the second file mid-line: strip the trailing newline plus a few
    // bytes, leaving a shorter-but-parseable final address — exactly the
    // corruption that would silently simulate wrong addresses.
    let victim = traces_dir.join(format!("{}-c00.trace", wls[1].name));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();

    let spec = trace_sweep_spec("torn", &traces_dir, 1, tiny_scale());
    let err = Campaign::open(&dir.join("store"), spec)
        .unwrap()
        .run()
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}-c00.trace", wls[1].name)) && msg.contains("truncated"),
        "error must name the torn file: {msg}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupting_one_trace_recomputes_only_that_traces_cells() {
    let dir = tmpdir("corrupt");
    let traces_dir = dir.join("traces");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..2].to_vec();
    capture_workloads(&traces_dir, &wls, SIM_SEED, 2_000, TraceDialect::Text).unwrap();
    let store = dir.join("store");
    let spec = || trace_sweep_spec("corrupt", &traces_dir, 1, tiny_scale());

    // Cold: 2 alone + 2 workloads x 2 mechanisms grids = 6 unique jobs.
    let cold = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(cold.stats.unique_jobs, 6);
    assert_eq!(cold.stats.simulated, 6);

    // Warm: zero simulation, byte-identical reduce.
    let warm = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(warm.stats.simulated, 0, "warm replay must be all hits");
    assert_eq!(render(&cold), render(&warm));

    // Appending one line to the second trace changes its content hash:
    // exactly its alone job and its 2 grid cells recompute.
    let victim = traces_dir.join(format!("{}-c00.trace", wls[1].name));
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes.extend_from_slice(b"7 0x1c0\n");
    std::fs::write(&victim, bytes).unwrap();

    let touched = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(touched.stats.unique_jobs, 6);
    assert_eq!(
        touched.stats.simulated, 3,
        "1 alone + 2 grid cells of the edited trace"
    );
    assert_eq!(touched.stats.cache_hits, 3);

    // The untouched trace's rows are bit-identical across runs.
    let untouched = format!("{}-c00", wls[0].name);
    for m in [Mechanism::RefAb, Mechanism::Dsarp] {
        assert_eq!(
            warm.grid("traces").get(&untouched, m, Density::G8),
            touched.grid("traces").get(&untouched, m, Density::G8),
            "untouched trace cells must not change"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn renaming_traces_keeps_the_cache_warm() {
    let dir = tmpdir("rename");
    let traces_dir = dir.join("traces");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..1].to_vec();
    capture_workloads(&traces_dir, &wls, SIM_SEED, 2_000, TraceDialect::Text).unwrap();
    let store = dir.join("store");
    let spec = || trace_sweep_spec("rename", &traces_dir, 1, tiny_scale());

    let cold = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert!(cold.stats.simulated > 0);

    let old = traces_dir.join(format!("{}-c00.trace", wls[0].name));
    std::fs::rename(&old, traces_dir.join("renamed.trace")).unwrap();
    let warm = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(
        warm.stats.simulated, 0,
        "fingerprints key on content, not path"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn flipping_one_binary_record_byte_recomputes_only_that_traces_cells() {
    let dir = tmpdir("bin-corrupt");
    let traces_dir = dir.join("traces");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..2].to_vec();
    capture_workloads(&traces_dir, &wls, SIM_SEED, 2_000, TraceDialect::Bin).unwrap();
    let store = dir.join("store");
    let spec = || trace_sweep_spec_glob("bin-corrupt", &traces_dir, "*.dtrace", 1, tiny_scale());

    // Cold: 2 alone + 2 workloads x 2 mechanisms grids = 6 unique jobs.
    let cold = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!((cold.stats.unique_jobs, cold.stats.simulated), (6, 6));
    let warm = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(warm.stats.simulated, 0, "warm replay must be all hits");
    assert_eq!(render(&cold), render(&warm));

    // Flip one byte inside a mid-file record: same length, same record
    // count, different content — exactly that trace's 3 cells recompute.
    let victim = traces_dir.join(format!("{}-c00.dtrace", wls[1].name));
    let mut bytes = std::fs::read(&victim).unwrap();
    let flip_at = dsarp_cpu::trace_v1::BIN_HEADER_LEN + 40 * dsarp_cpu::trace_v1::BIN_RECORD_LEN;
    bytes[flip_at] ^= 0x04; // an address bit, always a valid record
    std::fs::write(&victim, &bytes).unwrap();
    let touched = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(touched.stats.unique_jobs, 6);
    assert_eq!(
        touched.stats.simulated, 3,
        "1 alone + 2 grid cells of the flipped trace"
    );
    assert_eq!(touched.stats.cache_hits, 3);
    let untouched = format!("{}-c00", wls[0].name);
    for m in [Mechanism::RefAb, Mechanism::Dsarp] {
        assert_eq!(
            warm.grid("traces").get(&untouched, m, Density::G8),
            touched.grid("traces").get(&untouched, m, Density::G8),
            "untouched trace cells must not change"
        );
    }

    // A torn binary tail (mid-record cut) is rejected naming the file —
    // the mirror of the text `Truncated` contract.
    std::fs::write(&victim, &bytes[..bytes.len() - 5]).unwrap();
    let err = Campaign::open(&store, spec()).unwrap().run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}-c00.dtrace", wls[1].name)) && msg.contains("truncated"),
        "torn tail must be rejected naming the file: {msg}"
    );

    // A header flip in the record count desynchronizes the declared
    // length from the file: rejected naming the file, never resized.
    let mut garbled = bytes.clone();
    garbled[8] ^= 0x01; // count field low byte
    std::fs::write(&victim, &garbled).unwrap();
    let err = Campaign::open(&store, spec()).unwrap().run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}-c00.dtrace", wls[1].name))
            && (msg.contains("truncated") || msg.contains("malformed binary")),
        "a count flip must be rejected naming the file: {msg}"
    );

    // A magic flip stops the file from detecting as binary at all; it is
    // still rejected with an error naming the file (as non-trace text).
    let mut demagicked = bytes.clone();
    demagicked[2] ^= 0xff;
    std::fs::write(&victim, &demagicked).unwrap();
    let err = Campaign::open(&store, spec()).unwrap().run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}-c00.dtrace", wls[1].name)),
        "bad magic must be rejected naming the file: {msg}"
    );

    // Restoring the flipped-record bytes makes the store warm again.
    std::fs::write(&victim, &bytes).unwrap();
    let restored = Campaign::open(&store, spec()).unwrap().run().unwrap();
    assert_eq!(restored.stats.simulated, 0, "records survive the refusals");
    let _ = std::fs::remove_dir_all(dir);
}

/// `trace-convert` CLI: text → bin suites reduce to identical grids, and
/// ext ↔ bin conversions are byte-stable round trips.
#[test]
fn cli_trace_convert_is_byte_stable_and_preserves_grids() {
    let dir = tmpdir("cli-convert");
    let text_dir = dir.join("text");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..2].to_vec();
    capture_workloads(&text_dir, &wls, SIM_SEED, 2_000, TraceDialect::Text).unwrap();

    // Convert every text capture to binary (and onward to text-ext and
    // back) through the CLI.
    let bin_dir = dir.join("bin");
    std::fs::create_dir_all(&bin_dir).unwrap();
    let convert = |from: &Path, to: &Path| {
        let mut cmd = Command::new(BIN);
        cmd.args([
            "trace-convert",
            "--from",
            from.to_str().unwrap(),
            "--to",
            to.to_str().unwrap(),
        ]);
        run_success(cmd, "trace-convert")
    };
    for wl in &wls {
        let from = text_dir.join(format!("{}-c00.trace", wl.name));
        let to = bin_dir.join(format!("{}-c00.dtrace", wl.name));
        let out = convert(&from, &to);
        assert!(out.contains("-> ") && out.contains("bin"), "{out}");

        // bin -> text-ext -> bin round-trips byte-stably.
        let ext = dir.join("roundtrip.trace");
        let bin2 = dir.join("roundtrip.dtrace");
        convert(&to, &ext);
        convert(&ext, &bin2);
        assert_eq!(
            std::fs::read(&to).unwrap(),
            std::fs::read(&bin2).unwrap(),
            "ext <-> bin must round-trip byte-identically"
        );
    }

    // The converted binary suite reduces to grids identical to the text
    // suite's (same op streams, different cache keys).
    let text_report = Campaign::open(
        &dir.join("store-text"),
        trace_sweep_spec("cli-convert-text", &text_dir, 1, tiny_scale()),
    )
    .unwrap()
    .run()
    .unwrap();
    let bin_report = Campaign::open(
        &dir.join("store-bin"),
        trace_sweep_spec_glob("cli-convert-bin", &bin_dir, "*.dtrace", 1, tiny_scale()),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(bin_report.stats.simulated, bin_report.stats.unique_jobs);
    assert_eq!(
        render(&text_report),
        render(&bin_report),
        "converted suite must reduce to identical grids"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn compact_refuses_and_names_a_missing_trace() {
    let dir = tmpdir("compact-missing");
    let traces_dir = dir.join("traces");
    let wls = dsarp_workloads::mixes::intensive_mixes(1, 1)[..1].to_vec();
    capture_workloads(&traces_dir, &wls, SIM_SEED, 2_000, TraceDialect::Text).unwrap();
    let store = dir.join("store");
    let spec = trace_sweep_spec("compact-missing", &traces_dir, 1, tiny_scale());
    Campaign::open(&store, spec.clone()).unwrap().run().unwrap();
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    // With the trace torn the spec cannot enumerate its jobs; compact must
    // refuse — naming the file — rather than GC every record as orphaned.
    let victim = traces_dir.join(format!("{}-c00.trace", wls[0].name));
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();
    let out = Command::new(BIN)
        .args([
            "compact",
            "--spec",
            spec_path.to_str().unwrap(),
            "--campaign",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "compact must refuse");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("refusing to compact") && stderr.contains("-c00.trace"),
        "compact must name the missing trace:\n{stderr}"
    );
    // Nothing was deleted: restoring the trace makes the store warm again.
    std::fs::write(&victim, bytes).unwrap();
    let warm = Campaign::open(&store, spec).unwrap().run().unwrap();
    assert_eq!(warm.stats.simulated, 0, "records must survive the refusal");
    let _ = std::fs::remove_dir_all(dir);
}

/// Waits for a subprocess, asserting success; returns stdout.
fn run_success(mut cmd: Command, what: &str) -> String {
    let out = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{what} failed ({}):\n--- stdout\n{}\n--- stderr\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The ISSUE acceptance path, end to end through the CLI.
#[test]
fn cli_trace_dir_spec_runs_cold_resumes_warm_and_workers_merge_identically() {
    let dir = tmpdir("cli-accept");
    let traces_dir = dir.join("traces");

    // 1. Self-generate a suite: 2 mixes x 2 cores = 4 trace files.
    let mut capture = Command::new(BIN);
    capture.args([
        "trace-capture",
        "--traces",
        traces_dir.to_str().unwrap(),
        "--count",
        "2",
        "--trace-cores",
        "2",
        "--ops",
        "3000",
    ]);
    let out = run_success(capture, "trace-capture");
    assert!(out.contains("4 files"), "{out}");
    let bundles = resolve_trace_dir(&traces_dir, "*.trace", 2).unwrap();
    assert_eq!(bundles.len(), 2);

    // 2. A --spec JSON with a TraceDir sweep.
    let spec = trace_sweep_spec("cli-accept", &traces_dir, 2, tiny_scale());
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let store_single = dir.join("store-single");
    let run_args = |store: &Path, out: &Path| -> Vec<String> {
        [
            "run",
            "--spec",
            spec_path.to_str().unwrap(),
            "--campaign",
            store.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };

    // 3. Cold single-process run, then a warm resume: zero re-simulation.
    let mut cold = Command::new(BIN);
    cold.args(run_args(&store_single, &dir.join("out-cold")));
    let cold_out = run_success(cold, "cold run");
    assert!(cold_out.contains("0 cached"), "{cold_out}");
    let mut warm = Command::new(BIN);
    warm.args(run_args(&store_single, &dir.join("out-warm")));
    let warm_out = run_success(warm, "warm run");
    assert!(
        warm_out.contains("0 simulated"),
        "warm resume must re-simulate nothing: {warm_out}"
    );
    let csv = |out: &str| dir.join(out).join("grid_traces.csv");
    let cold_csv = std::fs::read(csv("out-cold")).unwrap();
    assert_eq!(
        cold_csv,
        std::fs::read(csv("out-warm")).unwrap(),
        "warm reduce must be byte-identical"
    );

    // 4. worker x2 + merge into a fresh store: byte-identical output.
    let store_dist = dir.join("store-dist");
    let worker = |owner: &str| {
        let mut cmd = Command::new(BIN);
        cmd.args([
            "worker",
            "--spec",
            spec_path.to_str().unwrap(),
            "--campaign",
            store_dist.to_str().unwrap(),
            "--owner",
            owner,
            "--ttl-ms",
            "5000",
            "--poll-ms",
            "50",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
        cmd
    };
    let a = worker("tw-a").spawn().unwrap();
    let b = worker("tw-b").spawn().unwrap();
    for (child, name) in [(a, "tw-a"), (b, "tw-b")] {
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "worker {name} failed:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut merge = Command::new(BIN);
    merge.args([
        "merge",
        "--spec",
        spec_path.to_str().unwrap(),
        "--campaign",
        store_dist.to_str().unwrap(),
        "--out",
        dir.join("out-merge").to_str().unwrap(),
    ]);
    let merge_out = run_success(merge, "merge");
    assert!(merge_out.contains("0 simulated"), "{merge_out}");
    assert_eq!(
        cold_csv,
        std::fs::read(csv("out-merge")).unwrap(),
        "worker x2 + merge must be byte-identical to the single-process run"
    );
    let _ = std::fs::remove_dir_all(dir);
}
