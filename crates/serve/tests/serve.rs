//! Campaign-server acceptance tests: the HTTP shard/lease protocol, torn
//! line freedom under concurrent read-while-append, ETag/304 caching, CLI
//! mode hardening, and the flagship scenario — two `--store-url` workers
//! with no shared campaign directory, one SIGKILLed mid-run, whose merged
//! grids are byte-identical to a fresh single-process local run.

use dsarp_campaign::store::{Record, SHARDS};
use dsarp_campaign::{
    export, lease, AcquireOutcome, Campaign, CampaignSpec, Fingerprint, RemoteStore, Store,
    StoreBackend, SweepSpec, WorkloadSet,
};
use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_serve::CampaignServer;
use dsarp_sim::experiments::harness::Scale;
use dsarp_sim::experiments::report;
use minihttp::{Client, Request, Server, ServerHandle};
use std::collections::HashSet;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tiny_scale() -> Scale {
    Scale {
        dram_cycles: 2_000,
        alone_cycles: 1_000,
        per_category: 1,
        threads: 2,
        warmup_ops: 500,
    }
}

fn small_spec(name: &str) -> CampaignSpec {
    CampaignSpec::new(name, tiny_scale())
        .with_sweep(SweepSpec::new(
            "alpha",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::Dsarp],
            &[Density::G8],
        ))
        .with_sweep(SweepSpec::new(
            "beta",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::RefPb],
            &[Density::G8],
        ))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dsarp-serve-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts an in-process campaign server on a free port, returning its
/// URL, host:port, and a shutdown handle.
fn start_server(root: &Path, spec: CampaignSpec) -> (String, String, ServerHandle) {
    let http = Server::bind("127.0.0.1:0").unwrap();
    let addr = http.local_addr().unwrap();
    let handle = http.handle().unwrap();
    let server = CampaignServer::new(root, spec).unwrap();
    std::thread::spawn(move || server.serve(http).unwrap());
    (format!("http://{addr}"), addr.to_string(), handle)
}

fn get(path: &str, query: &[(&str, &str)], headers: &[(&str, &str)]) -> Request {
    Request {
        method: "GET".into(),
        path: path.into(),
        query: query
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        headers: headers
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        body: Vec::new(),
    }
}

/// Mode-invalid invocations refuse with a nonzero exit naming the
/// offending token — never a silent fallback to some other behavior.
#[test]
fn cli_refuses_invalid_modes_naming_the_token() {
    let cases: &[(&[&str], &str)] = &[
        (&["frobnicate"], "unknown subcommand `frobnicate`"),
        (&["run", "--bogus"], "unknown argument `--bogus`"),
        (
            &["compact", "--store-url", "http://localhost:9"],
            "--store-url",
        ),
        (&["run", "--store-url", "http://localhost:9"], "--store-url"),
        (
            &["serve", "--store-url", "http://localhost:9"],
            "--store-url",
        ),
        (
            &[
                "worker",
                "--store-url",
                "http://localhost:9",
                "--campaign",
                "d",
            ],
            "--campaign conflicts with --store-url",
        ),
        (
            &["worker", "--store-url", "http://localhost:9", "--fresh"],
            "--fresh conflicts with --store-url",
        ),
        (&["run", "--listen", "127.0.0.1:0"], "--listen"),
        (&["worker", "--ttl-ms"], "missing value for --ttl-ms"),
        (
            &["status", "--store-url", "http://localhost:9"],
            "--store-url",
        ),
        (&["worker", "--telemetry"], "--telemetry"),
        (&["compact", "--events", "e.jsonl"], "--events"),
    ];
    for (args, needle) in cases {
        let out = Command::new(BIN).args(*args).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`{}` must exit 2, got {:?}:\n{stderr}",
            args.join(" "),
            out.status.code()
        );
        assert!(
            stderr.contains(needle),
            "`{}` must name `{needle}`:\n{stderr}",
            args.join(" ")
        );
    }
}

/// The full lease lifecycle over HTTP: acquire, contention with holder
/// identity, renew-by-owner, permanent refusal of a non-owner renew,
/// release, and stale reclaim after a dead owner's TTL lapses.
#[test]
fn http_leases_contend_renew_release_and_reclaim() {
    let dir = tmpdir("http-lease");
    let (url, _, handle) = start_server(&dir, small_spec("lease"));
    let a = RemoteStore::connect(&url, "lease").unwrap();
    let b = RemoteStore::connect(&url, "lease").unwrap();

    match a.acquire(3, "owner-a", 60_000).unwrap() {
        AcquireOutcome::Acquired { reclaimed } => assert!(!reclaimed),
        AcquireOutcome::Held { holder, .. } => panic!("vacant shard held by {holder:?}"),
    }
    match b.acquire(3, "owner-b", 60_000).unwrap() {
        AcquireOutcome::Held {
            holder,
            evicted_stale,
        } => {
            assert_eq!(holder.owner, "owner-a");
            assert!(!evicted_stale, "a live lease must not be evicted");
        }
        AcquireOutcome::Acquired { .. } => panic!("live lease double-acquired over HTTP"),
    }
    a.renew(3, "owner-a", 60_000).unwrap();
    let err = b.renew(3, "owner-b", 60_000).unwrap_err();
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::PermissionDenied,
        "a non-owner renew must map to a permanent (409) error, got {err}"
    );
    a.release(3, "owner-a").unwrap();

    // owner-b takes the shard with a 50 ms TTL and "dies" (no renew, no
    // release): after the TTL lapses, owner-a reclaims the stale lease —
    // the exact path a SIGKILLed remote worker leaves behind.
    match b.acquire(3, "owner-b", 50).unwrap() {
        AcquireOutcome::Acquired { .. } => {}
        AcquireOutcome::Held { holder, .. } => panic!("released shard held by {holder:?}"),
    }
    std::thread::sleep(Duration::from_millis(200));
    let mut reclaimed = false;
    for _ in 0..5 {
        match a.acquire(3, "owner-a", 60_000).unwrap() {
            AcquireOutcome::Acquired { reclaimed: r } => {
                reclaimed = r;
                break;
            }
            AcquireOutcome::Held { evicted_stale, .. } => {
                assert!(evicted_stale, "the 50 ms lease must look stale by now");
            }
        }
    }
    assert!(
        reclaimed,
        "the dead owner's lease must be reclaimed over HTTP"
    );
    a.release(3, "owner-a").unwrap();

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// A reader polling the incremental shard endpoint during a concurrent
/// append stream never observes a torn JSON line: every chunk ends at a
/// newline boundary and every line decodes, until all records are seen.
#[test]
fn concurrent_reader_never_observes_torn_lines() {
    let dir = tmpdir("torn");
    let (_, host, handle) = start_server(&dir, small_spec("torn"));
    let n: usize = 200;

    let writer_host = host.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::new(writer_host);
        for i in 0..n {
            // i * SHARDS routes every record to shard 0; a long label
            // makes lines span write-buffer boundaries.
            let fp = Fingerprint((i * SHARDS) as u128);
            let rec = Record::alone(fp, format!("w{i}-{}", "x".repeat(257)), i as f64);
            let resp = client
                .request(
                    "POST",
                    "/shards/00/append",
                    &[],
                    Store::encode_line(&rec).as_bytes(),
                )
                .unwrap();
            assert_eq!(resp.status, 200, "append {i}: {}", resp.text_body());
        }
    });

    let mut client = Client::new(host);
    let mut offset = 0u64;
    let mut seen = HashSet::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while seen.len() < n {
        assert!(Instant::now() < deadline, "saw {}/{n} records", seen.len());
        let resp = client
            .request("GET", &format!("/shards/00?offset={offset}"), &[], &[])
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text_body());
        assert!(
            resp.body.is_empty() || resp.body.ends_with(b"\n"),
            "chunk must end at a line boundary, got {:?}...",
            &resp.body[resp.body.len().saturating_sub(40)..]
        );
        for line in std::str::from_utf8(&resp.body).unwrap().lines() {
            let (fp, _) = Store::decode_line(line)
                .unwrap_or_else(|| panic!("torn/unparseable line: {line:?}"));
            assert!(seen.insert(fp.0), "record {fp} delivered twice");
        }
        offset = resp
            .header_value("x-next-offset")
            .expect("x-next-offset header")
            .parse()
            .unwrap();
    }
    writer.join().unwrap();

    // Server-side dedup: re-appending an existing line reports deduped=1
    // and appends nothing (first record wins).
    let rec = Record::alone(Fingerprint(0), "dup".into(), 9.9);
    let resp = client
        .request(
            "POST",
            "/shards/00/append",
            &[],
            Store::encode_line(&rec).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.text_body().contains("\"appended\":0") && resp.text_body().contains("\"deduped\":1"),
        "duplicate append must dedup: {}",
        resp.text_body()
    );
    let records = Store::read_all(&dir.join("torn")).unwrap();
    assert_eq!(records.len(), n, "dedup must not append a second copy");
    assert_ne!(records[&0].label, "dup", "first record must win");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Cells are content-addressed, so the fingerprint doubles as a strong
/// ETag (304 without a store read); grid exports hash their CSV bytes.
#[test]
fn cells_and_exports_honor_etags() {
    let dir = tmpdir("etag");
    let spec = small_spec("etag");

    // An undrained campaign cannot be exported: 409, not a bogus grid.
    let empty = dir.join("empty");
    let undrained = CampaignServer::new(&empty, spec.clone()).unwrap();
    let resp = undrained.handle(&get("/export/grid_alpha.csv", &[], &[]));
    assert_eq!(resp.status, 409, "{}", resp.text_body());
    assert!(resp.text_body().contains("not drained"));

    // Drain locally, then serve the same store directory.
    let report = Campaign::open(&dir, spec.clone()).unwrap().run().unwrap();
    assert!(report.stats.simulated > 0);
    let server = CampaignServer::new(&dir, spec).unwrap();

    let records = Store::read_all(&dir.join("etag")).unwrap();
    let fp = Fingerprint(*records.keys().next().unwrap());
    let path = format!("/cells/{fp}");
    let resp = server.handle(&get(&path, &[], &[]));
    assert_eq!(resp.status, 200, "{}", resp.text_body());
    let etag = resp.header_value("etag").expect("cell etag").to_string();
    assert_eq!(etag, format!("\"{fp}\""), "the fingerprint IS the ETag");
    let resp = server.handle(&get(&path, &[], &[("if-none-match", &etag)]));
    assert_eq!(resp.status, 304);
    assert!(resp.body.is_empty(), "a 304 carries no body");

    let missing = format!("/cells/{}", Fingerprint(u128::MAX));
    assert_eq!(server.handle(&get(&missing, &[], &[])).status, 404);

    let resp = server.handle(&get("/export/grid_alpha.csv", &[], &[]));
    assert_eq!(resp.status, 200, "{}", resp.text_body());
    let expected = report::to_csv(report.grids["alpha"].rows());
    assert_eq!(
        resp.body,
        expected.as_bytes(),
        "the export must be byte-identical to the local CSV writer"
    );
    let etag = resp.header_value("etag").expect("export etag").to_string();
    let resp = server.handle(&get(
        "/export/grid_alpha.csv",
        &[],
        &[("if-none-match", &etag)],
    ));
    assert_eq!(resp.status, 304);
    assert_eq!(
        server
            .handle(&get("/export/grid_nope.csv", &[], &[]))
            .status,
        404
    );

    let _ = std::fs::remove_dir_all(dir);
}

/// Sums every series of one Prometheus counter family in an exposition
/// text (histogram series have `_bucket`/`_sum`/`_count` suffixes and are
/// excluded by the `{`-or-space check right after the name).
fn counter_total(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparseable sample line: {l:?}"))
        })
        .sum()
}

/// Asserts one Prometheus exposition text is well-formed: every line is a
/// comment or a `name[{labels}] value` sample with balanced braces, and
/// every sample's metric was announced by a `# TYPE` header.
fn assert_well_formed_exposition(text: &str) {
    let mut typed = HashSet::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert_eq!(
            series.contains('{'),
            series.ends_with('}'),
            "unbalanced label block in {line:?}"
        );
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.contains(*b))
            .unwrap_or(name);
        assert!(
            typed.contains(base),
            "sample `{name}` has no preceding # TYPE header"
        );
    }
}

/// `GET /metrics` scraped concurrently with append traffic: every scrape
/// is well-formed exposition text, counters are monotonic across scrapes,
/// and the final view accounts for every append; `GET /status` then
/// reports the records those appends landed.
#[test]
fn metrics_scrape_is_well_formed_and_monotonic_under_append_load() {
    let dir = tmpdir("metrics");
    let (_, host, handle) = start_server(&dir, small_spec("metrics"));
    let n: usize = 100;

    let writer_host = host.clone();
    let writer = std::thread::spawn(move || {
        let mut client = Client::new(writer_host);
        for i in 0..n {
            // i * SHARDS routes every record to shard 0.
            let fp = Fingerprint((i * SHARDS) as u128);
            let rec = Record::alone(fp, format!("m{i}"), i as f64);
            let resp = client
                .request(
                    "POST",
                    "/shards/00/append",
                    &[],
                    Store::encode_line(&rec).as_bytes(),
                )
                .unwrap();
            assert_eq!(resp.status, 200, "append {i}: {}", resp.text_body());
        }
    });

    let mut client = Client::new(host);
    let (mut last_requests, mut last_bytes) = (0u64, 0u64);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut final_pass = false;
    loop {
        assert!(Instant::now() < deadline, "writer never finished");
        let resp = client.request("GET", "/metrics", &[], &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert!(
            resp.header_value("content-type")
                .is_some_and(|ct| ct.starts_with("text/plain")),
            "metrics must be text exposition, got {:?}",
            resp.header_value("content-type")
        );
        let text = resp.text_body();
        assert_well_formed_exposition(&text);
        let requests = counter_total(&text, "dsarp_http_requests_total");
        let bytes = counter_total(&text, "dsarp_http_response_bytes_total");
        assert!(
            requests >= last_requests && bytes >= last_bytes,
            "counters went backwards: {last_requests}->{requests}, {last_bytes}->{bytes}"
        );
        (last_requests, last_bytes) = (requests, bytes);
        if final_pass {
            // All appends were counted before their responses were sent,
            // so the post-join scrape must account for every one of them.
            let needle =
                "dsarp_http_requests_total{method=\"POST\",route=\"/shards/{..}/append\",code=\"2xx\"}";
            let appends = text
                .lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|w| w.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("no append series in:\n{text}"));
            assert_eq!(appends, n, "every append must be counted");
            assert!(
                text.contains(
                    "dsarp_http_request_duration_us_bucket{route=\"/metrics\",le=\"+Inf\"}"
                ),
                "the latency histogram must cover the /metrics route itself:\n{text}"
            );
            break;
        }
        if writer.is_finished() {
            final_pass = true;
        }
    }
    writer.join().unwrap();

    // /status: the appends above are visible as shard-0 records, and no
    // lease is held.
    let resp = client.request("GET", "/status", &[], &[]).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text_body());
    let doc: serde_json::Value = serde_json::from_str(&resp.text_body()).unwrap();
    assert_eq!(
        doc.get("campaign").and_then(|v| v.as_str()),
        Some("metrics")
    );
    assert_eq!(doc.get("records").and_then(|v| v.as_u64()), Some(n as u64));
    let shards = doc.get("shards").and_then(|v| v.as_array()).unwrap();
    assert_eq!(shards.len(), SHARDS);
    assert_eq!(
        shards[0].get("records").and_then(|v| v.as_u64()),
        Some(n as u64)
    );
    assert!(
        shards
            .iter()
            .all(|s| matches!(s.get("lease"), Some(serde_json::Value::Null))),
        "no lease should be held: {}",
        resp.text_body()
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// `experiments status` renders the drain progress table read-only: 0%
/// against an empty store, 100% after a local drain, naming stale leases.
#[test]
fn status_subcommand_reports_progress_table() {
    let dir = tmpdir("status-cli");
    let spec = small_spec("statuscli");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let status_cmd = || {
        let out = Command::new(BIN)
            .args([
                "status",
                "--campaign",
                dir.to_str().unwrap(),
                "--spec",
                spec_path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "status failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let before = status_cmd();
    assert!(
        before.contains("cells done (0.0%)"),
        "empty store must read 0%:\n{before}"
    );

    let report = Campaign::open(&dir, spec.clone()).unwrap().run().unwrap();
    assert!(report.stats.simulated > 0);
    let after = status_cmd();
    assert!(
        after.contains(&format!(
            "total: {}/{} cells done (100.0%)",
            report.stats.unique_jobs, report.stats.unique_jobs
        )),
        "drained store must read 100%:\n{after}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

fn lock_files(campaign_dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(lease::lease_dir(campaign_dir))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "lock"))
                .collect()
        })
        .unwrap_or_default()
}

fn wait_success(mut child: Child, what: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                let out = child.wait_with_output().unwrap();
                let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
                assert!(
                    status.success(),
                    "{what} failed ({status}):\n--- stdout\n{stdout}\n--- stderr\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                return stdout;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not exit within {timeout:?}");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn parse_summary_count(out: &str, suffix: &str) -> usize {
    let idx = out
        .find(suffix)
        .unwrap_or_else(|| panic!("no `{suffix}` in output:\n{out}"));
    out[..idx]
        .split_whitespace()
        .last()
        .and_then(|w| w.trim_start_matches('(').parse().ok())
        .unwrap_or_else(|| panic!("unparseable count before `{suffix}`:\n{out}"))
}

fn remote_worker_cmd(url: &str, spec: &Path, owner: &str) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "worker",
        "--store-url",
        url,
        "--spec",
        spec.to_str().unwrap(),
        "--owner",
        owner,
        "--ttl-ms",
        "5000",
        "--poll-ms",
        "50",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    cmd
}

/// The flagship acceptance scenario: an `experiments serve` subprocess
/// owns the store; two `--store-url` workers (no shared campaign
/// directory) drain it after a third is SIGKILLed mid-run; the HTTP-held
/// stale lease is reclaimed; and `merge --store-url` produces grids
/// byte-identical to a fresh single-process local run of the same spec.
#[test]
fn remote_workers_survive_sigkill_and_merge_matches_local() {
    let dir = tmpdir("remote-kill");
    let server_store = dir.join("server-store");
    let spec = small_spec("remote");
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let campaign_dir = server_store.join(&spec.name);

    // 1. The server subprocess; its first stdout line carries the URL.
    let mut server = Command::new(BIN)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--campaign",
            server_store.to_str().unwrap(),
            "--spec",
            spec_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut first_line = String::new();
    BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let url = first_line
        .split_whitespace()
        .find(|w| w.starts_with("http://"))
        .unwrap_or_else(|| panic!("no URL in server banner: {first_line:?}"))
        .to_string();

    // 2. A slow victim worker over HTTP, SIGKILLed as soon as its lease
    //    lands (the lock file appears in the server's store).
    let mut victim_cmd = remote_worker_cmd(&url, &spec_path, "victim");
    victim_cmd.env("DSARP_JOB_DELAY_MS", "150");
    let mut victim = victim_cmd.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while lock_files(&campaign_dir).is_empty() {
        assert!(
            Instant::now() < deadline,
            "victim never acquired a lease over HTTP"
        );
        assert!(
            victim.try_wait().unwrap().is_none(),
            "victim exited before it could be killed mid-run"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    victim.kill().unwrap(); // SIGKILL: no release, HTTP-held lock left behind
    victim.wait().unwrap();
    assert!(
        !lock_files(&campaign_dir).is_empty(),
        "the killed remote worker must leave its lock in the server's store"
    );

    // 3. Two surviving remote workers drain the campaign, reclaiming the
    //    stale lease through the server after its 5 s TTL.
    let a = remote_worker_cmd(&url, &spec_path, "w-a").spawn().unwrap();
    let b = remote_worker_cmd(&url, &spec_path, "w-b").spawn().unwrap();
    let out_a = wait_success(a, "remote worker w-a", Duration::from_secs(120));
    let out_b = wait_success(b, "remote worker w-b", Duration::from_secs(120));
    let reclaimed: usize = [&out_a, &out_b]
        .iter()
        .map(|out| parse_summary_count(out, " reclaimed from dead owners"))
        .sum();
    assert!(
        reclaimed >= 1,
        "a survivor must reclaim the victim's stale HTTP lease:\n--- w-a\n{out_a}\n--- w-b\n{out_b}"
    );
    assert!(
        lock_files(&campaign_dir).is_empty(),
        "all remote leases must be released after the drain"
    );

    // 4. Remote merge: drains (already done), snapshots over HTTP, and
    //    reduces — no local campaign directory involved.
    let merge_out = dir.join("merged");
    let merge = Command::new(BIN)
        .args([
            "merge",
            "--store-url",
            &url,
            "--spec",
            spec_path.to_str().unwrap(),
            "--owner",
            "merge",
            "--ttl-ms",
            "5000",
            "--poll-ms",
            "50",
            "--out",
            merge_out.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    wait_success(merge, "remote merge", Duration::from_secs(120));

    // 5. Reference: a fresh single-process run of the same spec, exported
    //    through the identical writer — byte-for-byte equality.
    let ref_out = dir.join("ref-out");
    let report = Campaign::open(&dir.join("ref-store"), small_spec("remote"))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.stats.simulated > 0);
    for (name, grid) in &report.grids {
        let file = format!("grid_{}", name.replace(['/', ' '], "-"));
        export::write_grid(&ref_out, &file, grid).unwrap();
        let merged = std::fs::read(merge_out.join(format!("{file}.csv")))
            .unwrap_or_else(|e| panic!("remote merge must write {file}.csv: {e}"));
        let reference = std::fs::read(ref_out.join(format!("{file}.csv"))).unwrap();
        assert_eq!(
            merged, reference,
            "remote-merged grid `{name}` must be byte-identical to a local single-process run"
        );
    }

    server.kill().unwrap();
    server.wait().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}
