//! Distributed-execution acceptance tests: real `experiments` worker
//! subprocesses drain one campaign store concurrently, one is killed
//! mid-run (SIGKILL, lease left behind), survivors reclaim its stale
//! lease and re-run its unfinished cells, and the merged grids are
//! byte-identical to a fresh single-process `Campaign::run` of the same
//! spec.

use dsarp_campaign::{export, lease, Campaign, CampaignSpec, SweepSpec, WorkloadSet};
use dsarp_core::Mechanism;
use dsarp_dram::Density;
use dsarp_sim::experiments::harness::Scale;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn tiny_scale() -> Scale {
    Scale {
        dram_cycles: 2_000,
        alone_cycles: 1_000,
        per_category: 1,
        threads: 2,
        warmup_ops: 500,
    }
}

/// Two overlapping sweeps (~10 unique jobs over most of the 8 shards).
fn dist_spec() -> CampaignSpec {
    CampaignSpec::new("dist", tiny_scale())
        .with_sweep(SweepSpec::new(
            "alpha",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::Dsarp],
            &[Density::G8],
        ))
        .with_sweep(SweepSpec::new(
            "beta",
            WorkloadSet::Intensive { cores: 2 },
            &[Mechanism::RefAb, Mechanism::RefPb],
            &[Density::G8],
        ))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dsarp-distributed-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn worker_cmd(store: &Path, spec: &Path, owner: &str) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "worker",
        "--campaign",
        store.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
        "--owner",
        owner,
        "--ttl-ms",
        "5000",
        "--poll-ms",
        "50",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    cmd
}

/// Waits for `child` to exit successfully, returning its stdout. Panics
/// with full output on failure or after `timeout`.
fn wait_success(mut child: Child, what: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                let out = child.wait_with_output().unwrap();
                let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
                assert!(
                    status.success(),
                    "{what} failed ({status}):\n--- stdout\n{stdout}\n--- stderr\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                return stdout;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not exit within {timeout:?}");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn lock_files(campaign_dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(lease::lease_dir(campaign_dir))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "lock"))
                .collect()
        })
        .unwrap_or_default()
}

/// The acceptance scenario: >= 2 worker subprocesses on one campaign dir,
/// one killed mid-run, its lease reclaimed, merged output bit-exact with
/// a fresh single-process run.
#[test]
fn killed_worker_is_reclaimed_and_merge_matches_single_process() {
    let dir = tmpdir("kill-reclaim");
    let store = dir.join("store");
    let spec_path = dir.join("spec.json");
    let spec = dist_spec();
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let campaign_dir = store.join(&spec.name);

    // 1. A slow victim worker: 150 ms per job, killed as soon as it holds
    //    a shard lease (well before its first append can land).
    let mut victim_cmd = worker_cmd(&store, &spec_path, "victim");
    victim_cmd.env("DSARP_JOB_DELAY_MS", "150");
    let mut victim = victim_cmd.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while lock_files(&campaign_dir).is_empty() {
        assert!(
            Instant::now() < deadline,
            "victim never acquired a lease (did it crash on startup?)"
        );
        assert!(
            victim.try_wait().unwrap().is_none(),
            "victim exited before it could be killed mid-run"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    victim.kill().unwrap(); // SIGKILL: no release, lock left behind
    victim.wait().unwrap();
    assert!(
        !lock_files(&campaign_dir).is_empty(),
        "the killed worker must leave its lock on disk"
    );

    // 2. Two surviving workers drain the campaign, reclaiming the stale
    //    lease after its 5 s TTL and re-running the dead worker's cells.
    let a = worker_cmd(&store, &spec_path, "w-a").spawn().unwrap();
    let b = worker_cmd(&store, &spec_path, "w-b").spawn().unwrap();
    let out_a = wait_success(a, "worker w-a", Duration::from_secs(120));
    let out_b = wait_success(b, "worker w-b", Duration::from_secs(120));
    // Parse the actual count from each summary line — a substring check
    // would also match "(0 reclaimed from dead owners)".
    let reclaimed: usize = [&out_a, &out_b]
        .iter()
        .map(|out| parse_summary_count(out, " reclaimed from dead owners"))
        .sum();
    assert!(
        reclaimed >= 1,
        "a survivor must reclaim the victim's stale lease:\n--- w-a\n{out_a}\n--- w-b\n{out_b}"
    );
    assert!(
        lock_files(&campaign_dir).is_empty(),
        "all leases must be released after the drain"
    );

    // 3. Merge: waits for the (already drained) campaign and reduces.
    let merge_out = dir.join("merged");
    let merge = Command::new(BIN)
        .args([
            "merge",
            "--campaign",
            store.to_str().unwrap(),
            "--spec",
            spec_path.to_str().unwrap(),
            "--owner",
            "merge",
            "--ttl-ms",
            "5000",
            "--poll-ms",
            "50",
            "--out",
            merge_out.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    wait_success(merge, "merge", Duration::from_secs(120));

    // 4. Reference: a fresh single-process Campaign::run on the same spec,
    //    exported through the identical writer.
    let ref_store = dir.join("ref-store");
    let ref_out = dir.join("ref-out");
    let report = Campaign::open(&ref_store, dist_spec())
        .unwrap()
        .run()
        .unwrap();
    assert!(report.stats.simulated > 0);
    for (name, grid) in &report.grids {
        let file = format!("grid_{}", name.replace(['/', ' '], "-"));
        export::write_grid(&ref_out, &file, grid).unwrap();
        let merged = std::fs::read(merge_out.join(format!("{file}.csv")))
            .unwrap_or_else(|e| panic!("merge must write {file}.csv: {e}"));
        let reference = std::fs::read(ref_out.join(format!("{file}.csv"))).unwrap();
        assert_eq!(
            merged, reference,
            "merged grid `{name}` must be byte-identical to a single-process run"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// Two concurrent workers from a cold store split the work without
/// overlapping simulations, and compaction afterwards is a no-op-safe
/// cleanup: orphans and torn lines vanish, results stay byte-identical.
#[test]
fn concurrent_workers_then_compact_keep_results_identical() {
    let dir = tmpdir("concurrent-compact");
    let store = dir.join("store");
    let spec_path = dir.join("spec.json");
    let spec = dist_spec();
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    let a = worker_cmd(&store, &spec_path, "w-a").spawn().unwrap();
    let b = worker_cmd(&store, &spec_path, "w-b").spawn().unwrap();
    let out_a = wait_success(a, "worker w-a", Duration::from_secs(120));
    let out_b = wait_success(b, "worker w-b", Duration::from_secs(120));

    // Workers partition jobs by shard: together they simulated the full
    // unique-job set exactly once.
    let simulated: usize = [&out_a, &out_b]
        .iter()
        .map(|out| parse_summary_count(out, " jobs simulated"))
        .sum();
    let mut campaign = Campaign::open(&store, dist_spec()).unwrap();
    let warm = campaign.run().unwrap();
    assert_eq!(
        warm.stats.simulated, 0,
        "drain must have completed the store"
    );
    assert_eq!(
        simulated, warm.stats.unique_jobs,
        "workers must split the unique jobs without re-simulating:\n{out_a}\n{out_b}"
    );

    // Plant an orphan record and a torn line, then compact via the CLI.
    let shard0 = store.join("dist/shards/shard-00.jsonl");
    let mut text = std::fs::read_to_string(&shard0).unwrap_or_default();
    text.push_str("{\"fp\":\"00000000000000000000000000000001\",\"kind\":\"alone\",\"label\":\"orphan\",\"alone_ipc\":1.0,\"summary\":null}\n");
    text.push_str("{\"fp\":\"torn");
    std::fs::write(&shard0, text).unwrap();

    let compact = Command::new(BIN)
        .args([
            "compact",
            "--campaign",
            store.to_str().unwrap(),
            "--spec",
            spec_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let compact_out = wait_success(compact, "compact", Duration::from_secs(60));
    assert!(
        compact_out.contains("dropped 1 orphans"),
        "compact must report the orphan: {compact_out}"
    );

    // Post-compaction the campaign still reduces with zero simulation and
    // identical grids.
    let clean = Campaign::open(&store, dist_spec()).unwrap().run().unwrap();
    assert_eq!(clean.stats.simulated, 0, "compaction must not lose records");
    for (name, grid) in &warm.grids {
        let rows = clean.grids[name].rows();
        assert_eq!(grid.rows(), rows, "grid `{name}` changed across compaction");
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// `--emit-spec` output round-trips through `--spec` semantics.
#[test]
fn emitted_spec_file_reloads() {
    let dir = tmpdir("emit-spec");
    let path = dir.join("paper.json");
    let emit = Command::new(BIN)
        .args(["--emit-spec", path.to_str().unwrap(), "--scale", "quick"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    wait_success(emit, "--emit-spec", Duration::from_secs(60));
    let text = std::fs::read_to_string(&path).unwrap();
    let spec = CampaignSpec::from_json(&text).expect("emitted spec must reload");
    assert_eq!(spec, CampaignSpec::paper(Scale::quick()));
    assert!(spec.sweep("main").is_some());
    let _ = std::fs::remove_dir_all(dir);
}

/// Extracts the count preceding `suffix` in a worker summary line, e.g.
/// `... 7 jobs simulated, ...` -> 7.
fn parse_summary_count(out: &str, suffix: &str) -> usize {
    let idx = out
        .find(suffix)
        .unwrap_or_else(|| panic!("no `{suffix}` in output:\n{out}"));
    out[..idx]
        .split_whitespace()
        .last()
        .and_then(|w| w.trim_start_matches('(').parse().ok())
        .unwrap_or_else(|| panic!("unparseable count before `{suffix}`:\n{out}"))
}
