//! Cycle-accurate DDR3 DRAM device model with per-bank refresh and SARP.
//!
//! This crate is the device-side substrate for the reproduction of
//! *"Improving DRAM Performance by Parallelizing Refreshes with Accesses"*
//! (Chang et al., HPCA 2014). It models:
//!
//! * the DRAM hierarchy — channels, ranks, banks, subarrays, rows
//!   ([`Geometry`], [`Location`]);
//! * the full DDR3-1333 timing-constraint algebra — `tRCD`, `tRP`, `tRAS`,
//!   `tRC`, `tCL`, `tCWL`, `tBL`, `tCCD`, `tRTP`, `tWR`, `tWTR`, read/write
//!   turnaround, `tRRD`, `tFAW`, `tREFIab/pb`, `tRFCab/pb` ([`TimingParams`]);
//! * both refresh granularities of the paper — all-bank refresh (`REFab`)
//!   and LPDDR-style per-bank refresh (`REFpb`) — plus DDR4 fine-granularity
//!   refresh modes ([`FgrMode`]);
//! * **SARP** (Subarray Access Refresh Parallelization): when built with
//!   [`SarpSupport::Enabled`], a bank that is refreshing one subarray keeps
//!   serving `ACT`/`RD`/`WR` to its other subarrays, while `tFAW`/`tRRD` are
//!   inflated by the power-integrity factors of the paper's Eq. (1)–(3);
//! * an IDD-based energy model following the Micron power-calculator
//!   methodology ([`PowerModel`], [`EnergyBreakdown`]);
//! * retention bookkeeping used by tests to prove that no scheduling policy
//!   ever starves a row of refreshes ([`RetentionTracker`]).
//!
//! The memory controller (crate `dsarp-core`) drives a [`DramChannel`] by
//! issuing [`Command`]s; the channel validates every command against the
//! timing constraints and returns a [`Receipt`] with the data-return cycle.
//!
//! # Example
//!
//! ```
//! use dsarp_dram::{
//!     Command, Density, DramChannel, FgrMode, Geometry, Retention, SarpSupport, TimingParams,
//! };
//!
//! let geom = Geometry::paper_default();
//! let timing = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
//! let mut chan = DramChannel::new(geom, timing, SarpSupport::Disabled);
//!
//! // Activate row 7 of (rank 0, bank 0), then read column 3 from it.
//! chan.issue(Command::Activate { rank: 0, bank: 0, row: 7 }, 0).unwrap();
//! let t_rd = chan.timing().rcd; // earliest legal read
//! let receipt = chan
//!     .issue(Command::Read { rank: 0, bank: 0, col: 3, auto_precharge: false }, t_rd)
//!     .unwrap();
//! assert_eq!(receipt.data_ready, Some(t_rd + chan.timing().cl + chan.timing().bl));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod channel;
pub mod command;
pub mod geometry;
pub mod power;
pub mod rank;
pub mod refresh;
pub mod retention;
pub mod sarp;
pub mod spd;
pub mod timing;

pub use bank::{Bank, SarpRefresh};
pub use channel::{DramChannel, IssueError, Receipt};
pub use command::Command;
pub use geometry::{Geometry, GeometryError, Location};
pub use power::{EnergyBreakdown, EnergyCounters, IddValues, PowerModel};
pub use rank::Rank;
pub use refresh::RefreshUnit;
pub use retention::RetentionTracker;
pub use sarp::{sarp_inflation, SarpSupport};
pub use spd::{SpdData, SpdError};
pub use timing::{Density, FgrMode, Retention, TimingParams};

/// A point in time, measured in DRAM command-clock cycles (tCK ticks).
///
/// At DDR3-1333 one cycle is 1.5 ns; the paper's 4 GHz cores run exactly
/// 6 CPU cycles per DRAM cycle.
pub type Cycle = u64;

/// Number of CPU cycles per DRAM command-clock cycle for the paper's system
/// (4 GHz cores over a DDR3-1333 command clock of 666.67 MHz).
pub const CPU_CYCLES_PER_DRAM_CYCLE: u64 = 6;
