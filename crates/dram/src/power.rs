//! IDD-based DRAM energy model following the Micron power-calculator
//! methodology the paper uses (§5, ref. 27).
//!
//! Energy is accumulated as event counts and busy intervals during
//! simulation ([`EnergyCounters`]) and converted to joules at reporting time
//! by [`PowerModel`]. The paper reports *energy per memory access serviced*;
//! [`EnergyBreakdown::per_access_nj`] provides exactly that.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// IDD current values (mA) and supply voltage for one device, as found in a
/// DDR3 data sheet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IddValues {
    /// One-bank activate-precharge current.
    pub idd0: f64,
    /// Precharge standby current.
    pub idd2n: f64,
    /// Active standby current.
    pub idd3n: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst (all-bank) refresh current.
    pub idd5b: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl IddValues {
    /// Values for a Micron 8 Gb DDR3-1333 device (the paper’s DRAM, ref. 29).
    ///
    /// Chosen so the paper's §4.3.3 derivations hold exactly:
    /// `I_ACT = IDD0 − IDD3N`, `I_REF = IDD5B − IDD3N`, and
    /// `(4·I_ACT + I_REF)/(4·I_ACT)` = 2.1 (all-bank) / 1.138 (per-bank).
    pub fn micron_8gb_ddr3_1333() -> Self {
        Self {
            idd0: 100.0,
            idd2n: 40.0,
            idd3n: 50.0,
            idd4r: 200.0,
            idd4w: 210.0,
            idd5b: 270.0,
            vdd: 1.5,
        }
    }

    /// Effective activation current `I_ACT` = IDD0 − IDD3N (mA).
    pub fn activate_ma(&self) -> f64 {
        self.idd0 - self.idd3n
    }

    /// Effective all-bank refresh current `I_REF` = IDD5B − IDD3N (mA).
    pub fn refresh_ma(&self) -> f64 {
        self.idd5b - self.idd3n
    }
}

impl Default for IddValues {
    fn default() -> Self {
        Self::micron_8gb_ddr3_1333()
    }
}

/// Event counts and busy intervals accumulated by a [`crate::DramChannel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounters {
    acts: u64,
    reads: u64,
    writes: u64,
    refab_cmds: u64,
    refab_cycles: u64,
    refpb_cmds: u64,
    refpb_cycles: u64,
    /// Per-rank background accounting.
    rank_active: Vec<bool>,
    rank_last_change: Vec<Cycle>,
    rank_active_cycles: Vec<u64>,
    finalized_at: Cycle,
}

impl EnergyCounters {
    /// Fresh counters for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            acts: 0,
            reads: 0,
            writes: 0,
            refab_cmds: 0,
            refab_cycles: 0,
            refpb_cmds: 0,
            refpb_cycles: 0,
            rank_active: vec![false; ranks],
            rank_last_change: vec![0; ranks],
            rank_active_cycles: vec![0; ranks],
            finalized_at: 0,
        }
    }

    pub(crate) fn record_act(&mut self) {
        self.acts += 1;
    }

    pub(crate) fn record_read(&mut self) {
        self.reads += 1;
    }

    pub(crate) fn record_write(&mut self) {
        self.writes += 1;
    }

    pub(crate) fn record_refab(&mut self, rfc: u64) {
        self.refab_cmds += 1;
        self.refab_cycles += rfc;
    }

    pub(crate) fn record_refpb(&mut self, rfc: u64) {
        self.refpb_cmds += 1;
        self.refpb_cycles += rfc;
    }

    pub(crate) fn rank_goes_active(&mut self, rank: usize, now: Cycle) {
        if !self.rank_active[rank] {
            self.rank_active[rank] = true;
            self.rank_last_change[rank] = now;
        }
    }

    pub(crate) fn rank_goes_idle(&mut self, rank: usize, now: Cycle) {
        if self.rank_active[rank] {
            self.rank_active[rank] = false;
            self.rank_active_cycles[rank] += now - self.rank_last_change[rank];
        }
    }

    /// Flushes background accounting up to `now` (end of run).
    pub fn finalize(&mut self, now: Cycle) {
        for r in 0..self.rank_active.len() {
            if self.rank_active[r] {
                self.rank_active_cycles[r] += now.saturating_sub(self.rank_last_change[r]);
                self.rank_last_change[r] = now;
            }
        }
        self.finalized_at = self.finalized_at.max(now);
    }

    /// Activate commands issued.
    pub fn acts(&self) -> u64 {
        self.acts
    }

    /// Read bursts served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write bursts served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// All-bank refresh commands issued.
    pub fn refab_cmds(&self) -> u64 {
        self.refab_cmds
    }

    /// Per-bank refresh commands issued.
    pub fn refpb_cmds(&self) -> u64 {
        self.refpb_cmds
    }

    /// Reads + writes serviced (the paper's per-access denominator).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total rank-cycles spent with at least one open row.
    pub fn active_rank_cycles(&self) -> u64 {
        self.rank_active_cycles.iter().sum()
    }

    /// End-of-run cycle recorded by [`EnergyCounters::finalize`].
    pub fn finalized_at(&self) -> Cycle {
        self.finalized_at
    }
}

/// Energy totals in nanojoules, split by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Activate + precharge energy.
    pub act_pre_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Refresh energy (both granularities).
    pub refresh_nj: f64,
    /// Background (standby/active) energy.
    pub background_nj: f64,
    /// Accesses serviced (denominator for per-access energy).
    pub accesses: u64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// The paper's Figure 14 metric: energy per memory access serviced (nJ).
    pub fn per_access_nj(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_nj() / self.accesses as f64
        }
    }
}

/// Converts [`EnergyCounters`] into joules for a given device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Device IDD values.
    pub idd: IddValues,
    /// Clock period in picoseconds.
    pub tck_ps: u64,
    /// Number of ranks sharing the accounting (for standby energy).
    pub ranks: usize,
}

impl PowerModel {
    /// Power model for a device with the given timing.
    pub fn new(idd: IddValues, tck_ps: u64, ranks: usize) -> Self {
        Self { idd, tck_ps, ranks }
    }

    fn nj(&self, ma: f64, cycles: f64) -> f64 {
        // mA * V * cycles * tCK  =>  1e-3 A * V * s... expressed in nJ:
        // mA * V * (cycles * tck_ps) ps = ma * vdd * cycles * tck_ps * 1e-6 nJ
        ma * self.idd.vdd * cycles * self.tck_ps as f64 * 1e-6
    }

    /// Computes the energy breakdown for one channel's counters, using the
    /// Micron methodology:
    ///
    /// * activate/precharge: `(IDD0 − IDD3N) · VDD · tRC` per ACT,
    /// * read/write bursts: `(IDD4R/W − IDD3N) · VDD · tBL` per burst,
    /// * refresh: `(IDD5B − IDD3N) · VDD · tRFC` per `REFab`
    ///   (⅛ of that current per `REFpb`, paper §4.3.3),
    /// * background: `IDD3N` over active rank-cycles, `IDD2N` over the rest.
    pub fn energy(&self, c: &EnergyCounters, timing: &crate::TimingParams) -> EnergyBreakdown {
        let act_pre_nj = self.nj(self.idd.activate_ma(), (c.acts * timing.rc) as f64);
        let read_nj = self.nj(
            self.idd.idd4r - self.idd.idd3n,
            (c.reads * timing.bl) as f64,
        );
        let write_nj = self.nj(
            self.idd.idd4w - self.idd.idd3n,
            (c.writes * timing.bl) as f64,
        );
        let refresh_nj = self.nj(self.idd.refresh_ma(), c.refab_cycles as f64)
            + self.nj(self.idd.refresh_ma() / 8.0, c.refpb_cycles as f64);
        let total_rank_cycles = c.finalized_at * self.ranks as u64;
        let active = c.active_rank_cycles().min(total_rank_cycles);
        let standby = total_rank_cycles - active;
        let background_nj =
            self.nj(self.idd.idd3n, active as f64) + self.nj(self.idd.idd2n, standby as f64);
        EnergyBreakdown {
            act_pre_nj,
            read_nj,
            write_nj,
            refresh_nj,
            background_nj,
            accesses: c.accesses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Density, Retention, TimingParams};

    fn timing() -> TimingParams {
        TimingParams::ddr3_1333(Density::G8, Retention::Ms32)
    }

    #[test]
    fn refpb_current_is_one_eighth_of_refab() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        let pm = PowerModel::new(idd, 1_500, 2);
        let t = timing();
        let mut a = EnergyCounters::new(2);
        a.record_refab(t.rfc_ab);
        a.finalize(0);
        let mut b = EnergyCounters::new(2);
        // Eight REFpb ~ one REFab worth of rows; each at 1/8 current over
        // tRFCpb: total energy is 8 * (1/8) * tRFCpb = tRFCpb at full
        // current, i.e. less than REFab's tRFCab at full current.
        for _ in 0..8 {
            b.record_refpb(t.rfc_pb);
        }
        b.finalize(0);
        let ea = pm.energy(&a, &t).refresh_nj;
        let eb = pm.energy(&b, &t).refresh_nj;
        assert!(eb < ea, "per-bank refresh energy {eb} should be below {ea}");
        assert!((eb / ea - (t.rfc_pb as f64 / t.rfc_ab as f64)).abs() < 1e-9);
    }

    #[test]
    fn background_splits_active_and_standby() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        let pm = PowerModel::new(idd, 1_500, 1);
        let t = timing();
        let mut c = EnergyCounters::new(1);
        c.rank_goes_active(0, 100);
        c.rank_goes_idle(0, 300);
        c.finalize(1_000);
        let e = pm.energy(&c, &t);
        // 200 active cycles at IDD3N + 800 standby at IDD2N.
        let expect = 50.0 * 1.5 * 200.0 * 1_500.0 * 1e-6 + 40.0 * 1.5 * 800.0 * 1_500.0 * 1e-6;
        assert!((e.background_nj - expect).abs() < 1e-9);
    }

    #[test]
    fn idle_transitions_are_idempotent() {
        let mut c = EnergyCounters::new(1);
        c.rank_goes_idle(0, 50); // already idle: no-op
        c.rank_goes_active(0, 100);
        c.rank_goes_active(0, 150); // already active: no-op
        c.rank_goes_idle(0, 200);
        assert_eq!(c.active_rank_cycles(), 100);
    }

    #[test]
    fn per_access_energy_divides_by_accesses() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        let pm = PowerModel::new(idd, 1_500, 1);
        let t = timing();
        let mut c = EnergyCounters::new(1);
        c.record_act();
        c.record_read();
        c.record_read();
        c.finalize(100);
        let e = pm.energy(&c, &t);
        assert_eq!(e.accesses, 2);
        assert!((e.per_access_nj() - e.total_nj() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_access_energy_is_zero_per_access() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.per_access_nj(), 0.0);
    }

    #[test]
    fn paper_iact_iref_relationship() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        assert_eq!(idd.activate_ma(), 50.0);
        assert_eq!(idd.refresh_ma(), 220.0);
    }
}
