//! SARP (Subarray Access Refresh Parallelization) device support.
//!
//! SARP (paper §4.3) modifies the DRAM bank so that one subarray can be kept
//! activated for refresh while a *different* subarray is activated for an
//! access. The two enablers (decoupled refresh-subarray/local-row counters,
//! and the per-subarray column-select gate) are modeled behaviourally:
//!
//! * a refreshing bank records which subarray its refresh occupies
//!   ([`crate::bank::SarpRefresh`]);
//! * `ACT` to that bank is legal iff the target row lies in a different
//!   subarray;
//! * while a parallelized refresh is in flight in a rank, `tFAW` and `tRRD`
//!   are inflated by the power-integrity factor of Eq. (1)–(3) — refreshes
//!   internally perform activations, so allowing concurrent accesses costs
//!   ACT-rate headroom.

use crate::power::IddValues;
use serde::{Deserialize, Serialize};

/// Whether the DRAM device has the SARP modification (paper §4.3.1:
/// ~0.71% die-area overhead on a 2 Gb DDR3 chip).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SarpSupport {
    /// Commodity device: a refreshing bank (or rank, for `REFab`) cannot be
    /// accessed at all until the refresh completes.
    #[default]
    Disabled,
    /// SARP device: idle subarrays of a refreshing bank stay accessible.
    Enabled,
}

impl SarpSupport {
    /// `true` when SARP is available.
    pub fn is_enabled(self) -> bool {
        matches!(self, SarpSupport::Enabled)
    }
}

/// Which refresh granularity a SARP inflation factor applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshScope {
    /// All-bank refresh: every bank refreshes a subarray concurrently.
    AllBank,
    /// Per-bank refresh: a single bank refreshes a subarray.
    PerBank,
}

/// Computes the paper's Eq. (1) power-overhead factor,
/// `(4·I_ACT + I_REF) / (4·I_ACT)`, which multiplies `tFAW` and `tRRD`
/// while a SARP-parallelized refresh is in flight.
///
/// With the Micron 8 Gb IDD values this evaluates to ≈2.1 for all-bank
/// refresh and ≈1.138 for per-bank refresh (per-bank refresh draws 8× less
/// current), matching §4.3.3.
pub fn sarp_inflation(idd: &IddValues, scope: RefreshScope) -> f64 {
    let i_act = idd.activate_ma();
    let i_ref = match scope {
        RefreshScope::AllBank => idd.refresh_ma(),
        RefreshScope::PerBank => idd.refresh_ma() / 8.0,
    };
    (4.0 * i_act + i_ref) / (4.0 * i_act)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_matches_paper_section_4_3_3() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        let ab = sarp_inflation(&idd, RefreshScope::AllBank);
        let pb = sarp_inflation(&idd, RefreshScope::PerBank);
        assert!((ab - 2.1).abs() < 0.01, "all-bank factor = {ab}");
        assert!((pb - 1.138).abs() < 0.005, "per-bank factor = {pb}");
    }

    #[test]
    fn per_bank_inflation_is_always_milder() {
        let idd = IddValues::micron_8gb_ddr3_1333();
        assert!(
            sarp_inflation(&idd, RefreshScope::PerBank)
                < sarp_inflation(&idd, RefreshScope::AllBank)
        );
    }

    #[test]
    fn support_flag() {
        assert!(!SarpSupport::Disabled.is_enabled());
        assert!(SarpSupport::Enabled.is_enabled());
        assert_eq!(SarpSupport::default(), SarpSupport::Disabled);
    }
}
