//! DRAM command set: the bus-level operations a memory controller can issue
//! to a [`crate::DramChannel`].

use crate::timing::FgrMode;
use serde::{Deserialize, Serialize};

/// One DRAM command. All indices are relative to the channel the command is
/// issued on; one command occupies the command bus for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Open `row` in (rank, bank), latching it into the row buffer.
    Activate {
        /// Target rank.
        rank: usize,
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: u32,
    },
    /// Close the open row of (rank, bank).
    Precharge {
        /// Target rank.
        rank: usize,
        /// Target bank.
        bank: usize,
    },
    /// Close the open rows of every bank in `rank` (used before `REFab`).
    PrechargeAll {
        /// Target rank.
        rank: usize,
    },
    /// Read one cache-line column from the open row.
    Read {
        /// Target rank.
        rank: usize,
        /// Target bank.
        bank: usize,
        /// Column (cache-line slot) to read.
        col: u32,
        /// Issue with auto-precharge (closed-row policy).
        auto_precharge: bool,
    },
    /// Write one cache-line column into the open row.
    Write {
        /// Target rank.
        rank: usize,
        /// Target bank.
        bank: usize,
        /// Column (cache-line slot) to write.
        col: u32,
        /// Issue with auto-precharge (closed-row policy).
        auto_precharge: bool,
    },
    /// All-bank refresh (`REFab`): refreshes rows in every bank of `rank`.
    RefreshAllBank {
        /// Target rank.
        rank: usize,
        /// Fine-granularity mode the command is issued in.
        fgr: FgrMode,
    },
    /// Per-bank refresh (`REFpb`): refreshes rows in a single bank.
    ///
    /// The bank index travels on the address bus — the DARP modification of
    /// §4.2.3 (baseline LPDDR uses the in-DRAM round-robin counter instead;
    /// the baseline controller mirrors that counter when choosing `bank`).
    RefreshPerBank {
        /// Target rank.
        rank: usize,
        /// Bank to refresh.
        bank: usize,
    },
}

impl Command {
    /// The rank this command addresses.
    pub fn rank(&self) -> usize {
        match *self {
            Command::Activate { rank, .. }
            | Command::Precharge { rank, .. }
            | Command::PrechargeAll { rank }
            | Command::Read { rank, .. }
            | Command::Write { rank, .. }
            | Command::RefreshAllBank { rank, .. }
            | Command::RefreshPerBank { rank, .. } => rank,
        }
    }

    /// The bank this command addresses, if it is bank-scoped.
    pub fn bank(&self) -> Option<usize> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::RefreshPerBank { bank, .. } => Some(bank),
            Command::PrechargeAll { .. } | Command::RefreshAllBank { .. } => None,
        }
    }

    /// Whether this is a refresh command (either granularity).
    pub fn is_refresh(&self) -> bool {
        matches!(
            self,
            Command::RefreshAllBank { .. } | Command::RefreshPerBank { .. }
        )
    }

    /// Whether this is a column (data-transferring) command.
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::Write { .. })
    }

    /// Short mnemonic used in command traces and timeline printouts.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "ACT",
            Command::Precharge { .. } => "PRE",
            Command::PrechargeAll { .. } => "PREA",
            Command::Read {
                auto_precharge: false,
                ..
            } => "RD",
            Command::Read {
                auto_precharge: true,
                ..
            } => "RDA",
            Command::Write {
                auto_precharge: false,
                ..
            } => "WR",
            Command::Write {
                auto_precharge: true,
                ..
            } => "WRA",
            Command::RefreshAllBank { .. } => "REFab",
            Command::RefreshPerBank { .. } => "REFpb",
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Command::Activate { rank, bank, row } => {
                write!(f, "ACT r{rank} b{bank} row{row}")
            }
            Command::Precharge { rank, bank } => write!(f, "PRE r{rank} b{bank}"),
            Command::PrechargeAll { rank } => write!(f, "PREA r{rank}"),
            Command::Read {
                rank,
                bank,
                col,
                auto_precharge,
            } => {
                write!(
                    f,
                    "RD{} r{rank} b{bank} col{col}",
                    if auto_precharge { "A" } else { "" }
                )
            }
            Command::Write {
                rank,
                bank,
                col,
                auto_precharge,
            } => {
                write!(
                    f,
                    "WR{} r{rank} b{bank} col{col}",
                    if auto_precharge { "A" } else { "" }
                )
            }
            Command::RefreshAllBank { rank, fgr } => write!(f, "REFab r{rank} ({fgr})"),
            Command::RefreshPerBank { rank, bank } => write!(f, "REFpb r{rank} b{bank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Command::Read {
            rank: 1,
            bank: 3,
            col: 9,
            auto_precharge: true,
        };
        assert_eq!(c.rank(), 1);
        assert_eq!(c.bank(), Some(3));
        assert!(c.is_column());
        assert!(!c.is_refresh());
        assert_eq!(c.mnemonic(), "RDA");

        let r = Command::RefreshAllBank {
            rank: 0,
            fgr: FgrMode::X1,
        };
        assert!(r.is_refresh());
        assert_eq!(r.bank(), None);
    }

    #[test]
    fn display_is_compact() {
        let c = Command::Activate {
            rank: 0,
            bank: 7,
            row: 42,
        };
        assert_eq!(c.to_string(), "ACT r0 b7 row42");
        let r = Command::RefreshPerBank { rank: 1, bank: 2 };
        assert_eq!(r.to_string(), "REFpb r1 b2");
    }
}
