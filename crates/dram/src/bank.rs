//! Per-bank state: open row, earliest-issue constraint registers, and
//! refresh occupancy (whole-bank or SARP subarray-level).

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// An in-flight SARP-parallelized refresh inside a bank: the refresh keeps
/// `subarray` activated until `until`, while other subarrays stay available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SarpRefresh {
    /// The subarray held by the refresh operation.
    pub subarray: usize,
    /// First cycle after the refresh completes.
    pub until: Cycle,
}

/// State machine and timing registers for one DRAM bank.
///
/// Earliest-issue registers (`next_*`) encode when each command class next
/// becomes legal for this bank; the channel combines them with rank- and
/// bus-level constraints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    open_row: Option<u32>,
    next_act: Cycle,
    next_col: Cycle,
    next_pre: Cycle,
    /// Cycle of the last ACT (for auto-precharge tRAS accounting).
    last_act: Cycle,
    /// Whole-bank refresh in progress until this cycle (non-SARP refresh).
    refresh_until: Cycle,
    /// SARP refresh in progress (bank otherwise usable).
    sarp_refresh: Option<SarpRefresh>,
    /// Refresh-unit row counter: next row group to refresh in this bank.
    ref_row_counter: u32,
}

impl Bank {
    /// A fresh, precharged, idle bank.
    pub fn new() -> Self {
        Self {
            open_row: None,
            next_act: 0,
            next_col: 0,
            next_pre: 0,
            last_act: 0,
            refresh_until: 0,
            sarp_refresh: None,
            ref_row_counter: 0,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether the bank is precharged (no open row).
    pub fn is_closed(&self) -> bool {
        self.open_row.is_none()
    }

    /// Whether a *whole-bank* refresh is in flight at `now`.
    pub fn is_refresh_busy(&self, now: Cycle) -> bool {
        now < self.refresh_until
    }

    /// The SARP refresh in flight at `now`, if any.
    pub fn sarp_refresh(&self, now: Cycle) -> Option<SarpRefresh> {
        self.sarp_refresh.filter(|r| now < r.until)
    }

    /// Earliest cycle an `ACT` may issue (bank-local constraints only).
    pub fn next_act(&self) -> Cycle {
        self.next_act.max(self.refresh_until)
    }

    /// Earliest cycle a column command may issue (bank-local).
    pub fn next_col(&self) -> Cycle {
        self.next_col
    }

    /// Earliest cycle a `PRE` may issue (bank-local).
    pub fn next_pre(&self) -> Cycle {
        self.next_pre
    }

    /// Cycle of the most recent `ACT`.
    pub fn last_act(&self) -> Cycle {
        self.last_act
    }

    /// Refresh-unit row counter (next row to be refreshed in this bank).
    pub fn ref_row_counter(&self) -> u32 {
        self.ref_row_counter
    }

    /// First cycle after the bank's whole-bank refresh window (0 if none
    /// was ever issued). `is_refresh_busy(c)` is exactly `c < refresh_until()`.
    pub fn refresh_until(&self) -> Cycle {
        self.refresh_until
    }

    /// The earliest cycle strictly after `now` at which one of this bank's
    /// timing constraints expires, or `None` when every constraint is
    /// already satisfied (a quiescent bank generates no events).
    ///
    /// This is a conservative event source for the skip-ahead loop: while
    /// no command is issued to the bank, its registers are frozen, so the
    /// earliest future expiry is the only cycle its availability can
    /// change.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        consider(self.next_act());
        consider(self.next_col);
        consider(self.next_pre);
        consider(self.refresh_until);
        if let Some(r) = self.sarp_refresh {
            consider(r.until);
        }
        next
    }

    // ---- mutations driven by the channel on command issue ----

    /// Applies an `ACT` issued at `t`.
    pub(crate) fn do_activate(&mut self, t: Cycle, row: u32, timing: &crate::TimingParams) {
        debug_assert!(self.open_row.is_none());
        self.open_row = Some(row);
        self.last_act = t;
        self.next_col = t + timing.rcd;
        self.next_pre = t + timing.ras;
        self.next_act = t + timing.rc;
    }

    /// Applies a `RD`/`WR` issued at `t`. `pre_floor` is the earliest cycle
    /// the bank may subsequently be precharged as a consequence of this
    /// column access (`t + tRTP` for reads, `t + CWL + BL + tWR` for writes).
    pub(crate) fn do_column(
        &mut self,
        pre_floor: Cycle,
        auto_precharge: bool,
        timing: &crate::TimingParams,
    ) {
        debug_assert!(self.open_row.is_some());
        self.next_pre = self.next_pre.max(pre_floor);
        if auto_precharge {
            // The device starts the precharge itself once both tRAS (since
            // ACT) and the column-side floor are satisfied.
            let pre_start = self.next_pre.max(self.last_act + timing.ras);
            self.open_row = None;
            self.next_act = self.next_act.max(pre_start + timing.rp);
        }
    }

    /// Applies a `PRE` issued at `t`.
    pub(crate) fn do_precharge(&mut self, t: Cycle, timing: &crate::TimingParams) {
        debug_assert!(self.open_row.is_some());
        self.open_row = None;
        self.next_act = self.next_act.max(t + timing.rp);
    }

    /// Applies a whole-bank (non-SARP) refresh occupying the bank until
    /// `until`.
    pub(crate) fn do_refresh_blocking(&mut self, until: Cycle) {
        debug_assert!(self.open_row.is_none());
        self.refresh_until = until;
    }

    /// Applies a SARP refresh of `subarray` lasting until `until`.
    pub(crate) fn do_refresh_sarp(&mut self, subarray: usize, until: Cycle) {
        self.sarp_refresh = Some(SarpRefresh { subarray, until });
    }

    /// Advances the refresh row counter by `rows`, wrapping at
    /// `rows_per_bank`, and returns the first refreshed row.
    pub(crate) fn advance_ref_counter(&mut self, rows: u32, rows_per_bank: u32) -> u32 {
        let first = self.ref_row_counter;
        self.ref_row_counter = (self.ref_row_counter + rows) % rows_per_bank;
        first
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Density, Retention, TimingParams};

    fn t() -> TimingParams {
        TimingParams::ddr3_1333(Density::G8, Retention::Ms32)
    }

    #[test]
    fn activate_sets_constraint_registers() {
        let timing = t();
        let mut b = Bank::new();
        b.do_activate(100, 7, &timing);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.next_col(), 100 + timing.rcd);
        assert_eq!(b.next_pre(), 100 + timing.ras);
        assert_eq!(b.next_act(), 100 + timing.rc);
    }

    #[test]
    fn read_extends_precharge_floor_only_forward() {
        let timing = t();
        let mut b = Bank::new();
        b.do_activate(0, 1, &timing);
        // A read late in the row's life pushes next_pre past tRAS.
        b.do_column(40, false, &timing);
        assert_eq!(b.next_pre(), 40);
        // An earlier floor does not pull it back.
        b.do_column(10, false, &timing);
        assert_eq!(b.next_pre(), 40);
    }

    #[test]
    fn auto_precharge_closes_row_and_schedules_next_act() {
        let timing = t();
        let mut b = Bank::new();
        b.do_activate(0, 1, &timing);
        // Read at t=9 -> pre floor t+tRTP=14, but tRAS=24 dominates.
        b.do_column(14, true, &timing);
        assert!(b.is_closed());
        assert_eq!(b.next_act(), (timing.ras + timing.rp).max(timing.rc));
    }

    #[test]
    fn precharge_closes_and_gates_act_by_trp() {
        let timing = t();
        let mut b = Bank::new();
        b.do_activate(0, 3, &timing);
        b.do_precharge(24, &timing);
        assert!(b.is_closed());
        assert_eq!(b.next_act(), timing.rc.max(24 + timing.rp));
    }

    #[test]
    fn blocking_refresh_gates_act() {
        let mut b = Bank::new();
        b.do_refresh_blocking(500);
        assert!(b.is_refresh_busy(499));
        assert!(!b.is_refresh_busy(500));
        assert_eq!(b.next_act(), 500);
    }

    #[test]
    fn sarp_refresh_expires() {
        let mut b = Bank::new();
        b.do_refresh_sarp(3, 200);
        assert_eq!(b.sarp_refresh(100).map(|r| r.subarray), Some(3));
        assert_eq!(b.sarp_refresh(200), None);
        // A SARP refresh does not gate ACT at the bank level.
        assert_eq!(b.next_act(), 0);
    }

    #[test]
    fn next_event_reports_earliest_pending_expiry() {
        let timing = t();
        let mut b = Bank::new();
        assert_eq!(b.next_event(0), None, "quiescent bank has no events");
        // Under a blocking refresh (tRFC tail) the only event is its end.
        b.do_refresh_blocking(500);
        assert_eq!(b.next_event(100), Some(500));
        assert_eq!(b.next_event(500), None);
        let mut b = Bank::new();
        b.do_activate(100, 7, &timing);
        // tRCD expires first, then tRAS, then tRC.
        assert_eq!(b.next_event(100), Some(100 + timing.rcd));
        assert_eq!(b.next_event(100 + timing.rcd), Some(100 + timing.ras));
        assert_eq!(b.next_event(100 + timing.ras), Some(100 + timing.rc));
        assert_eq!(b.next_event(100 + timing.rc), None);
    }

    #[test]
    fn ref_counter_wraps() {
        let mut b = Bank::new();
        let first = b.advance_ref_counter(8, 16);
        assert_eq!(first, 0);
        assert_eq!(b.ref_row_counter(), 8);
        b.advance_ref_counter(8, 16);
        assert_eq!(b.ref_row_counter(), 0);
    }
}
