//! DRAM hierarchy geometry and physical-address mapping.
//!
//! The paper's system (Table 1): 2 channels, 2 ranks per channel, 8 banks per
//! rank, 8 subarrays per bank, 64 K rows per bank, 8 KB rows, 64 B cache
//! lines. Addresses are interleaved so that consecutive cache lines within a
//! row stay in the same (rank, bank, row) — preserving row-buffer locality —
//! while channels interleave at line granularity.

use serde::{Deserialize, Serialize};

/// Shape of the DRAM system: channels × ranks × banks × subarrays × rows.
///
/// All dimension counts must be powers of two and `rows_per_bank` must be a
/// multiple of `subarrays_per_bank`; [`Geometry::new`] validates this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    channels: usize,
    ranks_per_channel: usize,
    banks_per_rank: usize,
    subarrays_per_bank: usize,
    rows_per_bank: usize,
    row_bytes: usize,
    line_bytes: usize,
}

/// Error returned by [`Geometry::new`] for invalid shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension was zero or not a power of two.
    NotPowerOfTwo(&'static str),
    /// `rows_per_bank` is not divisible by `subarrays_per_bank`.
    SubarraysDontDivideRows,
    /// `row_bytes` is not divisible by `line_bytes`.
    LinesDontDivideRow,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo(dim) => {
                write!(f, "dimension `{dim}` must be a nonzero power of two")
            }
            GeometryError::SubarraysDontDivideRows => {
                write!(f, "subarrays_per_bank must divide rows_per_bank")
            }
            GeometryError::LinesDontDivideRow => {
                write!(f, "line_bytes must divide row_bytes")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// A fully decoded physical location: which channel, rank, bank, row and
/// column (cache-line slot within the row) an address maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u32,
    /// Cache-line column index within the row.
    pub col: u32,
}

impl Geometry {
    /// Creates a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any dimension is zero / not a power of
    /// two, or the divisibility requirements fail.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        channels: usize,
        ranks_per_channel: usize,
        banks_per_rank: usize,
        subarrays_per_bank: usize,
        rows_per_bank: usize,
        row_bytes: usize,
        line_bytes: usize,
    ) -> Result<Self, GeometryError> {
        fn pow2(v: usize, name: &'static str) -> Result<(), GeometryError> {
            if v == 0 || !v.is_power_of_two() {
                Err(GeometryError::NotPowerOfTwo(name))
            } else {
                Ok(())
            }
        }
        pow2(channels, "channels")?;
        pow2(ranks_per_channel, "ranks_per_channel")?;
        pow2(banks_per_rank, "banks_per_rank")?;
        pow2(subarrays_per_bank, "subarrays_per_bank")?;
        pow2(rows_per_bank, "rows_per_bank")?;
        pow2(row_bytes, "row_bytes")?;
        pow2(line_bytes, "line_bytes")?;
        if !rows_per_bank.is_multiple_of(subarrays_per_bank) {
            return Err(GeometryError::SubarraysDontDivideRows);
        }
        if !row_bytes.is_multiple_of(line_bytes) {
            return Err(GeometryError::LinesDontDivideRow);
        }
        Ok(Self {
            channels,
            ranks_per_channel,
            banks_per_rank,
            subarrays_per_bank,
            rows_per_bank,
            row_bytes,
            line_bytes,
        })
    }

    /// The paper's evaluated configuration (Table 1): 2 channels × 2 ranks ×
    /// 8 banks × 8 subarrays × 64 K rows, 8 KB rows, 64 B lines.
    pub fn paper_default() -> Self {
        Self::new(2, 2, 8, 8, 65_536, 8_192, 64).expect("paper configuration is valid")
    }

    /// Same as [`Geometry::paper_default`] but with a different number of
    /// subarrays per bank (the paper's Table 5 sweeps 1–64).
    pub fn with_subarrays(self, subarrays_per_bank: usize) -> Result<Self, GeometryError> {
        Self::new(
            self.channels,
            self.ranks_per_channel,
            self.banks_per_rank,
            subarrays_per_bank,
            self.rows_per_bank,
            self.row_bytes,
            self.line_bytes,
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Ranks per channel.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks_per_channel
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// Subarrays per bank (a "subarray" is a group of physical subarrays
    /// sharing one set of local sense amplifiers, per the paper's §2.1).
    pub fn subarrays_per_bank(&self) -> usize {
        self.subarrays_per_bank
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> usize {
        self.rows_per_bank
    }

    /// Row (page) size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Cache-line columns per row.
    pub fn cols_per_row(&self) -> usize {
        self.row_bytes / self.line_bytes
    }

    /// Rows per subarray.
    pub fn rows_per_subarray(&self) -> usize {
        self.rows_per_bank / self.subarrays_per_bank
    }

    /// The subarray a row belongs to. Rows are laid out consecutively within
    /// a subarray, matching the sequential walk of the refresh row counter.
    pub fn subarray_of_row(&self, row: u32) -> usize {
        row as usize / self.rows_per_subarray()
    }

    /// Total addressable bytes across all channels.
    pub fn capacity_bytes(&self) -> u64 {
        (self.channels * self.ranks_per_channel * self.banks_per_rank) as u64
            * self.rows_per_bank as u64
            * self.row_bytes as u64
    }

    /// Rows refreshed by one refresh command per bank at 1x granularity.
    ///
    /// The retention window is divided into 8192 refresh commands (§2.2.1:
    /// 64 ms / 7.8 µs ≈ 8192), so each command covers
    /// `rows_per_bank / 8192` rows in each refreshed bank.
    pub fn rows_per_refresh(&self) -> u32 {
        (self.rows_per_bank / crate::timing::REFRESH_COMMANDS_PER_WINDOW).max(1) as u32
    }

    /// Number of refresh "groups" per bank: the granularity at which the
    /// retention tracker records refreshes.
    pub fn refresh_groups_per_bank(&self) -> usize {
        self.rows_per_bank / self.rows_per_refresh() as usize
    }

    /// Decodes a physical address into its DRAM location.
    ///
    /// Bit layout, low to high:
    /// `line offset | channel | column | bank | rank | row`.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> self.line_bytes.trailing_zeros();
        let channel = (a & (self.channels as u64 - 1)) as usize;
        a >>= self.channels.trailing_zeros();
        let cols = self.cols_per_row();
        let col = (a & (cols as u64 - 1)) as u32;
        a >>= cols.trailing_zeros();
        let bank = (a & (self.banks_per_rank as u64 - 1)) as usize;
        a >>= self.banks_per_rank.trailing_zeros();
        let rank = (a & (self.ranks_per_channel as u64 - 1)) as usize;
        a >>= self.ranks_per_channel.trailing_zeros();
        let row = (a & (self.rows_per_bank as u64 - 1)) as u32;
        Location {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Encodes a DRAM location back into the (line-aligned) physical address.
    ///
    /// Inverse of [`Geometry::decode`] for line-aligned addresses.
    pub fn encode(&self, loc: &Location) -> u64 {
        let mut a = loc.row as u64;
        a = (a << self.ranks_per_channel.trailing_zeros()) | loc.rank as u64;
        a = (a << self.banks_per_rank.trailing_zeros()) | loc.bank as u64;
        a = (a << self.cols_per_row().trailing_zeros()) | loc.col as u64;
        a = (a << self.channels.trailing_zeros()) | loc.channel as u64;
        a << self.line_bytes.trailing_zeros()
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let g = Geometry::paper_default();
        assert_eq!(g.channels(), 2);
        assert_eq!(g.ranks_per_channel(), 2);
        assert_eq!(g.banks_per_rank(), 8);
        assert_eq!(g.subarrays_per_bank(), 8);
        assert_eq!(g.rows_per_bank(), 65_536);
        assert_eq!(g.cols_per_row(), 128);
        assert_eq!(g.rows_per_subarray(), 8_192);
    }

    #[test]
    fn rows_per_refresh_is_eight_for_64k_rows() {
        let g = Geometry::paper_default();
        assert_eq!(g.rows_per_refresh(), 8);
        assert_eq!(g.refresh_groups_per_bank(), 8_192);
    }

    #[test]
    fn subarray_of_row_walks_in_blocks() {
        let g = Geometry::paper_default();
        assert_eq!(g.subarray_of_row(0), 0);
        assert_eq!(g.subarray_of_row(8_191), 0);
        assert_eq!(g.subarray_of_row(8_192), 1);
        assert_eq!(g.subarray_of_row(65_535), 7);
    }

    #[test]
    fn decode_encode_roundtrip_examples() {
        let g = Geometry::paper_default();
        for addr in [0u64, 64, 128, 4096, 1 << 20, (1 << 33) - 64] {
            let loc = g.decode(addr);
            assert_eq!(g.encode(&loc), addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn consecutive_lines_alternate_channels_then_columns() {
        let g = Geometry::paper_default();
        let a = g.decode(0);
        let b = g.decode(64);
        let c = g.decode(128);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 0);
        assert_eq!(c.col, a.col + 1);
        assert_eq!(c.bank, a.bank);
        assert_eq!(c.row, a.row);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert_eq!(
            Geometry::new(3, 2, 8, 8, 65_536, 8_192, 64),
            Err(GeometryError::NotPowerOfTwo("channels"))
        );
        assert_eq!(
            Geometry::new(2, 2, 8, 8, 0, 8_192, 64),
            Err(GeometryError::NotPowerOfTwo("rows_per_bank"))
        );
    }

    #[test]
    fn subarray_sweep_variants_are_valid() {
        let g = Geometry::paper_default();
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let g2 = g.with_subarrays(n).unwrap();
            assert_eq!(g2.subarrays_per_bank(), n);
            assert_eq!(g2.rows_per_subarray() * n, g2.rows_per_bank());
        }
    }

    #[test]
    fn capacity_matches_dims() {
        let g = Geometry::paper_default();
        // 2ch * 2rk * 8bk * 64K rows * 8KB = 16 GiB of addressable space.
        assert_eq!(g.capacity_bytes(), 16 * (1u64 << 30));
    }
}
