//! Serial Presence Detect (SPD) blob.
//!
//! The paper's §4.3.2: the memory controller learns the number of subarrays
//! per bank (and the usual geometry/timing facts) from the module's SPD
//! EEPROM at boot. This module encodes/decodes a compact SPD image with a
//! checksum, mimicking JEDEC Standard 21-C Annex K at the granularity this
//! simulator needs.

use crate::{Density, Geometry, Retention, TimingParams};
use serde::{Deserialize, Serialize};

/// Size of the encoded SPD image in bytes.
pub const SPD_BYTES: usize = 32;

const MAGIC: u16 = 0x5D5D;

/// Decoded SPD contents: what the controller reads at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpdData {
    /// Device density.
    pub density: Density,
    /// Retention-time class.
    pub retention: Retention,
    /// Banks per rank.
    pub banks_per_rank: u8,
    /// log2(rows per bank).
    pub row_bits: u8,
    /// log2(columns per row).
    pub col_bits: u8,
    /// Subarrays per bank — the SARP-specific vendor byte (§4.3.2).
    pub subarrays_per_bank: u8,
    /// Whether the device implements SARP.
    pub sarp_capable: bool,
}

/// Errors from [`SpdData::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpdError {
    /// The image does not start with the SPD magic number.
    BadMagic,
    /// The checksum over the payload does not match.
    BadChecksum,
    /// A field holds an unrepresentable value.
    BadField(&'static str),
}

impl std::fmt::Display for SpdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpdError::BadMagic => write!(f, "SPD image has wrong magic number"),
            SpdError::BadChecksum => write!(f, "SPD checksum mismatch"),
            SpdError::BadField(name) => write!(f, "SPD field `{name}` is invalid"),
        }
    }
}

impl std::error::Error for SpdError {}

impl SpdData {
    /// Builds the SPD contents describing a simulated module.
    pub fn describe(geom: &Geometry, timing: &TimingParams, sarp_capable: bool) -> Self {
        Self {
            density: timing.density,
            retention: timing.retention,
            banks_per_rank: geom.banks_per_rank() as u8,
            row_bits: geom.rows_per_bank().trailing_zeros() as u8,
            col_bits: geom.cols_per_row().trailing_zeros() as u8,
            subarrays_per_bank: geom.subarrays_per_bank() as u8,
            sarp_capable,
        }
    }

    /// Encodes the SPD image.
    pub fn encode(&self) -> [u8; SPD_BYTES] {
        let mut b = [0u8; SPD_BYTES];
        b[0] = (MAGIC >> 8) as u8;
        b[1] = (MAGIC & 0xff) as u8;
        b[2] = match self.density {
            Density::G8 => 8,
            Density::G16 => 16,
            Density::G32 => 32,
            Density::G64 => 64,
        };
        b[3] = self.retention.window_ms() as u8;
        b[4] = self.banks_per_rank;
        b[5] = self.row_bits;
        b[6] = self.col_bits;
        b[7] = self.subarrays_per_bank;
        b[8] = self.sarp_capable as u8;
        let sum: u16 = b[2..SPD_BYTES - 2].iter().map(|&x| x as u16).sum();
        b[SPD_BYTES - 2] = (sum >> 8) as u8;
        b[SPD_BYTES - 1] = (sum & 0xff) as u8;
        b
    }

    /// Decodes an SPD image.
    ///
    /// # Errors
    ///
    /// Returns [`SpdError`] for corrupt or unrepresentable images.
    pub fn decode(b: &[u8; SPD_BYTES]) -> Result<Self, SpdError> {
        if u16::from(b[0]) << 8 | u16::from(b[1]) != MAGIC {
            return Err(SpdError::BadMagic);
        }
        let sum: u16 = b[2..SPD_BYTES - 2].iter().map(|&x| x as u16).sum();
        if (u16::from(b[SPD_BYTES - 2]) << 8 | u16::from(b[SPD_BYTES - 1])) != sum {
            return Err(SpdError::BadChecksum);
        }
        let density = match b[2] {
            8 => Density::G8,
            16 => Density::G16,
            32 => Density::G32,
            64 => Density::G64,
            _ => return Err(SpdError::BadField("density")),
        };
        let retention = match b[3] {
            32 => Retention::Ms32,
            64 => Retention::Ms64,
            _ => return Err(SpdError::BadField("retention")),
        };
        if b[4] == 0 || !b[4].is_power_of_two() {
            return Err(SpdError::BadField("banks_per_rank"));
        }
        if b[7] == 0 || !b[7].is_power_of_two() {
            return Err(SpdError::BadField("subarrays_per_bank"));
        }
        Ok(Self {
            density,
            retention,
            banks_per_rank: b[4],
            row_bits: b[5],
            col_bits: b[6],
            subarrays_per_bank: b[7],
            sarp_capable: b[8] != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> SpdData {
        let geom = Geometry::paper_default();
        let timing = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        SpdData::describe(&geom, &timing, true)
    }

    #[test]
    fn roundtrip() {
        let s = spd();
        let img = s.encode();
        assert_eq!(SpdData::decode(&img).unwrap(), s);
    }

    #[test]
    fn describes_geometry() {
        let s = spd();
        assert_eq!(s.subarrays_per_bank, 8);
        assert_eq!(s.banks_per_rank, 8);
        assert_eq!(s.row_bits, 16);
        assert_eq!(s.col_bits, 7);
        assert!(s.sarp_capable);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut img = spd().encode();
        img[0] = 0;
        assert_eq!(SpdData::decode(&img), Err(SpdError::BadMagic));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut img = spd().encode();
        img[7] ^= 0xff;
        assert_eq!(SpdData::decode(&img), Err(SpdError::BadChecksum));
    }

    #[test]
    fn bad_field_detected_when_checksum_fixed() {
        let mut s = spd();
        s.subarrays_per_bank = 3; // not a power of two
        let img = s.encode();
        assert_eq!(
            SpdData::decode(&img),
            Err(SpdError::BadField("subarrays_per_bank"))
        );
    }
}
