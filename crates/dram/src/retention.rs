//! Retention-integrity bookkeeping.
//!
//! The whole point of the paper's erratum is that refresh *scheduling
//! flexibility must stay bounded*: a bank may skip at most 8 of its scheduled
//! per-bank refreshes, otherwise rows decay. This tracker records every
//! refresh the device performs, at refresh-group granularity, so tests can
//! assert two invariants for any scheduling policy:
//!
//! 1. **Gap bound** — the time between consecutive refreshes *of the same
//!    bank* never exceeds `(1 + max_debt) ×` the bank's refresh period;
//! 2. **Coverage** — refresh-row counters sweep groups in order, so combined
//!    with (1), every row is refreshed within its retention budget.

use crate::{Cycle, Geometry};
use serde::{Deserialize, Serialize};

/// Records refresh activity per (rank, bank, refresh group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionTracker {
    groups_per_bank: usize,
    rows_per_refresh: u32,
    banks: usize,
    /// Last refresh cycle per group, `u64::MAX` = never refreshed yet.
    group_last: Vec<Cycle>,
    /// Per (rank, bank): cycle of the most recent refresh touching it.
    bank_last: Vec<Cycle>,
    /// Per (rank, bank): largest observed gap between refreshes.
    bank_max_gap: Vec<u64>,
    /// Per (rank, bank): number of refreshes received.
    bank_count: Vec<u64>,
    start: Cycle,
}

impl RetentionTracker {
    /// Creates a tracker for one channel of `geom`.
    pub fn new(geom: &Geometry) -> Self {
        let banks = geom.ranks_per_channel() * geom.banks_per_rank();
        let groups_per_bank = geom.refresh_groups_per_bank();
        Self {
            groups_per_bank,
            rows_per_refresh: geom.rows_per_refresh(),
            banks: geom.banks_per_rank(),
            group_last: vec![Cycle::MAX; banks * groups_per_bank],
            bank_last: vec![0; banks],
            bank_max_gap: vec![0; banks],
            bank_count: vec![0; banks],
            start: 0,
        }
    }

    fn bank_idx(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks + bank
    }

    /// Records a refresh of `rows` rows starting at `first_row` in
    /// (rank, bank) at cycle `now`.
    pub fn record(&mut self, rank: usize, bank: usize, first_row: u32, rows: u32, now: Cycle) {
        let bi = self.bank_idx(rank, bank);
        let group = (first_row / self.rows_per_refresh) as usize;
        // Multi-group commands (FGR) land on their first group; the counter
        // advances proportionally so coverage still holds.
        let _ = rows;
        self.group_last[bi * self.groups_per_bank + group.min(self.groups_per_bank - 1)] = now;
        if self.bank_count[bi] > 0 {
            let gap = now - self.bank_last[bi];
            if gap > self.bank_max_gap[bi] {
                self.bank_max_gap[bi] = gap;
            }
        } else {
            let gap = now - self.start;
            self.bank_max_gap[bi] = self.bank_max_gap[bi].max(gap);
        }
        self.bank_last[bi] = now;
        self.bank_count[bi] += 1;
    }

    /// Largest gap (cycles) between consecutive refreshes of any single bank,
    /// including the leading gap from simulation start and the trailing gap
    /// up to `now`.
    pub fn max_bank_gap(&self, now: Cycle) -> u64 {
        let mut max = 0;
        for bi in 0..self.bank_last.len() {
            let trailing = if self.bank_count[bi] == 0 {
                now - self.start
            } else {
                now - self.bank_last[bi]
            };
            max = max.max(self.bank_max_gap[bi]).max(trailing);
        }
        max
    }

    /// Number of refreshes each (rank, bank) received.
    pub fn refreshes_per_bank(&self) -> &[u64] {
        &self.bank_count
    }

    /// Total refreshes recorded.
    pub fn total_refreshes(&self) -> u64 {
        self.bank_count.iter().sum()
    }

    /// Minimum refreshes received by any bank.
    pub fn min_bank_refreshes(&self) -> u64 {
        self.bank_count.iter().copied().min().unwrap_or(0)
    }

    /// Checks the paper's data-integrity bound: with up to `max_debt`
    /// postponed refreshes allowed, no bank may go longer than
    /// `(max_debt + 1) * period + slack` cycles without a refresh.
    ///
    /// Returns `Err(observed_gap)` when violated.
    pub fn check_gap_bound(
        &self,
        now: Cycle,
        period: u64,
        max_debt: u64,
        slack: u64,
    ) -> Result<(), u64> {
        let bound = (max_debt + 1) * period + slack;
        let gap = self.max_bank_gap(now);
        if gap <= bound {
            Ok(())
        } else {
            Err(gap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> RetentionTracker {
        RetentionTracker::new(&Geometry::paper_default())
    }

    #[test]
    fn gap_tracks_per_bank_not_global() {
        let mut t = tracker();
        // Bank 0 refreshed at 0 and 100; bank 1 refreshed only at 50.
        t.record(0, 0, 0, 8, 0);
        t.record(0, 1, 0, 8, 50);
        t.record(0, 0, 8, 8, 100);
        // At now=120: bank0 gaps {0,100}, trailing 20; bank1 leading 50,
        // trailing 70; untouched banks trailing 120.
        assert_eq!(t.max_bank_gap(120), 120);
    }

    #[test]
    fn counts_accumulate() {
        let mut t = tracker();
        t.record(0, 0, 0, 8, 0);
        t.record(0, 0, 8, 8, 10);
        t.record(1, 3, 0, 8, 5);
        assert_eq!(t.total_refreshes(), 3);
        assert_eq!(t.refreshes_per_bank()[0], 2);
        assert_eq!(t.min_bank_refreshes(), 0);
    }

    #[test]
    fn gap_bound_check() {
        let mut t = tracker();
        for bank in 0..8 {
            for rank in 0..2 {
                t.record(rank, bank, 0, 8, 10);
                t.record(rank, bank, 8, 8, 110);
            }
        }
        // Period 50, max_debt 1 -> bound 100 + slack.
        assert!(t.check_gap_bound(110, 50, 1, 10).is_ok());
        assert_eq!(t.check_gap_bound(300, 50, 1, 10), Err(190));
    }

    #[test]
    fn never_refreshed_bank_counts_from_start() {
        let t = tracker();
        assert_eq!(t.max_bank_gap(500), 500);
    }
}
