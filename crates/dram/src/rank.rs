//! Per-rank state: activation-rate limits (`tRRD`, `tFAW`) with SARP
//! power-integrity inflation, refresh occupancy, and bank aggregation.

use crate::bank::Bank;
use crate::{Cycle, TimingParams};
use serde::{Deserialize, Serialize};

/// Rank-level state: the banks plus rank-scoped timing constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Timestamps of recent activations (refreshes count too), newest last.
    /// Only the last 4 matter for `tFAW`; the last one for `tRRD`.
    act_history: [Cycle; 4],
    act_count: u64,
    /// In-flight `REFpb` completion deadlines. The JEDEC LPDDR3 standard
    /// allows exactly one (`max_refpb` = 1); the paper's footnote 5 sketches
    /// a modified standard allowing a subset of banks to overlap, modeled by
    /// `max_refpb` > 1.
    refpb_deadlines: Vec<Cycle>,
    /// Concurrent `REFpb` limit (1 = JEDEC behaviour).
    max_refpb: usize,
    /// Whole-rank `REFab` busy window (non-SARP all-bank refresh).
    refab_until: Cycle,
    /// SARP inflation window: while `now < sarp_until`, effective
    /// `tRRD`/`tFAW` are multiplied by `sarp_factor`.
    sarp_until: Cycle,
    sarp_factor: f64,
}

impl Rank {
    /// Creates a rank with `banks` precharged banks.
    pub fn new(banks: usize) -> Self {
        Self {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            act_history: [Cycle::MIN; 4],
            act_count: 0,
            refpb_deadlines: Vec::new(),
            max_refpb: 1,
            refab_until: 0,
            sarp_until: 0,
            sarp_factor: 1.0,
        }
    }

    /// Immutable access to a bank.
    pub fn bank(&self, idx: usize) -> &Bank {
        &self.banks[idx]
    }

    /// Mutable access to a bank (crate-internal; the channel drives it).
    pub(crate) fn bank_mut(&mut self, idx: usize) -> &mut Bank {
        &mut self.banks[idx]
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Iterator over banks.
    pub fn banks(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Whether every bank is precharged (required before `REFab`).
    pub fn all_banks_closed(&self) -> bool {
        self.banks.iter().all(Bank::is_closed)
    }

    /// Whether a non-SARP all-bank refresh is in flight at `now`.
    pub fn is_refab_busy(&self, now: Cycle) -> bool {
        now < self.refab_until
    }

    /// Whether the rank cannot accept another `REFpb` at `now`: under JEDEC
    /// rules one in flight saturates the rank; with the footnote-5 overlap
    /// extension, up to `max_refpb` may proceed concurrently.
    pub fn is_refpb_busy(&self, now: Cycle) -> bool {
        self.refpb_in_flight(now) >= self.max_refpb
    }

    /// Number of `REFpb` operations in flight at `now`.
    pub fn refpb_in_flight(&self, now: Cycle) -> usize {
        self.refpb_deadlines.iter().filter(|&&d| now < d).count()
    }

    /// First cycle after the *latest* in-flight `REFpb` window.
    pub fn refpb_until(&self) -> Cycle {
        self.refpb_deadlines.iter().copied().max().unwrap_or(0)
    }

    /// When the rank is `REFpb`-saturated at `now`, the earliest cycle a
    /// slot frees up (the *minimum* in-flight deadline); `None` while a
    /// slot is already free.
    pub fn refpb_slot_free(&self, now: Cycle) -> Option<Cycle> {
        if self.is_refpb_busy(now) {
            self.refpb_deadlines
                .iter()
                .copied()
                .filter(|&d| d > now)
                .min()
        } else {
            None
        }
    }

    /// First cycle after the rank's blocking `REFab` window (0 if none was
    /// ever issued). `is_refab_busy(c)` is exactly `c < refab_until()`.
    pub fn refab_until(&self) -> Cycle {
        self.refab_until
    }

    /// Sets the concurrent `REFpb` limit (footnote-5 extension; 1 = JEDEC).
    pub(crate) fn set_max_refpb(&mut self, max: usize) {
        assert!(max >= 1);
        self.max_refpb = max;
    }

    /// Effective `tRRD` at `now`, including SARP inflation (Eq. 3).
    pub fn effective_rrd(&self, now: Cycle, timing: &TimingParams) -> u64 {
        if now < self.sarp_until {
            ((timing.rrd as f64) * self.sarp_factor).ceil() as u64
        } else {
            timing.rrd
        }
    }

    /// Effective `tFAW` at `now`, including SARP inflation (Eq. 2).
    pub fn effective_faw(&self, now: Cycle, timing: &TimingParams) -> u64 {
        if now < self.sarp_until {
            ((timing.faw as f64) * self.sarp_factor).ceil() as u64
        } else {
            timing.faw
        }
    }

    /// Earliest cycle a new activation (ACT or internal refresh activation)
    /// may start, considering `tRRD` and the four-activate window.
    pub fn next_act_allowed(&self, now: Cycle, timing: &TimingParams) -> Cycle {
        let mut t = now;
        if self.act_count > 0 {
            let last = self.act_history[((self.act_count - 1) % 4) as usize];
            t = t.max(last + self.effective_rrd(now, timing));
        }
        if self.act_count >= 4 {
            let fourth_last = self.act_history[(self.act_count % 4) as usize];
            t = t.max(fourth_last + self.effective_faw(now, timing));
        }
        t
    }

    /// The earliest cycle `c >= now` at which `next_act_allowed(c) == c` —
    /// i.e. when the rank's activation rate limits next admit an ACT.
    ///
    /// Unlike [`Rank::next_act_allowed`] (which answers "how long must an
    /// ACT issued *now* wait"), this solves for the release time directly,
    /// which requires handling the SARP inflation window's two regimes:
    /// the effective `tRRD`/`tFAW` are inflated for query cycles before
    /// `sarp_until` and nominal after it, so the earliest legal cycle is
    /// the inflated-regime bound if it lands inside the window, and
    /// otherwise the nominal bound clamped to the window's end.
    pub fn earliest_act_allowed(&self, now: Cycle, timing: &TimingParams) -> Cycle {
        let bound = |rrd: u64, faw: u64| {
            let mut t = now;
            if self.act_count > 0 {
                let last = self.act_history[((self.act_count - 1) % 4) as usize];
                t = t.max(last + rrd);
            }
            if self.act_count >= 4 {
                let fourth_last = self.act_history[(self.act_count % 4) as usize];
                t = t.max(fourth_last + faw);
            }
            t
        };
        if now >= self.sarp_until {
            return bound(timing.rrd, timing.faw);
        }
        let inflate = |v: u64| ((v as f64) * self.sarp_factor).ceil() as u64;
        let t_inflated = bound(inflate(timing.rrd), inflate(timing.faw));
        if t_inflated < self.sarp_until {
            t_inflated
        } else {
            // Nominal rates only apply from the window's end onward.
            bound(timing.rrd, timing.faw).max(self.sarp_until)
        }
    }

    /// Records an activation at `t` (ACTs and refreshes both count toward
    /// the rate limits — refreshes internally activate rows, §4.3.3).
    pub(crate) fn record_act(&mut self, t: Cycle) {
        self.act_history[(self.act_count % 4) as usize] = t;
        self.act_count += 1;
    }

    /// Marks a `REFpb` starting at `now` and occupying one refresh slot
    /// until `until`. The caller must have checked capacity via
    /// [`Rank::is_refpb_busy`].
    pub(crate) fn start_refpb(&mut self, now: Cycle, until: Cycle) {
        debug_assert!(self.refpb_in_flight(now) < self.max_refpb);
        // Reuse an expired slot so the vec stays bounded by max_refpb.
        if let Some(slot) = self.refpb_deadlines.iter_mut().find(|d| **d <= now) {
            *slot = until;
        } else {
            self.refpb_deadlines.push(until);
        }
        debug_assert!(self.refpb_deadlines.len() <= self.max_refpb);
    }

    /// Marks a blocking `REFab` occupying the whole rank until `until`.
    pub(crate) fn start_refab_blocking(&mut self, until: Cycle) {
        self.refab_until = until;
    }

    /// Opens a SARP inflation window `[now, until)` with the given factor.
    /// Overlapping windows keep the later deadline and the larger factor.
    pub(crate) fn start_sarp_window(&mut self, until: Cycle, factor: f64) {
        self.sarp_until = self.sarp_until.max(until);
        self.sarp_factor = if factor > self.sarp_factor {
            factor
        } else {
            self.sarp_factor
        };
        // Reset the factor lazily when the window expires: approximated by
        // keeping the max factor; windows of different scopes never overlap
        // in practice because a policy uses a single refresh granularity.
    }

    /// Whether a SARP window is active at `now`.
    pub fn sarp_window_active(&self, now: Cycle) -> bool {
        now < self.sarp_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Density, Retention};

    fn timing() -> TimingParams {
        TimingParams::ddr3_1333(Density::G8, Retention::Ms32)
    }

    #[test]
    fn trrd_spaces_consecutive_activations() {
        let t = timing();
        let mut r = Rank::new(8);
        assert_eq!(r.next_act_allowed(0, &t), 0);
        r.record_act(10);
        assert_eq!(r.next_act_allowed(10, &t), 10 + t.rrd);
        assert_eq!(r.next_act_allowed(20, &t), 20);
    }

    #[test]
    fn tfaw_limits_four_activations() {
        let t = timing();
        let mut r = Rank::new(8);
        for i in 0..4 {
            r.record_act(i * t.rrd);
        }
        // Fifth ACT must wait until first + tFAW = 0 + 20.
        assert_eq!(r.next_act_allowed(3 * t.rrd + t.rrd, &t), t.faw);
    }

    #[test]
    fn sarp_window_inflates_rates() {
        let t = timing();
        let mut r = Rank::new(8);
        r.start_sarp_window(1_000, 2.1);
        assert_eq!(r.effective_rrd(500, &t), (4.0f64 * 2.1).ceil() as u64);
        assert_eq!(r.effective_faw(500, &t), 42);
        // After the window, back to nominal.
        assert_eq!(r.effective_rrd(1_000, &t), t.rrd);
        assert_eq!(r.effective_faw(1_000, &t), t.faw);
    }

    #[test]
    fn refpb_nonoverlap_window() {
        let mut r = Rank::new(8);
        r.start_refpb(0, 300);
        assert!(r.is_refpb_busy(299));
        assert!(!r.is_refpb_busy(300));
        assert_eq!(r.refpb_until(), 300);
        assert_eq!(r.refpb_in_flight(100), 1);
    }

    #[test]
    fn footnote5_overlap_allows_concurrent_refpb() {
        let mut r = Rank::new(8);
        r.set_max_refpb(2);
        r.start_refpb(0, 300);
        assert!(!r.is_refpb_busy(10), "one slot free with 2-way overlap");
        r.start_refpb(10, 310);
        assert!(r.is_refpb_busy(20), "both slots occupied");
        assert_eq!(r.refpb_in_flight(20), 2);
        // First completes: a slot frees up and is reused.
        assert!(!r.is_refpb_busy(301));
        r.start_refpb(301, 500);
        assert_eq!(r.refpb_in_flight(302), 2);
        assert_eq!(r.refpb_until(), 500);
    }

    #[test]
    fn earliest_act_allowed_matches_pointwise_probe() {
        let t = timing();
        let mut r = Rank::new(8);
        for i in 0..4 {
            r.record_act(i * t.rrd);
        }
        // A SARP window ending mid-history exercises both regimes of the
        // two-regime solve (inflated release inside the window, nominal
        // release clamped to its end).
        r.start_sarp_window(18, 2.25);
        for now in 0..60 {
            let e = r.earliest_act_allowed(now, &t);
            assert!(e >= now);
            assert_eq!(r.next_act_allowed(e, &t), e, "now={now}: {e} not legal");
            for c in now..e {
                assert!(
                    r.next_act_allowed(c, &t) > c,
                    "now={now}: {c} legal before reported {e}"
                );
            }
        }
    }

    #[test]
    fn refpb_slot_free_reports_min_inflight_deadline() {
        let mut r = Rank::new(8);
        r.set_max_refpb(2);
        r.start_refpb(0, 300);
        assert_eq!(r.refpb_slot_free(10), None, "one slot still free");
        r.start_refpb(10, 310);
        assert_eq!(r.refpb_slot_free(10), Some(300), "earliest deadline frees");
        assert_eq!(r.refpb_slot_free(305), None, "first window already over");
    }

    #[test]
    fn refab_blocks_rank() {
        let mut r = Rank::new(8);
        r.start_refab_blocking(700);
        assert!(r.is_refab_busy(699));
        assert!(!r.is_refab_busy(700));
    }

    #[test]
    fn all_banks_closed_tracks_bank_state() {
        let t = timing();
        let mut r = Rank::new(2);
        assert!(r.all_banks_closed());
        r.bank_mut(1).do_activate(0, 5, &t);
        assert!(!r.all_banks_closed());
        r.bank_mut(1).do_precharge(t.ras, &t);
        assert!(r.all_banks_closed());
    }
}
