//! DDR3-1333 timing parameters, density/retention scaling, and the paper's
//! Figure 5 `tRFCab` projections.
//!
//! All durations are in DRAM command-clock cycles (tCK = 1.5 ns at
//! DDR3-1333). Refresh values follow the paper exactly:
//!
//! * `tRFCab` = 350 / 530 / 890 ns for 8 / 16 / 32 Gb chips (Table 1),
//!   extended to 1610 ns at 64 Gb by the paper's Projection 2;
//! * `tREFIab` = 3.9 µs at 32 ms retention (Table 1) and 7.8 µs at 64 ms;
//! * `tREFIpb` = `tREFIab` / 8 and `tRFCpb` = `tRFCab` / 2.3 (§3.1, from the
//!   LPDDR2 ratio);
//! * DDR4 FGR 2x/4x shortens `tRFCab` by 1.35× / 1.63× while doubling /
//!   quadrupling the refresh rate (§6.5).

use serde::{Deserialize, Serialize};

/// Number of refresh commands distributed across one retention window
/// (64 ms / 7.8 µs ≈ 8192; identical for 32 ms / 3.9 µs).
pub const REFRESH_COMMANDS_PER_WINDOW: usize = 8_192;

/// DRAM chip density. The paper evaluates 8/16/32 Gb and projects to 64 Gb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 8 Gb per chip (present-day in the paper; `tRFCab` = 350 ns).
    G8,
    /// 16 Gb per chip (`tRFCab` = 530 ns).
    G16,
    /// 32 Gb per chip (ITRS-2020 projection; `tRFCab` = 890 ns).
    G32,
    /// 64 Gb per chip (Projection 2; `tRFCab` = 1610 ns).
    G64,
}

impl Density {
    /// Density in gigabits.
    pub fn gigabits(self) -> u32 {
        match self {
            Density::G8 => 8,
            Density::G16 => 16,
            Density::G32 => 32,
            Density::G64 => 64,
        }
    }

    /// All-bank refresh latency in nanoseconds (paper Table 1 + Projection 2).
    pub fn trfc_ab_ns(self) -> f64 {
        match self {
            Density::G8 => 350.0,
            Density::G16 => 530.0,
            Density::G32 => 890.0,
            Density::G64 => trfc_projection2_ns(64.0),
        }
    }

    /// The three densities evaluated throughout the paper.
    pub fn evaluated() -> [Density; 3] {
        [Density::G8, Density::G16, Density::G32]
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}Gb", self.gigabits())
    }
}

/// DRAM retention time. The paper's main results use 32 ms (server / LPDDR
/// setting); Table 6 re-evaluates at 64 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Retention {
    /// 32 ms retention → `tREFIab` = 3.9 µs.
    Ms32,
    /// 64 ms retention → `tREFIab` = 7.8 µs.
    Ms64,
}

impl Retention {
    /// All-bank refresh interval in nanoseconds.
    pub fn trefi_ab_ns(self) -> f64 {
        match self {
            Retention::Ms32 => 3_900.0,
            Retention::Ms64 => 7_800.0,
        }
    }

    /// Retention window in milliseconds.
    pub fn window_ms(self) -> u32 {
        match self {
            Retention::Ms32 => 32,
            Retention::Ms64 => 64,
        }
    }
}

impl std::fmt::Display for Retention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ms", self.window_ms())
    }
}

/// DDR4 fine-granularity-refresh mode (paper §6.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FgrMode {
    /// Normal 1x refresh (equivalent to plain `REFab`).
    #[default]
    X1,
    /// 2x mode: refresh rate ×2, `tRFCab` ÷ 1.35.
    X2,
    /// 4x mode: refresh rate ×4, `tRFCab` ÷ 1.63.
    X4,
}

impl FgrMode {
    /// Rate multiplier (how many times more frequent refresh commands are).
    pub fn rate(self) -> u64 {
        match self {
            FgrMode::X1 => 1,
            FgrMode::X2 => 2,
            FgrMode::X4 => 4,
        }
    }

    /// `tRFCab` shortening factor from the DDR4 standard (paper §6.5:
    /// 1.35× at 2x, 1.63× at 4x — deliberately *not* the ideal 2×/4×).
    pub fn trfc_divisor(self) -> f64 {
        match self {
            FgrMode::X1 => 1.0,
            FgrMode::X2 => 1.35,
            FgrMode::X4 => 1.63,
        }
    }
}

impl std::fmt::Display for FgrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FgrMode::X1 => write!(f, "1x"),
            FgrMode::X2 => write!(f, "2x"),
            FgrMode::X4 => write!(f, "4x"),
        }
    }
}

/// The paper's Figure 5 "Projection 1": linear extrapolation of `tRFCab`
/// from 1, 2 and 4 Gb devices (110 / 160 / 260 ns), in nanoseconds.
pub fn trfc_projection1_ns(gigabits: f64) -> f64 {
    // Least-squares line through (1, 110), (2, 160), (4, 260): exact fit
    // slope 50 ns/Gb, intercept 60 ns.
    60.0 + 50.0 * gigabits
}

/// The paper's Figure 5 "Projection 2" (used for evaluation): linear
/// extrapolation from 4 Gb (260 ns) and 8 Gb (350 ns), in nanoseconds.
///
/// Reproduces the paper's Table 1 values exactly: 530 ns at 16 Gb, 890 ns at
/// 32 Gb, and ~1.6 µs at 64 Gb.
pub fn trfc_projection2_ns(gigabits: f64) -> f64 {
    350.0 + 22.5 * (gigabits - 8.0)
}

/// Complete timing-parameter set for one device configuration.
///
/// Construct with [`TimingParams::ddr3_1333`]; derive FGR variants with
/// [`TimingParams::with_fgr`]. Fields are public because the controller and
/// the experiment sweeps (Table 4 varies `tFAW`/`tRRD`) need to read and
/// override them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Clock period in picoseconds (1500 ps for DDR3-1333).
    pub tck_ps: u64,
    /// CAS (read) latency.
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// ACT → RD/WR to the same bank.
    pub rcd: u64,
    /// PRE → ACT to the same bank.
    pub rp: u64,
    /// ACT → PRE to the same bank.
    pub ras: u64,
    /// ACT → ACT to the same bank.
    pub rc: u64,
    /// Data burst length in clocks (BL8 on a DDR bus = 4 clocks).
    pub bl: u64,
    /// Column-to-column command spacing.
    pub ccd: u64,
    /// RD → PRE to the same bank.
    pub rtp: u64,
    /// Write recovery: end of write burst → PRE.
    pub wr: u64,
    /// Write-to-read turnaround: end of write burst → RD.
    pub wtr: u64,
    /// ACT → ACT across banks of the same rank.
    pub rrd: u64,
    /// Four-activate window.
    pub faw: u64,
    /// All-bank refresh interval (`tREFIab`).
    pub refi_ab: u64,
    /// All-bank refresh latency (`tRFCab`) at the configured FGR mode.
    pub rfc_ab: u64,
    /// Per-bank refresh interval (`tREFIpb` = `tREFIab`/8).
    pub refi_pb: u64,
    /// Per-bank refresh latency (`tRFCpb` = `tRFCab(1x)`/2.3).
    pub rfc_pb: u64,
    /// Configured fine-granularity-refresh mode.
    pub fgr: FgrMode,
    /// Density this parameter set was derived for.
    pub density: Density,
    /// Retention time this parameter set was derived for.
    pub retention: Retention,
}

impl TimingParams {
    /// DDR3-1333 (CL 9) parameters for the given density and retention,
    /// following the paper's Table 1 and the Micron 8 Gb data sheet.
    pub fn ddr3_1333(density: Density, retention: Retention) -> Self {
        let tck_ps = 1_500;
        let ns = |v: f64| -> u64 { ((v * 1_000.0) / tck_ps as f64).ceil() as u64 };
        let rfc_ab = ns(density.trfc_ab_ns());
        let refi_ab = ns(retention.trefi_ab_ns());
        Self {
            tck_ps,
            cl: 9,
            cwl: 7,
            rcd: 9,
            rp: 9,
            ras: 24,
            rc: 33,
            bl: 4,
            ccd: 4,
            rtp: 5,
            wr: 10,
            wtr: 5,
            rrd: 4,
            faw: 20,
            refi_ab,
            rfc_ab,
            refi_pb: refi_ab / 8,
            // §3.1: tRFCab / tRFCpb = 2.3 measured on LPDDR2.
            rfc_pb: ((rfc_ab as f64) / 2.3).ceil() as u64,
            fgr: FgrMode::X1,
            density,
            retention,
        }
    }

    /// Derives the DDR4 FGR variant of this parameter set: `tREFIab` divided
    /// by the rate, `tRFCab` divided by the (sub-linear) standard factor.
    ///
    /// Per-bank parameters are unchanged: FGR is an all-bank mode.
    pub fn with_fgr(mut self, fgr: FgrMode) -> Self {
        let base = Self::ddr3_1333(self.density, self.retention);
        self.refi_ab = base.refi_ab / fgr.rate();
        self.rfc_ab = ((base.rfc_ab as f64) / fgr.trfc_divisor()).ceil() as u64;
        self.fgr = fgr;
        self
    }

    /// Overrides `tFAW` and `tRRD` (the paper's Table 4 sweeps 5/1 … 30/6).
    pub fn with_faw_rrd(mut self, faw: u64, rrd: u64) -> Self {
        self.faw = faw;
        self.rrd = rrd;
        self
    }

    /// All-bank refresh latency for a command issued in `fgr` mode,
    /// derived from the density's 1x value (paper §6.5: `tRFCab` shrinks by
    /// 1.35× / 1.63× at 2x / 4x). Policies that switch FGR modes per
    /// command (DDR4 FGR, Adaptive Refresh) use this instead of `rfc_ab`.
    pub fn rfc_ab_for(&self, fgr: FgrMode) -> u64 {
        ((self.ns_to_cycles(self.density.trfc_ab_ns()) as f64) / fgr.trfc_divisor()).ceil() as u64
    }

    /// All-bank refresh interval for commands issued in `fgr` mode
    /// (rate multiplies by 2×/4×), derived from the retention's 1x value.
    pub fn refi_ab_for(&self, fgr: FgrMode) -> u64 {
        self.ns_to_cycles(self.retention.trefi_ab_ns()) / fgr.rate()
    }

    /// Read-to-write turnaround at the command level:
    /// `CL + BL + 2 - CWL` (half-duplex bus plus two-cycle bubble, §4.2.2).
    pub fn rtw(&self) -> u64 {
        self.cl + self.bl + 2 - self.cwl
    }

    /// End-of-read-burst cycle for a read issued at `t`.
    pub fn read_done(&self, t: super::Cycle) -> super::Cycle {
        t + self.cl + self.bl
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.tck_ps as f64 / 1_000.0
    }

    /// Converts nanoseconds to (ceiled) cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        ((ns * 1_000.0) / self.tck_ps as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_refresh_values_8gb_32ms() {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        assert_eq!(t.refi_ab, 2_600); // 3.9 us / 1.5 ns
        assert_eq!(t.rfc_ab, 234); // 350 ns
        assert_eq!(t.refi_pb, 325); // tREFIab / 8
        assert_eq!(t.rfc_pb, 102); // ceil(234 / 2.3)
    }

    #[test]
    fn paper_refresh_values_by_density() {
        let t16 = TimingParams::ddr3_1333(Density::G16, Retention::Ms32);
        let t32 = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        assert_eq!(t16.rfc_ab, 354); // 530 ns
        assert_eq!(t32.rfc_ab, 594); // 890 ns
                                     // Paper §6.1: 8 * tRFCpb ~= 3.5 * tRFCab (the REFpb pathology).
        let ratio = (8 * t32.rfc_pb) as f64 / t32.rfc_ab as f64;
        assert!((ratio - 3.48).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn retention_64ms_doubles_interval_only() {
        let a = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        let b = TimingParams::ddr3_1333(Density::G8, Retention::Ms64);
        assert_eq!(b.refi_ab, 2 * a.refi_ab);
        assert_eq!(b.rfc_ab, a.rfc_ab);
        assert_eq!(b.refi_pb, 2 * a.refi_pb);
    }

    #[test]
    fn projection2_matches_table1() {
        assert_eq!(trfc_projection2_ns(16.0), 530.0);
        assert_eq!(trfc_projection2_ns(32.0), 890.0);
        assert_eq!(trfc_projection2_ns(64.0), 1_610.0);
    }

    #[test]
    fn projection1_is_steeper() {
        // Figure 5: Projection 1 reaches ~3.3 us at 64 Gb.
        assert!(trfc_projection1_ns(64.0) > 3_000.0);
        for gb in [8.0, 16.0, 32.0, 64.0] {
            assert!(trfc_projection1_ns(gb) > trfc_projection2_ns(gb));
        }
    }

    #[test]
    fn fgr_scales_rate_and_latency_sublinearly() {
        let base = TimingParams::ddr3_1333(Density::G32, Retention::Ms32);
        let x2 = base.with_fgr(FgrMode::X2);
        let x4 = base.with_fgr(FgrMode::X4);
        assert_eq!(x2.refi_ab, base.refi_ab / 2);
        assert_eq!(x4.refi_ab, base.refi_ab / 4);
        // Worst-case refresh penalty grows: rate x latency.
        let penalty = |t: &TimingParams| t.rfc_ab as f64 * t.fgr.rate() as f64;
        assert!(penalty(&x2) > penalty(&base) * 1.4);
        assert!(penalty(&x4) > penalty(&base) * 2.3);
    }

    #[test]
    fn rtw_matches_formula() {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        assert_eq!(t.rtw(), 9 + 4 + 2 - 7);
    }

    #[test]
    fn ns_cycle_conversions_roundtrip() {
        let t = TimingParams::ddr3_1333(Density::G8, Retention::Ms32);
        assert_eq!(t.ns_to_cycles(350.0), 234);
        assert!((t.cycles_to_ns(234) - 351.0).abs() < 0.01);
    }
}
