//! The DRAM channel: command validation, timing enforcement, and state
//! updates for one channel's ranks, banks and subarrays.
//!
//! This is the device-side contract: the memory controller may call
//! [`DramChannel::can_issue`] freely and must only call
//! [`DramChannel::issue`] with commands that are legal *this cycle*; `issue`
//! re-validates everything and returns an [`IssueError`] otherwise, so any
//! scheduler bug surfaces immediately instead of corrupting timing state.

use crate::command::Command;
use crate::geometry::Geometry;
use crate::power::EnergyCounters;
use crate::rank::Rank;
use crate::refresh::RefreshUnit;
use crate::retention::RetentionTracker;
use crate::sarp::{sarp_inflation, RefreshScope, SarpSupport};
use crate::timing::{FgrMode, TimingParams};
use crate::{Cycle, IddValues};

/// Why a command cannot issue right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// Rank or bank index out of range, or column out of range.
    BadAddress,
    /// A second command was issued in the same cycle (command bus conflict).
    CommandBusBusy,
    /// The command needs a precharged bank but a row is open.
    BankNotClosed,
    /// The command needs an open row but the bank is precharged.
    NoOpenRow,
    /// A whole-bank or whole-rank refresh is occupying the target.
    RefreshBusy,
    /// A `REFpb` is already in flight in the rank (JEDEC no-overlap rule).
    RefpbOverlap,
    /// SARP: the target row lives in the subarray currently being refreshed.
    SubarrayConflict,
    /// A timing constraint is unsatisfied at this cycle.
    TooEarly,
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IssueError::BadAddress => "address out of range",
            IssueError::CommandBusBusy => "command bus already used this cycle",
            IssueError::BankNotClosed => "bank has an open row",
            IssueError::NoOpenRow => "bank has no open row",
            IssueError::RefreshBusy => "target is refreshing",
            IssueError::RefpbOverlap => "a REFpb is already in flight in this rank",
            IssueError::SubarrayConflict => "row is in the refreshing subarray",
            IssueError::TooEarly => "timing constraint unsatisfied",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IssueError {}

/// Result of a successfully issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// For reads: the cycle the full cache line has been returned.
    pub data_ready: Option<Cycle>,
    /// For refreshes: the cycle the refresh completes.
    pub refresh_done: Option<Cycle>,
}

/// One DRAM channel with its ranks, banks, refresh unit, and energy/retention
/// bookkeeping. See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct DramChannel {
    geom: Geometry,
    timing: TimingParams,
    sarp: SarpSupport,
    ranks: Vec<Rank>,
    /// Channel-level earliest next read / write column command (data bus +
    /// turnaround constraints).
    next_rd: Cycle,
    next_wr: Cycle,
    refresh_unit: RefreshUnit,
    energy: EnergyCounters,
    retention: Option<RetentionTracker>,
    last_issue: Option<Cycle>,
    log: Option<Vec<(Cycle, Command)>>,
    idd: IddValues,
    /// When `false`, SARP's tFAW/tRRD inflation (Eq. 1-3) is disabled —
    /// an *ablation* switch quantifying the power-integrity throttle's cost
    /// (a real device must keep it on).
    power_throttle: bool,
    /// ACTs issued to a bank while that bank had a SARP refresh in flight
    /// — accesses the subarray-parallelism mechanism made possible
    /// (telemetry; always counted, only read when telemetry is enabled).
    sarp_parallel_acts: u64,
}

impl DramChannel {
    /// Creates a channel in the reset state (all banks precharged).
    pub fn new(geom: Geometry, timing: TimingParams, sarp: SarpSupport) -> Self {
        let ranks = (0..geom.ranks_per_channel())
            .map(|_| Rank::new(geom.banks_per_rank()))
            .collect();
        Self {
            ranks,
            next_rd: 0,
            next_wr: 0,
            refresh_unit: RefreshUnit::new(&geom),
            energy: EnergyCounters::new(geom.ranks_per_channel()),
            retention: None,
            last_issue: None,
            log: None,
            idd: IddValues::micron_8gb_ddr3_1333(),
            power_throttle: true,
            sarp_parallel_acts: 0,
            geom,
            timing,
            sarp,
        }
    }

    /// Disables SARP's tFAW/tRRD power-integrity inflation (ablation only;
    /// see the field docs).
    pub fn disable_power_throttle(&mut self) {
        self.power_throttle = false;
    }

    /// Enables the paper's footnote-5 extension: up to `ways` per-bank
    /// refreshes may overlap within a rank (the JEDEC standard fixes this
    /// at 1). A real device would also need new current-budget timing
    /// constraints; the model keeps tRRD/tFAW accounting per refresh, which
    /// rate-limits the overlap the same way back-to-back ACTs are limited.
    pub fn set_refpb_overlap_ways(&mut self, ways: usize) {
        for r in &mut self.ranks {
            r.set_max_refpb(ways);
        }
    }

    /// Enables retention-integrity tracking (used by tests; off by default
    /// because it allocates one slot per refresh group).
    pub fn enable_retention_tracking(&mut self) {
        self.retention = Some(RetentionTracker::new(&self.geom));
    }

    /// Enables the command log (used by the timeline examples).
    pub fn enable_command_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Drains and returns the command log (empty if logging is disabled).
    pub fn take_command_log(&mut self) -> Vec<(Cycle, Command)> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The channel's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Whether the device supports SARP.
    pub fn sarp_support(&self) -> SarpSupport {
        self.sarp
    }

    /// Immutable access to a rank.
    pub fn rank(&self, idx: usize) -> &Rank {
        &self.ranks[idx]
    }

    /// The in-DRAM round-robin refresh counter for `rank` (what a baseline
    /// LPDDR device would refresh next).
    pub fn next_rr_bank(&self, rank: usize) -> usize {
        self.refresh_unit.next_rr_bank(rank)
    }

    /// The subarray currently being refreshed in (rank, bank) under SARP, or
    /// `None` when no SARP refresh is in flight there.
    pub fn refreshing_subarray(&self, rank: usize, bank: usize, now: Cycle) -> Option<usize> {
        self.ranks[rank]
            .bank(bank)
            .sarp_refresh(now)
            .map(|r| r.subarray)
    }

    /// Whether (rank, bank) is unavailable due to a blocking refresh.
    pub fn bank_refresh_busy(&self, rank: usize, bank: usize, now: Cycle) -> bool {
        self.ranks[rank].bank(bank).is_refresh_busy(now) || self.ranks[rank].is_refab_busy(now)
    }

    /// ACTs issued to a bank while a SARP refresh was in flight in that
    /// same bank — the accesses SARP parallelized with refresh.
    pub fn sarp_parallel_acts(&self) -> u64 {
        self.sarp_parallel_acts
    }

    /// Energy counters accumulated so far.
    pub fn energy_counters(&self) -> &EnergyCounters {
        &self.energy
    }

    /// Retention tracker, if enabled.
    pub fn retention_tracker(&self) -> Option<&RetentionTracker> {
        self.retention.as_ref()
    }

    /// Finalizes background-energy accounting at the end of a run.
    pub fn finalize_energy(&mut self, now: Cycle) {
        self.energy.finalize(now);
    }

    /// Whether `cmd` may issue at `now`.
    pub fn can_issue(&self, cmd: &Command, now: Cycle) -> bool {
        self.check(cmd, now).is_ok()
    }

    /// The cycle of the most recent successfully issued command, if any.
    pub fn last_issue(&self) -> Option<Cycle> {
        self.last_issue
    }

    /// The earliest cycle the shared column-command data bus admits a read
    /// (`write == false`) or write (`write == true`). This is the `bus` gate
    /// of [`DramChannel::check`] for column commands, exposed so schedulers
    /// can rule out *every* column candidate with one comparison when the
    /// bus is the binding constraint.
    pub fn col_bus_ready(&self, write: bool) -> Cycle {
        if write {
            self.next_wr
        } else {
            self.next_rd
        }
    }

    /// The earliest cycle `t >= now` at which every *time-based* gate in
    /// [`DramChannel::check`] admits `cmd`, or `None` when a *state-based*
    /// gate (bad address, wrong open/closed bank state) blocks it until some
    /// other command changes device state.
    ///
    /// This is an event source for the skip-ahead loop and is exact only
    /// under its dead-span assumption: no command issues to this channel in
    /// `[now, t)`, so every timing register is frozen and each gate clears
    /// precisely when its window expires. The command-bus gate is ignored —
    /// callers only ask after a cycle where nothing issued.
    pub fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Option<Cycle> {
        let rank_idx = cmd.rank();
        if rank_idx >= self.ranks.len() {
            return None;
        }
        let rank = &self.ranks[rank_idx];
        if let Some(b) = cmd.bank() {
            if b >= rank.num_banks() {
                return None;
            }
        }
        match *cmd {
            Command::Activate { bank, row, .. } => {
                if row as usize >= self.geom.rows_per_bank() {
                    return None;
                }
                let b = rank.bank(bank);
                if !b.is_closed() {
                    return None;
                }
                let mut t = now
                    .max(rank.refab_until())
                    .max(b.refresh_until())
                    .max(b.next_act());
                if let Some(r) = b.sarp_refresh(now) {
                    if self.geom.subarray_of_row(row) == r.subarray {
                        t = t.max(r.until);
                    }
                }
                Some(t.max(rank.earliest_act_allowed(t, &self.timing)))
            }
            Command::Precharge { bank, .. } => {
                let b = rank.bank(bank);
                if b.is_closed() {
                    return None;
                }
                Some(
                    now.max(rank.refab_until())
                        .max(b.refresh_until())
                        .max(b.next_pre()),
                )
            }
            Command::PrechargeAll { .. } => {
                let mut t = now.max(rank.refab_until());
                for b in rank.banks() {
                    if !b.is_closed() {
                        t = t.max(b.next_pre());
                    }
                }
                Some(t)
            }
            Command::Read { bank, col, .. } | Command::Write { bank, col, .. } => {
                if col as usize >= self.geom.cols_per_row() {
                    return None;
                }
                let b = rank.bank(bank);
                if b.is_closed() {
                    return None;
                }
                let bus = if matches!(cmd, Command::Read { .. }) {
                    self.next_rd
                } else {
                    self.next_wr
                };
                Some(
                    now.max(rank.refab_until())
                        .max(b.refresh_until())
                        .max(b.next_col())
                        .max(bus),
                )
            }
            Command::RefreshAllBank { .. } => {
                if !rank.all_banks_closed() {
                    return None;
                }
                let mut t = now.max(rank.refab_until());
                if let Some(free) = rank.refpb_slot_free(now) {
                    t = t.max(free);
                }
                for b in rank.banks() {
                    t = t.max(b.refresh_until()).max(b.next_act());
                    if let Some(r) = b.sarp_refresh(now) {
                        t = t.max(r.until);
                    }
                }
                Some(t.max(rank.earliest_act_allowed(t, &self.timing)))
            }
            Command::RefreshPerBank { bank, .. } => {
                let b = rank.bank(bank);
                if !b.is_closed() {
                    return None;
                }
                let mut t = now
                    .max(rank.refab_until())
                    .max(b.refresh_until())
                    .max(b.next_act());
                if let Some(free) = rank.refpb_slot_free(now) {
                    t = t.max(free);
                }
                if let Some(r) = b.sarp_refresh(now) {
                    t = t.max(r.until);
                }
                Some(t.max(rank.earliest_act_allowed(t, &self.timing)))
            }
        }
    }

    /// Validates `cmd` at `now` without issuing it.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule; see [`IssueError`].
    pub fn check(&self, cmd: &Command, now: Cycle) -> Result<(), IssueError> {
        if self.last_issue == Some(now) {
            return Err(IssueError::CommandBusBusy);
        }
        let rank_idx = cmd.rank();
        if rank_idx >= self.ranks.len() {
            return Err(IssueError::BadAddress);
        }
        let rank = &self.ranks[rank_idx];
        if let Some(b) = cmd.bank() {
            if b >= rank.num_banks() {
                return Err(IssueError::BadAddress);
            }
        }
        match *cmd {
            Command::Activate { bank, row, .. } => {
                if row as usize >= self.geom.rows_per_bank() {
                    return Err(IssueError::BadAddress);
                }
                let b = rank.bank(bank);
                if rank.is_refab_busy(now) || b.is_refresh_busy(now) {
                    return Err(IssueError::RefreshBusy);
                }
                if !b.is_closed() {
                    return Err(IssueError::BankNotClosed);
                }
                if let Some(r) = b.sarp_refresh(now) {
                    debug_assert!(self.sarp.is_enabled());
                    if self.geom.subarray_of_row(row) == r.subarray {
                        return Err(IssueError::SubarrayConflict);
                    }
                }
                if now < b.next_act() || now < rank.next_act_allowed(now, &self.timing) {
                    return Err(IssueError::TooEarly);
                }
                Ok(())
            }
            Command::Precharge { bank, .. } => {
                let b = rank.bank(bank);
                if rank.is_refab_busy(now) || b.is_refresh_busy(now) {
                    return Err(IssueError::RefreshBusy);
                }
                if b.is_closed() {
                    return Err(IssueError::NoOpenRow);
                }
                if now < b.next_pre() {
                    return Err(IssueError::TooEarly);
                }
                Ok(())
            }
            Command::PrechargeAll { .. } => {
                if rank.is_refab_busy(now) {
                    return Err(IssueError::RefreshBusy);
                }
                for b in rank.banks() {
                    if !b.is_closed() && now < b.next_pre() {
                        return Err(IssueError::TooEarly);
                    }
                }
                Ok(())
            }
            Command::Read { bank, col, .. } | Command::Write { bank, col, .. } => {
                if col as usize >= self.geom.cols_per_row() {
                    return Err(IssueError::BadAddress);
                }
                let b = rank.bank(bank);
                if rank.is_refab_busy(now) || b.is_refresh_busy(now) {
                    return Err(IssueError::RefreshBusy);
                }
                if b.is_closed() {
                    return Err(IssueError::NoOpenRow);
                }
                if now < b.next_col() {
                    return Err(IssueError::TooEarly);
                }
                let bus = if matches!(cmd, Command::Read { .. }) {
                    self.next_rd
                } else {
                    self.next_wr
                };
                if now < bus {
                    return Err(IssueError::TooEarly);
                }
                Ok(())
            }
            Command::RefreshAllBank { .. } => {
                if rank.is_refab_busy(now) || rank.is_refpb_busy(now) {
                    return Err(IssueError::RefpbOverlap);
                }
                if !rank.all_banks_closed() {
                    return Err(IssueError::BankNotClosed);
                }
                for b in rank.banks() {
                    if b.is_refresh_busy(now) {
                        return Err(IssueError::RefreshBusy);
                    }
                    if b.sarp_refresh(now).is_some() {
                        return Err(IssueError::RefreshBusy);
                    }
                    if now < b.next_act() {
                        return Err(IssueError::TooEarly);
                    }
                }
                if now < rank.next_act_allowed(now, &self.timing) {
                    return Err(IssueError::TooEarly);
                }
                Ok(())
            }
            Command::RefreshPerBank { bank, .. } => {
                let b = rank.bank(bank);
                if rank.is_refab_busy(now) {
                    return Err(IssueError::RefreshBusy);
                }
                if rank.is_refpb_busy(now) {
                    return Err(IssueError::RefpbOverlap);
                }
                if b.is_refresh_busy(now) || b.sarp_refresh(now).is_some() {
                    return Err(IssueError::RefreshBusy);
                }
                if !b.is_closed() {
                    return Err(IssueError::BankNotClosed);
                }
                if now < b.next_act() || now < rank.next_act_allowed(now, &self.timing) {
                    return Err(IssueError::TooEarly);
                }
                Ok(())
            }
        }
    }

    /// Issues `cmd` at `now`, updating all device state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DramChannel::check`]; on error no state changes.
    pub fn issue(&mut self, cmd: Command, now: Cycle) -> Result<Receipt, IssueError> {
        self.check(&cmd, now)?;
        self.last_issue = Some(now);
        if let Some(log) = &mut self.log {
            log.push((now, cmd));
        }
        let timing = self.timing;
        let mut receipt = Receipt {
            data_ready: None,
            refresh_done: None,
        };
        match cmd {
            Command::Activate { rank, bank, row } => {
                // Validation passed, so any in-flight SARP refresh in this
                // bank targets a different subarray: a parallelized access.
                if self.ranks[rank].bank(bank).sarp_refresh(now).is_some() {
                    self.sarp_parallel_acts += 1;
                }
                let was_all_closed = self.ranks[rank].all_banks_closed();
                self.ranks[rank]
                    .bank_mut(bank)
                    .do_activate(now, row, &timing);
                self.ranks[rank].record_act(now);
                self.energy.record_act();
                if was_all_closed {
                    self.energy.rank_goes_active(rank, now);
                }
            }
            Command::Precharge { rank, bank } => {
                self.ranks[rank].bank_mut(bank).do_precharge(now, &timing);
                if self.ranks[rank].all_banks_closed() {
                    self.energy.rank_goes_idle(rank, now);
                }
            }
            Command::PrechargeAll { rank } => {
                let open: Vec<usize> = (0..self.ranks[rank].num_banks())
                    .filter(|&b| !self.ranks[rank].bank(b).is_closed())
                    .collect();
                for b in open {
                    self.ranks[rank].bank_mut(b).do_precharge(now, &timing);
                }
                self.energy.rank_goes_idle(rank, now);
            }
            Command::Read {
                rank,
                bank,
                auto_precharge,
                ..
            } => {
                self.next_rd = now + timing.ccd;
                self.next_wr = self.next_wr.max(now + timing.rtw());
                self.ranks[rank].bank_mut(bank).do_column(
                    now + timing.rtp,
                    auto_precharge,
                    &timing,
                );
                self.energy.record_read();
                receipt.data_ready = Some(timing.read_done(now));
                if auto_precharge && self.ranks[rank].all_banks_closed() {
                    self.energy.rank_goes_idle(rank, now);
                }
            }
            Command::Write {
                rank,
                bank,
                auto_precharge,
                ..
            } => {
                self.next_wr = now + timing.ccd;
                self.next_rd = self.next_rd.max(now + timing.cwl + timing.bl + timing.wtr);
                self.ranks[rank].bank_mut(bank).do_column(
                    now + timing.cwl + timing.bl + timing.wr,
                    auto_precharge,
                    &timing,
                );
                self.energy.record_write();
                if auto_precharge && self.ranks[rank].all_banks_closed() {
                    self.energy.rank_goes_idle(rank, now);
                }
            }
            Command::RefreshAllBank { rank, fgr } => {
                receipt.refresh_done = Some(self.apply_refab(rank, fgr, now));
            }
            Command::RefreshPerBank { rank, bank } => {
                receipt.refresh_done = Some(self.apply_refpb(rank, bank, now));
            }
        }
        Ok(receipt)
    }

    fn apply_refab(&mut self, rank: usize, fgr: FgrMode, now: Cycle) -> Cycle {
        let rfc = self.timing.rfc_ab_for(fgr);
        let done = now + rfc;
        let rows = self.refresh_unit.rows_per_command(fgr);
        let rows_per_bank = self.refresh_unit.rows_per_bank();
        let num_banks = self.ranks[rank].num_banks();
        if self.sarp.is_enabled() {
            let factor = if self.power_throttle {
                sarp_inflation(&self.idd, RefreshScope::AllBank)
            } else {
                1.0
            };
            self.ranks[rank].start_sarp_window(done, factor);
            for b in 0..num_banks {
                let first = self.ranks[rank]
                    .bank_mut(b)
                    .advance_ref_counter(rows, rows_per_bank);
                let sub = self.geom.subarray_of_row(first);
                self.ranks[rank].bank_mut(b).do_refresh_sarp(sub, done);
                if let Some(rt) = &mut self.retention {
                    rt.record(rank, b, first, rows, now);
                }
            }
        } else {
            self.ranks[rank].start_refab_blocking(done);
            for b in 0..num_banks {
                let first = self.ranks[rank]
                    .bank_mut(b)
                    .advance_ref_counter(rows, rows_per_bank);
                self.ranks[rank].bank_mut(b).do_refresh_blocking(done);
                if let Some(rt) = &mut self.retention {
                    rt.record(rank, b, first, rows, now);
                }
            }
        }
        self.energy.record_refab(rfc);
        done
    }

    fn apply_refpb(&mut self, rank: usize, bank: usize, now: Cycle) -> Cycle {
        let done = now + self.timing.rfc_pb;
        let rows = self.refresh_unit.rows_per_command(FgrMode::X1);
        let rows_per_bank = self.refresh_unit.rows_per_bank();
        let first = self.ranks[rank]
            .bank_mut(bank)
            .advance_ref_counter(rows, rows_per_bank);
        if self.sarp.is_enabled() {
            let factor = if self.power_throttle {
                sarp_inflation(&self.idd, RefreshScope::PerBank)
            } else {
                1.0
            };
            let sub = self.geom.subarray_of_row(first);
            self.ranks[rank].bank_mut(bank).do_refresh_sarp(sub, done);
            self.ranks[rank].start_sarp_window(done, factor);
        } else {
            self.ranks[rank].bank_mut(bank).do_refresh_blocking(done);
        }
        // The (possibly relaxed) overlap rule and the internal-activation
        // rate cost apply either way (§4.2.3, footnote 5).
        self.ranks[rank].start_refpb(now, done);
        self.ranks[rank].record_act(now);
        self.refresh_unit.advance_rr(rank);
        if let Some(rt) = &mut self.retention {
            rt.record(rank, bank, first, rows, now);
        }
        self.energy.record_refpb(self.timing.rfc_pb);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Density, Retention};

    fn chan(sarp: SarpSupport) -> DramChannel {
        DramChannel::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1333(Density::G8, Retention::Ms32),
            sarp,
        )
    }

    fn act(rank: usize, bank: usize, row: u32) -> Command {
        Command::Activate { rank, bank, row }
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(act(0, 0, 5), 0).unwrap();
        let rd = Command::Read {
            rank: 0,
            bank: 0,
            col: 0,
            auto_precharge: false,
        };
        assert_eq!(c.check(&rd, 8), Err(IssueError::TooEarly));
        let r = c.issue(rd, 9).unwrap();
        assert_eq!(r.data_ready, Some(9 + 9 + 4));
    }

    #[test]
    fn read_before_activate_is_illegal() {
        let c = chan(SarpSupport::Disabled);
        let rd = Command::Read {
            rank: 0,
            bank: 0,
            col: 0,
            auto_precharge: false,
        };
        assert_eq!(c.check(&rd, 100), Err(IssueError::NoOpenRow));
    }

    #[test]
    fn double_activate_is_illegal() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(act(0, 0, 5), 0).unwrap();
        assert_eq!(c.check(&act(0, 0, 6), 50), Err(IssueError::BankNotClosed));
    }

    #[test]
    fn command_bus_allows_one_command_per_cycle() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(act(0, 0, 5), 10).unwrap();
        assert_eq!(c.check(&act(0, 1, 5), 10), Err(IssueError::CommandBusBusy));
        assert!(c.can_issue(&act(0, 1, 5), 14));
    }

    #[test]
    fn trrd_spaces_cross_bank_activates() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(act(0, 0, 5), 0).unwrap();
        assert_eq!(c.check(&act(0, 1, 5), 3), Err(IssueError::TooEarly));
        c.issue(act(0, 1, 5), 4).unwrap();
        // Different rank: tRRD does not apply.
        c.issue(act(1, 0, 5), 5).unwrap();
    }

    #[test]
    fn tfaw_blocks_fifth_activate() {
        let mut c = chan(SarpSupport::Disabled);
        let t = *c.timing();
        for (i, b) in [0usize, 1, 2, 3].iter().enumerate() {
            c.issue(act(0, *b, 1), i as u64 * t.rrd).unwrap();
        }
        assert_eq!(c.check(&act(0, 4, 1), 16), Err(IssueError::TooEarly));
        c.issue(act(0, 4, 1), t.faw).unwrap();
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut c = chan(SarpSupport::Disabled);
        let t = *c.timing();
        c.issue(act(0, 0, 1), 0).unwrap();
        c.issue(act(0, 1, 1), t.rrd).unwrap();
        let wr = Command::Write {
            rank: 0,
            bank: 0,
            col: 0,
            auto_precharge: false,
        };
        c.issue(wr, t.rcd).unwrap();
        let rd = Command::Read {
            rank: 0,
            bank: 1,
            col: 0,
            auto_precharge: false,
        };
        let earliest = t.rcd + t.cwl + t.bl + t.wtr;
        assert_eq!(c.check(&rd, earliest - 1), Err(IssueError::TooEarly));
        assert!(c.can_issue(&rd, earliest));
    }

    #[test]
    fn refab_requires_all_banks_closed() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(act(0, 3, 9), 0).unwrap();
        let refab = Command::RefreshAllBank {
            rank: 0,
            fgr: FgrMode::X1,
        };
        assert_eq!(c.check(&refab, 100), Err(IssueError::BankNotClosed));
        c.issue(Command::PrechargeAll { rank: 0 }, 24).unwrap();
        // tRP after precharge.
        assert_eq!(c.check(&refab, 30), Err(IssueError::TooEarly));
        let r = c.issue(refab, 40).unwrap();
        assert_eq!(r.refresh_done, Some(40 + c.timing().rfc_ab));
    }

    #[test]
    fn refab_blocks_whole_rank_without_sarp() {
        let mut c = chan(SarpSupport::Disabled);
        let refab = Command::RefreshAllBank {
            rank: 0,
            fgr: FgrMode::X1,
        };
        c.issue(refab, 0).unwrap();
        let rfc = c.timing().rfc_ab;
        assert_eq!(
            c.check(&act(0, 0, 1), rfc - 1),
            Err(IssueError::RefreshBusy)
        );
        assert!(c.can_issue(&act(0, 0, 1), rfc));
        // Other rank unaffected.
        assert!(c.can_issue(&act(1, 0, 1), 5));
    }

    #[test]
    fn refpb_blocks_only_its_bank_without_sarp() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(Command::RefreshPerBank { rank: 0, bank: 2 }, 0)
            .unwrap();
        let rfc_pb = c.timing().rfc_pb;
        assert_eq!(
            c.check(&act(0, 2, 1), rfc_pb - 1),
            Err(IssueError::RefreshBusy)
        );
        // Another bank in the same rank is accessible (after tRRD, since a
        // refresh is internally an activation).
        assert!(c.can_issue(&act(0, 3, 1), c.timing().rrd));
    }

    #[test]
    fn refpb_no_overlap_within_rank() {
        let mut c = chan(SarpSupport::Disabled);
        c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, 0)
            .unwrap();
        let next = Command::RefreshPerBank { rank: 0, bank: 1 };
        assert_eq!(
            c.check(&next, c.timing().rrd),
            Err(IssueError::RefpbOverlap)
        );
        assert!(c.can_issue(&next, c.timing().rfc_pb));
        // A REFpb in the *other* rank may overlap freely.
        assert!(c.can_issue(&Command::RefreshPerBank { rank: 1, bank: 0 }, 4));
    }

    #[test]
    fn sarp_allows_access_to_other_subarray_during_refpb() {
        let mut c = chan(SarpSupport::Enabled);
        c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, 0)
            .unwrap();
        // Bank 0 is refreshing subarray 0 (counter starts at row 0).
        assert_eq!(c.refreshing_subarray(0, 0, 1), Some(0));
        // Row in subarray 0 conflicts...
        let conflict = act(0, 0, 5);
        let inflated_rrd = c.rank(0).effective_rrd(5, c.timing());
        assert_eq!(
            c.check(&conflict, inflated_rrd),
            Err(IssueError::SubarrayConflict)
        );
        // ...but a row in subarray 1 is accessible while refreshing.
        let ok = act(0, 0, 8_192);
        assert!(c.can_issue(&ok, inflated_rrd));
        c.issue(ok, inflated_rrd).unwrap();
    }

    #[test]
    fn sarp_inflates_trrd_during_refresh_only() {
        let mut c = chan(SarpSupport::Enabled);
        let t = *c.timing();
        c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, 0)
            .unwrap();
        // Effective tRRD = ceil(4 * 1.1375) = 5 during the refresh.
        assert_eq!(c.check(&act(0, 1, 0), t.rrd), Err(IssueError::TooEarly));
        assert!(c.can_issue(&act(0, 1, 0), 5));
        // After the refresh completes, nominal tRRD applies again.
        let after = t.rfc_pb + 10;
        let mut c2 = c.clone();
        c2.issue(act(0, 1, 0), after).unwrap();
        assert!(c2.can_issue(&act(0, 2, 0), after + t.rrd));
    }

    #[test]
    fn sarp_allbank_refresh_keeps_rank_accessible() {
        let mut c = chan(SarpSupport::Enabled);
        c.issue(
            Command::RefreshAllBank {
                rank: 0,
                fgr: FgrMode::X1,
            },
            0,
        )
        .unwrap();
        // Every bank refreshes subarray 0; rows in other subarrays work.
        let inflated_rrd = c.rank(0).effective_rrd(0, c.timing());
        assert!(
            inflated_rrd >= 8,
            "2.1x inflation expected, got {inflated_rrd}"
        );
        assert_eq!(
            c.check(&act(0, 0, 0), inflated_rrd),
            Err(IssueError::SubarrayConflict)
        );
        assert!(c.can_issue(&act(0, 0, 8_192), inflated_rrd));
    }

    #[test]
    fn refresh_advances_row_counters_and_subarray() {
        let mut c = chan(SarpSupport::Enabled);
        let mut t = 0;
        // 1024 REFpb commands cover subarray 0 (8192 rows / 8 rows each).
        for _ in 0..1024 {
            c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, t)
                .unwrap();
            t += c.timing().rfc_pb;
        }
        c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, t)
            .unwrap();
        assert_eq!(c.refreshing_subarray(0, 0, t + 1), Some(1));
    }

    #[test]
    fn command_log_records_issues() {
        let mut c = chan(SarpSupport::Disabled);
        c.enable_command_log();
        c.issue(act(0, 0, 5), 0).unwrap();
        c.issue(
            Command::Read {
                rank: 0,
                bank: 0,
                col: 1,
                auto_precharge: true,
            },
            9,
        )
        .unwrap();
        let log = c.take_command_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 0);
        assert_eq!(log[1].1.mnemonic(), "RDA");
    }

    #[test]
    fn bad_addresses_are_rejected() {
        let c = chan(SarpSupport::Disabled);
        assert_eq!(c.check(&act(9, 0, 0), 0), Err(IssueError::BadAddress));
        assert_eq!(c.check(&act(0, 99, 0), 0), Err(IssueError::BadAddress));
        assert_eq!(c.check(&act(0, 0, 1 << 20), 0), Err(IssueError::BadAddress));
        let rd = Command::Read {
            rank: 0,
            bank: 0,
            col: 400,
            auto_precharge: false,
        };
        assert_eq!(c.check(&rd, 0), Err(IssueError::BadAddress));
    }

    #[test]
    fn earliest_issue_matches_pointwise_check() {
        // A busy SARP channel: an in-flight REFpb (bank 0, subarray 0), an
        // open row in bank 1, and a recent read on the data bus.
        let mut c = chan(SarpSupport::Enabled);
        c.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, 0)
            .unwrap();
        c.issue(act(0, 1, 3), 5).unwrap();
        c.issue(
            Command::Read {
                rank: 0,
                bank: 1,
                col: 2,
                auto_precharge: false,
            },
            14,
        )
        .unwrap();
        let cmds = [
            act(0, 0, 8_192), // other subarray of the refreshing bank
            act(0, 0, 5),     // conflicting subarray: waits for the refresh
            act(0, 2, 1),
            Command::Read {
                rank: 0,
                bank: 1,
                col: 3,
                auto_precharge: false,
            },
            Command::Write {
                rank: 0,
                bank: 1,
                col: 3,
                auto_precharge: false,
            },
            Command::Precharge { rank: 0, bank: 1 },
            Command::Precharge { rank: 0, bank: 0 }, // closed: state-blocked
            Command::RefreshPerBank { rank: 0, bank: 2 },
            Command::RefreshAllBank {
                rank: 0,
                fgr: FgrMode::X1,
            }, // bank 1 open: state-blocked
        ];
        const HORIZON: Cycle = 400;
        for cmd in &cmds {
            for now in 15..120 {
                let reported = c.earliest_issue(cmd, now);
                let probed = (now..now + HORIZON).find(|&t| c.check(cmd, t).is_ok());
                assert_eq!(
                    reported, probed,
                    "cmd={cmd:?} now={now}: earliest_issue disagrees with check()"
                );
            }
        }
    }

    #[test]
    fn auto_precharge_enables_next_activate_after_ras_rp() {
        let mut c = chan(SarpSupport::Disabled);
        let t = *c.timing();
        c.issue(act(0, 0, 1), 0).unwrap();
        c.issue(
            Command::Read {
                rank: 0,
                bank: 0,
                col: 0,
                auto_precharge: true,
            },
            t.rcd,
        )
        .unwrap();
        // Row closed by auto-precharge; re-activate after tRAS+tRP (>= tRC).
        let ready = (t.ras + t.rp).max(t.rc);
        assert_eq!(c.check(&act(0, 0, 2), ready - 1), Err(IssueError::TooEarly));
        assert!(c.can_issue(&act(0, 0, 2), ready));
    }
}
