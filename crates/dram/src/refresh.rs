//! The in-DRAM refresh unit.
//!
//! Commodity LPDDR devices pick the bank to refresh with an internal
//! sequential round-robin counter (§2.2.2); DARP moves that choice to the
//! memory controller (§4.2.1) by sending the bank ID on the address bus.
//! This module models the device-side bookkeeping either way:
//!
//! * a per-rank round-robin bank counter (what a baseline device would have
//!   refreshed next — baseline controllers mirror it);
//! * the number of rows covered per refresh command, including the DDR4 FGR
//!   scaling (2x/4x modes cover half/quarter the rows per command);
//! * for SARP, the decoupled refresh-subarray / local-row counters are
//!   realized by the per-bank row counter in [`crate::Bank`] plus
//!   [`crate::Geometry::subarray_of_row`].

use crate::timing::FgrMode;
use crate::Geometry;
use serde::{Deserialize, Serialize};

/// Device-side refresh bookkeeping for one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshUnit {
    rr_bank: Vec<usize>,
    banks_per_rank: usize,
    rows_per_refresh: u32,
    rows_per_bank: u32,
}

impl RefreshUnit {
    /// Creates the refresh unit for `ranks` ranks of the given geometry.
    pub fn new(geom: &Geometry) -> Self {
        Self {
            rr_bank: vec![0; geom.ranks_per_channel()],
            banks_per_rank: geom.banks_per_rank(),
            rows_per_refresh: geom.rows_per_refresh(),
            rows_per_bank: geom.rows_per_bank() as u32,
        }
    }

    /// The bank the in-DRAM round-robin counter would refresh next.
    pub fn next_rr_bank(&self, rank: usize) -> usize {
        self.rr_bank[rank]
    }

    /// Advances the round-robin counter after a `REFpb` (the device advances
    /// regardless of which bank the controller named, mirroring how a
    /// DARP-enabled device would keep its legacy counter in step).
    pub(crate) fn advance_rr(&mut self, rank: usize) {
        self.rr_bank[rank] = (self.rr_bank[rank] + 1) % self.banks_per_rank;
    }

    /// Rows refreshed in each covered bank by one refresh command in `fgr`
    /// mode. FGR trades more commands for fewer rows per command.
    pub fn rows_per_command(&self, fgr: FgrMode) -> u32 {
        (self.rows_per_refresh / fgr.rate() as u32).max(1)
    }

    /// Total rows per bank (for counter wrap-around).
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_counter_wraps_per_rank() {
        let geom = Geometry::paper_default();
        let mut u = RefreshUnit::new(&geom);
        assert_eq!(u.next_rr_bank(0), 0);
        for _ in 0..8 {
            u.advance_rr(0);
        }
        assert_eq!(u.next_rr_bank(0), 0);
        u.advance_rr(1);
        assert_eq!(u.next_rr_bank(1), 1);
        assert_eq!(u.next_rr_bank(0), 0);
    }

    #[test]
    fn fgr_scales_rows_per_command() {
        let geom = Geometry::paper_default();
        let u = RefreshUnit::new(&geom);
        assert_eq!(u.rows_per_command(FgrMode::X1), 8);
        assert_eq!(u.rows_per_command(FgrMode::X2), 4);
        assert_eq!(u.rows_per_command(FgrMode::X4), 2);
    }
}
