//! Property-based tests for the DRAM device model.

use dsarp_dram::{
    Command, Cycle, Density, DramChannel, FgrMode, Geometry, Retention, SarpSupport, TimingParams,
};
use proptest::prelude::*;

fn paper_channel(sarp: SarpSupport) -> DramChannel {
    DramChannel::new(
        Geometry::paper_default(),
        TimingParams::ddr3_1333(Density::G8, Retention::Ms32),
        sarp,
    )
}

proptest! {
    /// decode/encode is a bijection on line-aligned addresses.
    #[test]
    fn address_mapping_roundtrips(addr in 0u64..(16u64 << 30)) {
        let g = Geometry::paper_default();
        let aligned = addr & !(g.line_bytes() as u64 - 1);
        let loc = g.decode(aligned);
        prop_assert_eq!(g.encode(&loc), aligned);
        prop_assert!(loc.channel < g.channels());
        prop_assert!(loc.rank < g.ranks_per_channel());
        prop_assert!(loc.bank < g.banks_per_rank());
        prop_assert!((loc.row as usize) < g.rows_per_bank());
        prop_assert!((loc.col as usize) < g.cols_per_row());
    }

    /// Distinct line-aligned addresses decode to distinct locations.
    #[test]
    fn address_mapping_is_injective(a in 0u64..(1u64 << 34), b in 0u64..(1u64 << 34)) {
        let g = Geometry::paper_default();
        let a = a & !(63u64);
        let b = b & !(63u64);
        let (la, lb) = (g.decode(a), g.decode(b));
        if a != b && a < g.capacity_bytes() && b < g.capacity_bytes() {
            prop_assert_ne!(la, lb);
        }
    }

    /// Subarray index is always in range and changes only at subarray-size
    /// boundaries.
    #[test]
    fn subarray_of_row_in_range(row in 0u32..65_536, n in prop::sample::select(vec![1usize,2,4,8,16,32,64])) {
        let g = Geometry::paper_default().with_subarrays(n).unwrap();
        let s = g.subarray_of_row(row);
        prop_assert!(s < n);
        if !(row as usize + 1).is_multiple_of(g.rows_per_subarray()) && row < 65_535 {
            prop_assert_eq!(g.subarray_of_row(row + 1), s);
        }
    }
}

/// A randomized legal-command fuzzer: attempt random commands at advancing
/// cycles; whatever `can_issue` admits must also succeed in `issue`, and the
/// device state must stay internally consistent.
fn fuzz_channel(sarp: SarpSupport, seed_cmds: Vec<(u8, u8, u8, u16, u8)>) {
    let mut chan = paper_channel(sarp);
    let mut now: Cycle = 0;
    let mut refpb_windows: Vec<(usize, Cycle, Cycle)> = Vec::new(); // rank, start, end
    for (kind, rank, bank, row, gap) in seed_cmds {
        now += 1 + gap as Cycle;
        let rank = (rank % 2) as usize;
        let bank = (bank % 8) as usize;
        let row = (row % 1024) as u32 * 64; // spread across subarrays
        let cmd = match kind % 6 {
            0 => Command::Activate { rank, bank, row },
            1 => Command::Precharge { rank, bank },
            2 => Command::Read {
                rank,
                bank,
                col: (row % 128),
                auto_precharge: kind % 2 == 0,
            },
            3 => Command::Write {
                rank,
                bank,
                col: (row % 128),
                auto_precharge: kind % 2 == 1,
            },
            4 => Command::RefreshPerBank { rank, bank },
            _ => Command::RefreshAllBank {
                rank,
                fgr: FgrMode::X1,
            },
        };
        if chan.can_issue(&cmd, now) {
            let receipt = chan
                .issue(cmd, now)
                .expect("can_issue admitted the command");
            if let Command::RefreshPerBank { rank, .. } = cmd {
                let end = receipt.refresh_done.unwrap();
                // JEDEC non-overlap: no other REFpb window in this rank may
                // contain `now`.
                for &(r, s, e) in &refpb_windows {
                    if r == rank {
                        assert!(now >= e || now < s, "REFpb overlap in rank {rank}");
                    }
                }
                refpb_windows.push((rank, now, end));
            }
            if let Command::Read { .. } = cmd {
                let ready = receipt.data_ready.unwrap();
                assert!(ready > now);
            }
        } else {
            // Rejected commands must not mutate state: issue must fail too.
            assert!(chan.issue(cmd, now).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_command_streams_keep_invariants_plain(
        cmds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), 0u8..32), 1..400)
    ) {
        fuzz_channel(SarpSupport::Disabled, cmds);
    }

    #[test]
    fn random_command_streams_keep_invariants_sarp(
        cmds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), 0u8..32), 1..400)
    ) {
        fuzz_channel(SarpSupport::Enabled, cmds);
    }

    /// Under SARP, any ACT admitted while the bank has a refresh in flight
    /// must target a different subarray.
    #[test]
    fn sarp_never_admits_conflicting_activate(rows in prop::collection::vec(0u32..65_536, 1..64)) {
        let mut chan = paper_channel(SarpSupport::Enabled);
        chan.issue(Command::RefreshPerBank { rank: 0, bank: 0 }, 0).unwrap();
        let refreshing = chan.refreshing_subarray(0, 0, 1).unwrap();
        let geom = *chan.geometry();
        let mut now = 10; // inside the tRFCpb window (102 cycles)
        for row in rows {
            let cmd = Command::Activate { rank: 0, bank: 0, row };
            if chan.can_issue(&cmd, now) {
                prop_assert_ne!(geom.subarray_of_row(row), refreshing);
                chan.issue(cmd, now).unwrap();
                // Close it again so the next ACT has a chance.
                now += chan.timing().ras;
                chan.issue(Command::Precharge { rank: 0, bank: 0 }, now).unwrap();
                now += chan.timing().rp;
            }
            now += 1;
            if now >= chan.timing().rfc_pb {
                break;
            }
        }
    }

    /// Energy accounting never goes backwards and accesses count reads+writes.
    #[test]
    fn energy_counters_are_monotonic(gaps in prop::collection::vec(1u64..40, 1..100)) {
        let mut chan = paper_channel(SarpSupport::Disabled);
        let mut now = 0;
        let mut last_accesses = 0;
        let mut open = false;
        for (i, g) in gaps.iter().enumerate() {
            now += g;
            let cmd = if !open {
                Command::Activate { rank: 0, bank: 0, row: (i % 100) as u32 }
            } else {
                Command::Read { rank: 0, bank: 0, col: 0, auto_precharge: true }
            };
            if chan.can_issue(&cmd, now) {
                chan.issue(cmd, now).unwrap();
                open = !open;
            }
            let acc = chan.energy_counters().accesses();
            prop_assert!(acc >= last_accesses);
            last_accesses = acc;
        }
        chan.finalize_energy(now);
        prop_assert!(chan.energy_counters().active_rank_cycles() <= now * 2);
    }
}
