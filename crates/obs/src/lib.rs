//! Zero-dependency metrics core for the DSARP reproduction.
//!
//! Every layer of the stack — simulator, campaign runner, campaign server —
//! records into these primitives:
//!
//! * [`Counter`] / [`Gauge`]: lock-free atomics;
//! * [`Histogram`]: fixed log2 buckets (`[0], [1], [2,3], [4,7], …`) with
//!   sum and count, plus a [`Span`] timer that observes elapsed
//!   microseconds on drop;
//! * [`Family`]: the same metrics keyed by label values;
//! * [`Registry`]: named registration plus three read paths — a plain-data
//!   [`Snapshot`], the Prometheus text exposition format
//!   ([`Registry::render_prometheus`]) and a JSON object
//!   ([`Registry::render_json`]).
//!
//! The crate deliberately depends on nothing (not even the workspace's
//! vendored serde): it must be embeddable in every layer without dependency
//! cycles, and its renderers are hand-written against the exposition
//! formats' escaping rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 buckets a [`Histogram`] carries. Bucket 0 holds the
/// value 0; bucket `i >= 1` holds values whose bit length is `i` (the
/// range `[2^(i-1), 2^i - 1]`); the last bucket additionally absorbs
/// everything larger (`+Inf` in Prometheus terms).
pub const NBUCKETS: usize = 32;

/// The bucket a value lands in: 0 for 0, otherwise the value's bit
/// length clamped to the last bucket.
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(NBUCKETS - 1)
}

/// Inclusive upper bound of a bucket, or `None` for the last (`+Inf`)
/// bucket.
pub fn bucket_bound(index: usize) -> Option<u64> {
    match index {
        0 => Some(0),
        i if i < NBUCKETS - 1 => Some((1u64 << i) - 1),
        _ => None,
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram with lock-free observation.
///
/// Buckets are fixed (see [`NBUCKETS`] / [`bucket_index`]): cheap enough
/// for per-request latencies and per-cycle queue depths alike, with no
/// configuration to mismatch between writers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a span timer that observes the elapsed **microseconds**
    /// into this histogram when dropped.
    pub fn time(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Plain-data view of the current state. Taken bucket-by-bucket
    /// without a global lock, so under concurrent writers the parts can
    /// be transiently inconsistent (sum/count ahead of buckets) — each
    /// part is individually monotonic.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Times a region of code; see [`Histogram::time`].
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.hist.observe(us);
    }
}

/// Plain-data view of a [`Histogram`], with per-bucket (non-cumulative)
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[i]` counts values in
    /// bucket `i`; see [`bucket_bound`]).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// A set of metrics of one kind, keyed by label values.
///
/// The label *names* live on the registry entry; a `Family` only stores
/// one metric per distinct label-value tuple. Lookup takes a mutex, so
/// hot paths should hold on to the returned `Arc` instead of re-resolving
/// labels per event.
#[derive(Debug, Default)]
pub struct Family<M> {
    series: Mutex<BTreeMap<Vec<String>, Arc<M>>>,
}

impl<M: Default> Family<M> {
    /// An empty family.
    pub fn new() -> Self {
        Self {
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// The metric for a label-value tuple, created on first use.
    pub fn with_labels(&self, values: &[&str]) -> Arc<M> {
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let mut series = self.series.lock().expect("family lock");
        Arc::clone(series.entry(key).or_default())
    }

    /// All series as `(label values, metric)` pairs, sorted by labels.
    pub fn collect(&self) -> Vec<(Vec<String>, Arc<M>)> {
        let series = self.series.lock().expect("family lock");
        series
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// What a registry entry holds.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFamily(Arc<Family<Counter>>, Vec<String>),
    HistogramFamily(Arc<Family<Histogram>>, Vec<String>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// Named metric registration plus rendering.
///
/// Registration returns an `Arc` handle the instrumented code keeps; the
/// registry itself is only walked at render time.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// One rendered value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's current state.
    Histogram(HistogramSnapshot),
}

/// One metric series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// `(label name, label value)` pairs; empty for unlabeled metrics.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SnapshotValue,
}

/// Plain-data view of every registered series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All series, in registration order (family series sorted by label
    /// values within their entry).
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// The counter value for `name` with exactly `labels`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|((n, v), (ln, lv))| n == ln && v == lv)
            })
            .and_then(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, metric: Metric) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name `{name}`"
        );
        let mut entries = self.entries.lock().expect("registry lock");
        assert!(
            entries.iter().all(|e| e.name != name),
            "metric `{name}` registered twice"
        );
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register(name, help, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Registers and returns a labeled counter family.
    pub fn counter_family(&self, name: &str, help: &str, labels: &[&str]) -> Arc<Family<Counter>> {
        let f = Arc::new(Family::new());
        self.register(
            name,
            help,
            Metric::CounterFamily(
                Arc::clone(&f),
                labels.iter().map(|l| l.to_string()).collect(),
            ),
        );
        f
    }

    /// Registers and returns a labeled histogram family.
    pub fn histogram_family(
        &self,
        name: &str,
        help: &str,
        labels: &[&str],
    ) -> Arc<Family<Histogram>> {
        let f = Arc::new(Family::new());
        self.register(
            name,
            help,
            Metric::HistogramFamily(
                Arc::clone(&f),
                labels.iter().map(|l| l.to_string()).collect(),
            ),
        );
        f
    }

    /// Plain-data view of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry lock").clone();
        let mut out = Vec::new();
        for e in &entries {
            match &e.metric {
                Metric::Counter(c) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Counter(c.get()),
                }),
                Metric::Gauge(g) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Gauge(g.get()),
                }),
                Metric::Histogram(h) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    labels: Vec::new(),
                    value: SnapshotValue::Histogram(h.snapshot()),
                }),
                Metric::CounterFamily(f, names) => {
                    for (values, c) in f.collect() {
                        out.push(SnapshotEntry {
                            name: e.name.clone(),
                            labels: zip_labels(names, &values),
                            value: SnapshotValue::Counter(c.get()),
                        });
                    }
                }
                Metric::HistogramFamily(f, names) => {
                    for (values, h) in f.collect() {
                        out.push(SnapshotEntry {
                            name: e.name.clone(),
                            labels: zip_labels(names, &values),
                            value: SnapshotValue::Histogram(h.snapshot()),
                        });
                    }
                }
            }
        }
        Snapshot { entries: out }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, escaped label values,
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
    /// histograms.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock").clone();
        let mut out = String::new();
        for e in &entries {
            let kind = match &e.metric {
                Metric::Counter(_) | Metric::CounterFamily(..) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) | Metric::HistogramFamily(..) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            let _ = writeln!(out, "# TYPE {} {kind}", e.name);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    render_histogram(&mut out, &e.name, &[], &h.snapshot());
                }
                Metric::CounterFamily(f, names) => {
                    for (values, c) in f.collect() {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            e.name,
                            label_block(&zip_labels(names, &values)),
                            c.get()
                        );
                    }
                }
                Metric::HistogramFamily(f, names) => {
                    for (values, h) in f.collect() {
                        render_histogram(
                            &mut out,
                            &e.name,
                            &zip_labels(names, &values),
                            &h.snapshot(),
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object: unlabeled metrics map
    /// name to value, families map name to a `series` array, histograms
    /// carry per-bucket counts with their upper bounds.
    pub fn render_json(&self) -> String {
        let snapshot = self.snapshot();
        let mut grouped: BTreeMap<&str, Vec<&SnapshotEntry>> = BTreeMap::new();
        for e in &snapshot.entries {
            grouped.entry(&e.name).or_default().push(e);
        }
        let mut out = String::from("{");
        let mut first = true;
        for (name, series) in &grouped {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:", json_string(name));
            let labeled = series.iter().any(|e| !e.labels.is_empty());
            if labeled {
                out.push('[');
                for (i, e) in series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"labels\":{");
                    for (j, (ln, lv)) in e.labels.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}:{}", json_string(ln), json_string(lv));
                    }
                    out.push_str("},\"value\":");
                    json_value(&mut out, &e.value);
                    out.push('}');
                }
                out.push(']');
            } else if let Some(e) = series.first() {
                json_value(&mut out, &e.value);
            }
        }
        out.push('}');
        out
    }
}

fn zip_labels(names: &[String], values: &[String]) -> Vec<(String, String)> {
    names.iter().cloned().zip(values.iter().cloned()).collect()
}

/// `{k="v",...}` with escaped values, or the empty string for no labels.
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, count) in snap.buckets.iter().enumerate() {
        cumulative += count;
        let mut with_le = labels.to_vec();
        let bound = match bucket_bound(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        with_le.push(("le".to_string(), bound));
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", label_block(&with_le));
    }
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels), snap.sum);
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels), snap.count);
}

/// Escapes a `# HELP` text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(out: &mut String, value: &SnapshotValue) {
    match value {
        SnapshotValue::Counter(v) => {
            let _ = write!(out, "{v}");
        }
        SnapshotValue::Gauge(v) => {
            let _ = write!(out, "{v}");
        }
        SnapshotValue::Histogram(h) => {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            let mut first = true;
            for (i, count) in h.buckets.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let bound = match bucket_bound(i) {
                    Some(b) => format!("\"{b}\""),
                    None => "\"+Inf\"".to_string(),
                };
                let _ = write!(out, "{{\"le\":{bound},\"count\":{count}}}");
            }
            out.push_str("]}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
        // Every finite bound is the largest value of its bucket.
        for i in 0..NBUCKETS - 1 {
            let bound = bucket_bound(i).expect("finite bucket");
            assert_eq!(bucket_index(bound), i, "upper bound of bucket {i}");
            assert_eq!(
                bucket_index(bound + 1),
                i + 1,
                "first value past bucket {i}"
            );
        }
        assert_eq!(bucket_bound(NBUCKETS - 1), None);
    }

    #[test]
    fn histogram_accumulates_sum_and_count() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 106);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[7], 1); // 100 in [64,127]
    }

    #[test]
    fn prometheus_text_escapes_and_renders_labels() {
        let r = Registry::new();
        let f = r.counter_family("dsarp_test_total", "help with \\ and\nnewline", &["label"]);
        f.with_labels(&["quote\" slash\\ nl\n"]).add(3);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP dsarp_test_total help with \\\\ and\\nnewline\n"));
        assert!(text.contains("# TYPE dsarp_test_total counter\n"));
        assert!(text.contains("dsarp_test_total{label=\"quote\\\" slash\\\\ nl\\n\"} 3\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("dsarp_lat", "latency");
        h.observe(1);
        h.observe(3);
        h.observe(u64::MAX);
        let text = r.render_prometheus();
        assert!(text.contains("dsarp_lat_bucket{le=\"0\"} 0\n"));
        assert!(text.contains("dsarp_lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("dsarp_lat_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("dsarp_lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dsarp_lat_count 3\n"));
    }

    #[test]
    fn json_renderer_produces_expected_shapes() {
        let r = Registry::new();
        r.counter("plain_total", "a").add(7);
        r.gauge("depth", "b").set(-2);
        let f = r.counter_family("by_route_total", "c", &["route"]);
        f.with_labels(&["/metrics"]).inc();
        let json = r.render_json();
        assert!(json.contains("\"plain_total\":7"));
        assert!(json.contains("\"depth\":-2"));
        assert!(
            json.contains("\"by_route_total\":[{\"labels\":{\"route\":\"/metrics\"},\"value\":1}]")
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn snapshot_lookup_by_labels() {
        let r = Registry::new();
        let f = r.counter_family("reqs_total", "d", &["method", "route"]);
        f.with_labels(&["GET", "/healthz"]).add(4);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("reqs_total", &[("method", "GET"), ("route", "/healthz")]),
            Some(4)
        );
        assert_eq!(
            snap.counter("reqs_total", &[("method", "PUT"), ("route", "/healthz")]),
            None
        );
    }

    #[test]
    fn span_timer_observes_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.time();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn hammer_concurrent_counters_and_histograms_lose_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS * PER_THREAD);
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        // Sum of 0..N-1 observed exactly once each.
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum, n * (n - 1) / 2);
    }

    #[test]
    fn family_series_are_shared_and_sorted() {
        let f: Family<Counter> = Family::new();
        f.with_labels(&["b"]).inc();
        f.with_labels(&["a"]).inc();
        f.with_labels(&["b"]).inc();
        let series = f.collect();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, vec!["a".to_string()]);
        assert_eq!(series[1].0, vec!["b".to_string()]);
        assert_eq!(series[1].1.get(), 2);
    }
}
