//! DSARP trace v1: lossless dialects and the single-pass streaming reader.
//!
//! The plain Ramulator text format (see [`crate::trace_file`]) cannot
//! express two generator features — store bubbles and load dependence —
//! so captured non-load-only streams replay only approximately. The v1
//! encoding closes that gap with two lossless dialects of the same op
//! stream:
//!
//! * **`text-ext`** — an opt-in text dialect. The *first line* must be the
//!   versioned header [`TEXT_EXT_HEADER`] (`#!dsarp-trace v1`); every
//!   record line is then `<bubbles> <addr> <flags>` where the extension
//!   column `<flags>` is `L` (load), `LD` (dependent load), `S` (store)
//!   or `SD` (dependent store). Bubbles apply to the record's own op, so
//!   store bubbles and the dependence bit survive exactly. Files without
//!   the header keep parsing as plain Ramulator text, unchanged.
//! * **`bin`** (`.dtrace`) — a fixed-record binary encoding:
//!   a [`BIN_HEADER_LEN`]-byte header ([`BIN_MAGIC`] + record count as a
//!   little-endian `u64`), then one [`BIN_RECORD_LEN`]-byte record per op:
//!   `addr: u64 LE | bubbles: u32 LE | flags: u32 LE` (bit 0 = store,
//!   bit 1 = dependent, all other bits must be zero). Every field is
//!   little-endian and every record is 16-byte aligned, so the format is
//!   mmap- and chunk-read-friendly.
//!
//! [`scan_trace_bytes`] / [`read_trace_path`] auto-detect the dialect and
//! validate, count, content-hash and (optionally) materialize the ops in
//! **one pass** over the bytes, in [`READ_CHUNK`]-sized chunks — the
//! campaign layer resolves traces through this instead of reading and
//! hashing files twice. [`BinTraceSource`] replays a `.dtrace` file as an
//! infinite cyclic [`TraceSource`] holding at most one chunk in memory,
//! so million-request traces never need whole-file buffers.
//!
//! Both text dialects are content-hashed with the same byte-wise
//! FNV-1a-128 the campaign store has always used, so existing cached
//! cells stay warm. The binary dialect hashes 64-bit little-endian words
//! instead ([`Fnv128::update_words`]): one multiply per 8 bytes, which is
//! what makes single-pass binary ingestion several times faster than the
//! text parse+hash pipeline while keeping the same
//! edit-one-byte-invalidates-exactly-that-trace semantics.
//!
//! Truncation contracts mirror the strict text parser: a text-dialect
//! file must end in `\n`; a `.dtrace` file must be exactly
//! `header + count * 16` bytes. Anything else is
//! [`TraceFileError::Truncated`] — a torn tail is an error, never a
//! silently shorter trace.

use crate::trace::{CyclicTrace, MemKind, TraceOp, TraceSource};
use crate::trace_file::TraceFileError;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The `text-ext` header line (without the trailing newline). Must be the
/// first line of the file.
pub const TEXT_EXT_HEADER: &str = "#!dsarp-trace v1";

/// Prefix shared by all versioned text headers; an unknown version is a
/// parse error, not a comment.
const TEXT_HEADER_PREFIX: &str = "#!dsarp-trace";

/// Magic bytes opening a `.dtrace` file.
pub const BIN_MAGIC: [u8; 8] = *b"DSARPTR1";

/// `.dtrace` header length: [`BIN_MAGIC`] + record count (`u64` LE).
pub const BIN_HEADER_LEN: usize = 16;

/// `.dtrace` record length: `addr u64 LE | bubbles u32 LE | flags u32 LE`.
pub const BIN_RECORD_LEN: usize = 16;

/// `flags` bit 0: the op is a store.
const FLAG_STORE: u32 = 1;
/// `flags` bit 1: the op is dependent on the previous load.
const FLAG_DEP: u32 = 2;

/// Chunk size for streaming reads (a multiple of [`BIN_RECORD_LEN`] and
/// of the 8-byte hash word).
pub const READ_CHUNK: usize = 64 * 1024;

/// Which encoding a trace file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceDialect {
    /// Plain Ramulator text: `<bubbles> <rd-addr> [<wr-addr>]`. Lossy for
    /// store bubbles and load dependence.
    Text,
    /// Headered text with an explicit per-op flags column. Lossless.
    TextExt,
    /// Fixed-record little-endian binary (`.dtrace`). Lossless.
    Bin,
}

impl TraceDialect {
    /// The CLI name (`text` / `text-ext` / `bin`).
    pub fn label(self) -> &'static str {
        match self {
            TraceDialect::Text => "text",
            TraceDialect::TextExt => "text-ext",
            TraceDialect::Bin => "bin",
        }
    }

    /// Parses a CLI name.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "text" => Some(TraceDialect::Text),
            "text-ext" => Some(TraceDialect::TextExt),
            "bin" => Some(TraceDialect::Bin),
            _ => None,
        }
    }

    /// Conventional file extension (`trace` for both text dialects,
    /// `dtrace` for binary).
    pub fn extension(self) -> &'static str {
        match self {
            TraceDialect::Text | TraceDialect::TextExt => "trace",
            TraceDialect::Bin => "dtrace",
        }
    }

    /// Whether every [`TraceOp`] stream round-trips exactly.
    pub fn lossless(self) -> bool {
        !matches!(self, TraceDialect::Text)
    }
}

impl std::fmt::Display for TraceDialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A streaming FNV-1a-128 hasher (the campaign fingerprint fold).
///
/// [`Fnv128::update`] folds byte-wise — identical to the campaign's
/// `fingerprint_bytes`, so text traces hash to the values existing stores
/// already key on. [`Fnv128::update_words`] folds 64-bit little-endian
/// words (8 bytes per multiply) and is the content hash of `.dtrace`
/// files; the two folds are different functions, which is fine because a
/// file's dialect is part of its bytes (magic vs. text).
#[derive(Debug, Clone)]
pub struct Fnv128 {
    h: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fnv128 {
    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv128 { h: FNV128_OFFSET }
    }

    /// Byte-wise FNV-1a fold (text dialects).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        self.h = h;
    }

    /// 64-bit little-endian word fold (`.dtrace`). `bytes.len()` must be a
    /// multiple of 8; callers feed whole header/record units.
    pub fn update_words(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len().is_multiple_of(8));
        let mut h = self.h;
        for w in bytes.chunks_exact(8) {
            h ^= u128::from(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
            h = h.wrapping_mul(FNV128_PRIME);
        }
        self.h = h;
    }

    /// The 128-bit digest so far.
    pub fn finish(&self) -> u128 {
        self.h
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Content hash of a whole trace file's bytes under its dialect's fold
/// (byte-wise for text dialects, word-wise for binary). This is what the
/// campaign layer stores as a trace's identity.
pub fn hash_trace_bytes(dialect: TraceDialect, bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    match dialect {
        TraceDialect::Text | TraceDialect::TextExt => h.update(bytes),
        TraceDialect::Bin => {
            let words = bytes.len() / 8 * 8;
            h.update_words(&bytes[..words]);
            h.update(&bytes[words..]);
        }
    }
    h.finish()
}

/// What to keep in memory while scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialize {
    /// Validate, count and hash only — `ops` stays `None`.
    No,
    /// Materialize ops for text dialects only; binary traces stream at
    /// replay time ([`BinTraceSource`]) and never need a whole-file
    /// `Vec<TraceOp>`.
    TextOnly,
    /// Materialize ops for every dialect (conversion).
    All,
}

/// The result of one streaming pass over a trace file.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Detected encoding.
    pub dialect: TraceDialect,
    /// Trace entries (plain-text store columns count separately).
    pub entries: usize,
    /// Total file bytes scanned.
    pub bytes: u64,
    /// Content hash under the dialect's fold (see [`hash_trace_bytes`]).
    pub hash: u128,
    /// The ops, when requested via [`Materialize`].
    pub ops: Option<Vec<TraceOp>>,
}

fn binary_err(offset: u64, what: &str) -> TraceFileError {
    TraceFileError::Binary {
        offset,
        what: what.to_string(),
    }
}

/// Decodes one fixed-size binary record; `Err` names the rejected flags.
fn decode_record(rec: &[u8]) -> Result<TraceOp, u32> {
    debug_assert_eq!(rec.len(), BIN_RECORD_LEN);
    let addr = u64::from_le_bytes(rec[0..8].try_into().expect("record addr"));
    let bubbles = u32::from_le_bytes(rec[8..12].try_into().expect("record bubbles"));
    let flags = u32::from_le_bytes(rec[12..16].try_into().expect("record flags"));
    if flags & !(FLAG_STORE | FLAG_DEP) != 0 {
        return Err(flags);
    }
    Ok(TraceOp {
        bubbles,
        kind: if flags & FLAG_STORE != 0 {
            MemKind::Store
        } else {
            MemKind::Load
        },
        addr,
        dependent: flags & FLAG_DEP != 0,
    })
}

fn encode_record(op: &TraceOp, out: &mut impl Write) -> std::io::Result<()> {
    let mut flags = 0u32;
    if op.kind == MemKind::Store {
        flags |= FLAG_STORE;
    }
    if op.dependent {
        flags |= FLAG_DEP;
    }
    out.write_all(&op.addr.to_le_bytes())?;
    out.write_all(&op.bubbles.to_le_bytes())?;
    out.write_all(&flags.to_le_bytes())
}

fn parse_addr(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TextMode {
    /// The first line has not been seen yet.
    Unknown,
    Plain,
    Ext,
}

enum State {
    /// Fewer than [`BIN_MAGIC`] bytes seen; dialect undecided.
    Detect(Vec<u8>),
    Text {
        mode: TextMode,
        /// Partial last line carried across chunks.
        carry: Vec<u8>,
        /// 1-based number of the next line.
        line: usize,
        last_byte: u8,
    },
    /// Magic matched; accumulating the rest of the header.
    BinHeader(Vec<u8>),
    BinRecords {
        count: u64,
        seen: u64,
        /// Partial last record carried across chunks.
        carry: Vec<u8>,
    },
}

/// Single-pass streaming trace scanner: feed chunks in file order, then
/// [`Scanner::finish`]. Validation, entry counting, content hashing and
/// (optional) op materialization all happen in the same pass.
struct Scanner {
    materialize: Materialize,
    hasher: Fnv128,
    bytes: u64,
    entries: usize,
    ops: Vec<TraceOp>,
    state: State,
}

impl Scanner {
    fn new(materialize: Materialize) -> Self {
        Scanner {
            materialize,
            hasher: Fnv128::new(),
            bytes: 0,
            entries: 0,
            ops: Vec::new(),
            state: State::Detect(Vec::new()),
        }
    }

    fn keep_ops(&self, dialect: TraceDialect) -> bool {
        match self.materialize {
            Materialize::No => false,
            Materialize::TextOnly => dialect != TraceDialect::Bin,
            Materialize::All => true,
        }
    }

    fn feed(&mut self, chunk: &[u8]) -> Result<(), TraceFileError> {
        self.bytes += chunk.len() as u64;
        match &mut self.state {
            State::Detect(buf) => {
                buf.extend_from_slice(chunk);
                if buf.len() < BIN_MAGIC.len() {
                    return Ok(());
                }
                let buf = std::mem::take(buf);
                if buf[..BIN_MAGIC.len()] == BIN_MAGIC {
                    self.state = State::BinHeader(Vec::new());
                } else {
                    self.state = State::Text {
                        mode: TextMode::Unknown,
                        carry: Vec::new(),
                        line: 1,
                        last_byte: 0,
                    };
                }
                self.dispatch(&buf)
            }
            _ => self.dispatch(chunk),
        }
    }

    fn dispatch(&mut self, data: &[u8]) -> Result<(), TraceFileError> {
        match &self.state {
            State::Detect(_) => unreachable!("feed resolves detection first"),
            State::Text { .. } => self.feed_text(data),
            State::BinHeader(_) | State::BinRecords { .. } => self.feed_bin(data),
        }
    }

    fn feed_text(&mut self, data: &[u8]) -> Result<(), TraceFileError> {
        if data.is_empty() {
            return Ok(());
        }
        self.hasher.update(data);
        let keep = self.keep_ops(TraceDialect::TextExt); // same for both text dialects
        let State::Text {
            mode,
            carry,
            line,
            last_byte,
        } = &mut self.state
        else {
            unreachable!("feed_text outside text state");
        };
        *last_byte = data[data.len() - 1];
        let mut rest = data;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            let full;
            let text: &[u8] = if carry.is_empty() {
                head
            } else {
                carry.extend_from_slice(head);
                full = std::mem::take(carry);
                &full
            };
            let n = *line;
            *line += 1;
            parse_text_line(text, n, mode, keep, &mut self.entries, &mut self.ops)?;
        }
        carry.extend_from_slice(rest);
        Ok(())
    }

    fn feed_bin(&mut self, mut data: &[u8]) -> Result<(), TraceFileError> {
        if let State::BinHeader(buf) = &mut self.state {
            let need = BIN_HEADER_LEN - buf.len();
            let take = need.min(data.len());
            buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if buf.len() < BIN_HEADER_LEN {
                return Ok(());
            }
            let count = u64::from_le_bytes(buf[8..16].try_into().expect("header count"));
            self.hasher.update_words(buf);
            if count == 0 {
                return Err(TraceFileError::Empty);
            }
            self.state = State::BinRecords {
                count,
                seen: 0,
                carry: Vec::new(),
            };
        }
        let keep = self.keep_ops(TraceDialect::Bin);
        let State::BinRecords { count, seen, carry } = &mut self.state else {
            unreachable!("feed_bin outside binary state");
        };
        // Finish a partial record carried from the previous chunk first.
        if !carry.is_empty() {
            let need = BIN_RECORD_LEN - carry.len();
            let take = need.min(data.len());
            carry.extend_from_slice(&data[..take]);
            data = &data[take..];
            if carry.len() < BIN_RECORD_LEN {
                return Ok(());
            }
            let rec = std::mem::take(carry);
            if *seen == *count {
                return Err(binary_err(
                    BIN_HEADER_LEN as u64 + *count * BIN_RECORD_LEN as u64,
                    "bytes beyond the declared record count",
                ));
            }
            self.hasher.update_words(&rec);
            let op = decode_record(&rec).map_err(|flags| bad_flags_err(*seen, flags))?;
            *seen += 1;
            self.entries += 1;
            if keep {
                self.ops.push(op);
            }
        }
        let State::BinRecords { count, seen, carry } = &mut self.state else {
            unreachable!("feed_bin outside binary state");
        };
        let whole = data.len() / BIN_RECORD_LEN * BIN_RECORD_LEN;
        let (records, tail) = data.split_at(whole);
        if *seen + (records.len() / BIN_RECORD_LEN) as u64 > *count
            || (*seen == *count && !tail.is_empty())
        {
            return Err(binary_err(
                BIN_HEADER_LEN as u64 + *count * BIN_RECORD_LEN as u64,
                "bytes beyond the declared record count",
            ));
        }
        self.hasher.update_words(records);
        for rec in records.chunks_exact(BIN_RECORD_LEN) {
            let op = decode_record(rec).map_err(|flags| bad_flags_err(*seen, flags))?;
            *seen += 1;
            self.entries += 1;
            if keep {
                self.ops.push(op);
            }
        }
        carry.extend_from_slice(tail);
        Ok(())
    }

    fn finish(mut self) -> Result<TraceSummary, TraceFileError> {
        // A file shorter than the magic can only be (tiny) text: rerun
        // the buffered prefix through the text path, then finish again.
        if let State::Detect(buf) = &mut self.state {
            if buf.is_empty() {
                return Err(TraceFileError::Empty);
            }
            let buf = std::mem::take(buf);
            self.state = State::Text {
                mode: TextMode::Unknown,
                carry: Vec::new(),
                line: 1,
                last_byte: 0,
            };
            self.feed_text(&buf)?;
            return self.finish();
        }
        let dialect = match &self.state {
            State::Detect(_) => unreachable!("handled above"),
            State::Text {
                mode, last_byte, ..
            } => {
                if *last_byte != b'\n' {
                    return Err(TraceFileError::Truncated);
                }
                match mode {
                    TextMode::Ext => TraceDialect::TextExt,
                    _ => TraceDialect::Text,
                }
            }
            State::BinHeader(_) => return Err(TraceFileError::Truncated),
            State::BinRecords { count, seen, carry } => {
                if !carry.is_empty() || seen < count {
                    return Err(TraceFileError::Truncated);
                }
                TraceDialect::Bin
            }
        };
        if self.entries == 0 {
            return Err(TraceFileError::Empty);
        }
        let keep = self.keep_ops(dialect);
        Ok(TraceSummary {
            dialect,
            entries: self.entries,
            bytes: self.bytes,
            hash: self.hasher.finish(),
            ops: keep.then_some(self.ops),
        })
    }
}

fn bad_flags_err(record: u64, flags: u32) -> TraceFileError {
    TraceFileError::Binary {
        offset: BIN_HEADER_LEN as u64 + record * BIN_RECORD_LEN as u64 + 12,
        what: format!("record {record} has invalid flags {flags:#x}"),
    }
}

/// Parses one text line in either dialect, resolving the mode on the
/// first line.
fn parse_text_line(
    raw: &[u8],
    line_no: usize,
    mode: &mut TextMode,
    keep: bool,
    entries: &mut usize,
    ops: &mut Vec<TraceOp>,
) -> Result<(), TraceFileError> {
    let err = |text: &str| TraceFileError::Parse {
        line: line_no,
        text: text.to_string(),
    };
    let Ok(text) = std::str::from_utf8(raw) else {
        return Err(err("<non-utf8 line>"));
    };
    let text = text.trim();
    if *mode == TextMode::Unknown {
        // The first line decides the dialect: the exact v1 header selects
        // text-ext; an unknown `#!dsarp-trace` version is an error (NOT a
        // comment — silently parsing a future dialect as plain text would
        // replay wrong streams); anything else is plain Ramulator text.
        if text == TEXT_EXT_HEADER {
            *mode = TextMode::Ext;
            return Ok(());
        }
        if text.starts_with(TEXT_HEADER_PREFIX) {
            return Err(err(text));
        }
        *mode = TextMode::Plain;
    }
    if text.is_empty() || text.starts_with('#') {
        return Ok(());
    }
    let mut toks = text.split_whitespace();
    let bubbles: u32 = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(text))?;
    let addr = toks.next().and_then(parse_addr).ok_or_else(|| err(text))?;
    match *mode {
        TextMode::Plain => {
            *entries += 1;
            if keep {
                ops.push(TraceOp {
                    bubbles,
                    kind: MemKind::Load,
                    addr,
                    dependent: false,
                });
            }
            if let Some(tok) = toks.next() {
                let wr = parse_addr(tok).ok_or_else(|| err(text))?;
                *entries += 1;
                if keep {
                    ops.push(TraceOp {
                        bubbles: 0,
                        kind: MemKind::Store,
                        addr: wr,
                        dependent: false,
                    });
                }
            }
        }
        TextMode::Ext => {
            let (kind, dependent) = match toks.next() {
                Some("L") => (MemKind::Load, false),
                Some("LD") => (MemKind::Load, true),
                Some("S") => (MemKind::Store, false),
                Some("SD") => (MemKind::Store, true),
                _ => return Err(err(text)),
            };
            *entries += 1;
            if keep {
                ops.push(TraceOp {
                    bubbles,
                    kind,
                    addr,
                    dependent,
                });
            }
        }
        TextMode::Unknown => unreachable!("mode resolved above"),
    }
    if toks.next().is_some() {
        return Err(err(text));
    }
    Ok(())
}

/// Scans in-memory bytes: auto-detects the dialect, validates strictly
/// (torn tails rejected), counts entries, content-hashes, and optionally
/// materializes the ops — all in one pass.
///
/// # Errors
///
/// [`TraceFileError`] on malformed, empty or truncated input.
pub fn scan_trace_bytes(
    bytes: &[u8],
    materialize: Materialize,
) -> Result<TraceSummary, TraceFileError> {
    let mut scanner = Scanner::new(materialize);
    for chunk in bytes.chunks(READ_CHUNK) {
        scanner.feed(chunk)?;
    }
    scanner.finish()
}

/// [`scan_trace_bytes`] over a file, reading it in [`READ_CHUNK`]-sized
/// chunks — one read per file, O(chunk) memory unless materializing.
///
/// # Errors
///
/// [`TraceFileError`] on I/O failure or invalid contents.
pub fn read_trace_path(
    path: &Path,
    materialize: Materialize,
) -> Result<TraceSummary, TraceFileError> {
    let mut file = std::fs::File::open(path)?;
    let mut scanner = Scanner::new(materialize);
    let mut buf = vec![0u8; READ_CHUNK];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        scanner.feed(&buf[..n])?;
    }
    scanner.finish()
}

/// Writes `n` ops of `source` in the `text-ext` dialect (header + one
/// canonical `<bubbles> 0x<addr> <flags>` line per op). Lossless for
/// every stream; output is byte-stable under parse→re-export.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_ext(
    source: &mut dyn TraceSource,
    n: usize,
    mut out: impl Write,
) -> std::io::Result<()> {
    writeln!(out, "{TEXT_EXT_HEADER}")?;
    for _ in 0..n {
        let op = source.next_op();
        let flags = match (op.kind, op.dependent) {
            (MemKind::Load, false) => "L",
            (MemKind::Load, true) => "LD",
            (MemKind::Store, false) => "S",
            (MemKind::Store, true) => "SD",
        };
        writeln!(out, "{} 0x{:x} {}", op.bubbles, op.addr, flags)?;
    }
    Ok(())
}

/// Writes `n` ops of `source` as a `.dtrace` file (header + fixed
/// records). Lossless; output is byte-stable under parse→re-export.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_bin(
    source: &mut dyn TraceSource,
    n: usize,
    mut out: impl Write,
) -> std::io::Result<()> {
    out.write_all(&BIN_MAGIC)?;
    out.write_all(&(n as u64).to_le_bytes())?;
    for _ in 0..n {
        let op = source.next_op();
        encode_record(&op, &mut out)?;
    }
    Ok(())
}

/// Writes `n` ops of `source` in the chosen dialect (plain text uses the
/// lossy attachment convention of [`crate::trace_file::export`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export_dialect(
    source: &mut dyn TraceSource,
    n: usize,
    out: impl Write,
    dialect: TraceDialect,
) -> std::io::Result<()> {
    match dialect {
        TraceDialect::Text => crate::trace_file::export(source, n, out),
        TraceDialect::TextExt => export_ext(source, n, out),
        TraceDialect::Bin => export_bin(source, n, out),
    }
}

/// Converts a trace between dialects: parses `bytes` (any dialect,
/// strict) and re-emits the identical op stream in `to`. Conversions
/// between the lossless dialects (`text-ext` ↔ `bin`) round-trip
/// byte-stably: converting the output back reproduces the input exactly,
/// because both emitters are canonical. Converting *to* plain `text` uses
/// the lossy attachment convention.
///
/// Returns the source summary and the converted bytes.
///
/// # Errors
///
/// [`TraceFileError`] if `bytes` is invalid in its own dialect.
pub fn convert_bytes(
    bytes: &[u8],
    to: TraceDialect,
) -> Result<(TraceSummary, Vec<u8>), TraceFileError> {
    let mut summary = scan_trace_bytes(bytes, Materialize::All)?;
    let ops = summary.ops.take().expect("Materialize::All keeps ops");
    let n = ops.len();
    let mut src = CyclicTrace::new(ops);
    let mut out = Vec::new();
    export_dialect(&mut src, n, &mut out, to)?;
    Ok((summary, out))
}

/// An infinite cyclic [`TraceSource`] streaming a `.dtrace` file in
/// [`READ_CHUNK`]-sized chunks: memory stays O(chunk) however long the
/// trace is. Each full pass re-reads the header and re-folds the word
/// hash; on wrap the digest is checked against the hash the campaign
/// resolved, so a mid-campaign edit panics (naming the file) instead of
/// silently replaying different bytes under a stale fingerprint.
pub struct BinTraceSource {
    path: PathBuf,
    file: std::fs::File,
    count: u64,
    produced: u64,
    buf: Vec<u8>,
    pos: usize,
    hasher: Fnv128,
    expect_hash: u128,
}

impl std::fmt::Debug for BinTraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinTraceSource")
            .field("path", &self.path)
            .field("count", &self.count)
            .field("produced", &self.produced)
            .finish_non_exhaustive()
    }
}

impl BinTraceSource {
    /// Opens a `.dtrace` file for streaming replay, validating the header
    /// and the total length against the declared record count.
    /// `expect_hash` is the content hash resolution computed; it is
    /// re-verified at the end of every full pass.
    ///
    /// # Errors
    ///
    /// [`TraceFileError`] on I/O failure, a bad header, a zero-record
    /// file, or a length that does not match the header.
    pub fn open(path: impl Into<PathBuf>, expect_hash: u128) -> Result<Self, TraceFileError> {
        let path = path.into();
        let mut file = std::fs::File::open(&path)?;
        let mut hasher = Fnv128::new();
        let count = read_bin_header(&mut file, &mut hasher)?;
        let len = file.metadata()?.len();
        let expect_len = BIN_HEADER_LEN as u64 + count * BIN_RECORD_LEN as u64;
        if len < expect_len {
            return Err(TraceFileError::Truncated);
        }
        if len > expect_len {
            return Err(binary_err(
                expect_len,
                "bytes beyond the declared record count",
            ));
        }
        Ok(BinTraceSource {
            path,
            file,
            count,
            produced: 0,
            buf: Vec::new(),
            pos: 0,
            hasher,
            expect_hash,
        })
    }

    /// Records per full pass (the file's declared count).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Never true for an opened source (zero-record files are rejected).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest buffer this source will ever hold — the structural
    /// O(chunk) memory bound the benches assert.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity().max(READ_CHUNK)
    }

    fn refill(&mut self) {
        if self.produced == self.count {
            // End of a full pass: the accumulated word hash must still
            // match what resolution saw.
            assert!(
                self.hasher.finish() == self.expect_hash,
                "trace file {} changed while the campaign was running \
                 (content hash mismatch); re-run to pick up the new contents",
                self.path.display()
            );
            self.file.seek(SeekFrom::Start(0)).unwrap_or_else(|e| {
                panic!(
                    "trace file {}: rewind failed mid-campaign: {e}",
                    self.path.display()
                )
            });
            self.hasher = Fnv128::new();
            let count = read_bin_header(&mut self.file, &mut self.hasher).unwrap_or_else(|e| {
                panic!(
                    "trace file {} changed while the campaign was running: {e}",
                    self.path.display()
                )
            });
            assert!(
                count == self.count,
                "trace file {} changed while the campaign was running \
                 (record count {count} != {})",
                self.path.display(),
                self.count
            );
            self.produced = 0;
        }
        let remaining = (self.count - self.produced) * BIN_RECORD_LEN as u64;
        let n = remaining.min(READ_CHUNK as u64) as usize;
        self.buf.resize(n, 0);
        self.file.read_exact(&mut self.buf).unwrap_or_else(|e| {
            panic!(
                "trace file {} shrank or vanished while the campaign was \
                 running: {e}",
                self.path.display()
            )
        });
        self.hasher.update_words(&self.buf);
        self.pos = 0;
    }
}

/// Reads and validates a `.dtrace` header, folding it into `hasher`.
fn read_bin_header(file: &mut std::fs::File, hasher: &mut Fnv128) -> Result<u64, TraceFileError> {
    let mut header = [0u8; BIN_HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|_| TraceFileError::Truncated)?;
    if header[..BIN_MAGIC.len()] != BIN_MAGIC {
        return Err(binary_err(0, "bad magic (not a .dtrace file)"));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("header count"));
    if count == 0 {
        return Err(TraceFileError::Empty);
    }
    hasher.update_words(&header);
    Ok(count)
}

impl TraceSource for BinTraceSource {
    fn next_op(&mut self) -> TraceOp {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let rec = &self.buf[self.pos..self.pos + BIN_RECORD_LEN];
        let op = decode_record(rec).unwrap_or_else(|flags| {
            panic!(
                "trace file {} changed while the campaign was running \
                 (record {} has invalid flags {flags:#x})",
                self.path.display(),
                self.produced
            )
        });
        self.pos += BIN_RECORD_LEN;
        self.produced += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_file::FileTrace;

    fn ld(bubbles: u32, addr: u64) -> TraceOp {
        TraceOp {
            bubbles,
            kind: MemKind::Load,
            addr,
            dependent: false,
        }
    }

    fn st(bubbles: u32, addr: u64) -> TraceOp {
        TraceOp {
            bubbles,
            kind: MemKind::Store,
            addr,
            dependent: false,
        }
    }

    fn dep(mut op: TraceOp) -> TraceOp {
        op.dependent = true;
        op
    }

    /// A stream exercising every op shape the plain text format cannot
    /// express: leading stores, store bubbles, dependent loads and
    /// dependent stores.
    fn awkward_ops() -> Vec<TraceOp> {
        vec![
            st(7, 0x200),
            ld(3, 0x1000),
            dep(ld(0, 0x1040)),
            st(0, 0x2000),
            st(5, 0x2040),
            dep(st(2, 0x80)),
            ld(1_000_000, 0xdead_beef),
        ]
    }

    fn emit(ops: &[TraceOp], dialect: TraceDialect) -> Vec<u8> {
        let mut src = CyclicTrace::new(ops.to_vec());
        let mut out = Vec::new();
        export_dialect(&mut src, ops.len(), &mut out, dialect).unwrap();
        out
    }

    /// Scans with a pathological chunking (1, then 3, then 7, ... bytes)
    /// to exercise every carry path, asserting agreement with the
    /// whole-slice scan.
    fn scan_chunked(
        bytes: &[u8],
        materialize: Materialize,
    ) -> Result<TraceSummary, TraceFileError> {
        let whole = scan_trace_bytes(bytes, materialize);
        let mut scanner = Scanner::new(materialize);
        let sizes = [1usize, 3, 7, 16, 5, 64, 2];
        let mut pos = 0;
        let mut i = 0;
        let mut chunked = (|| {
            while pos < bytes.len() {
                let n = sizes[i % sizes.len()].min(bytes.len() - pos);
                i += 1;
                scanner.feed(&bytes[pos..pos + n])?;
                pos += n;
            }
            scanner.finish()
        })();
        match (&whole, &mut chunked) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.dialect, b.dialect);
                assert_eq!(a.entries, b.entries);
                assert_eq!(a.hash, b.hash);
                assert_eq!(a.ops, b.ops);
            }
            (Err(_), Err(_)) => {}
            _ => panic!("chunked and whole-slice scans disagree: {whole:?} vs {chunked:?}"),
        }
        whole
    }

    #[test]
    fn ext_and_bin_round_trip_awkward_streams_losslessly() {
        let ops = awkward_ops();
        for dialect in [TraceDialect::TextExt, TraceDialect::Bin] {
            let bytes = emit(&ops, dialect);
            let summary = scan_chunked(&bytes, Materialize::All).unwrap();
            assert_eq!(summary.dialect, dialect);
            assert_eq!(summary.entries, ops.len());
            assert_eq!(summary.bytes, bytes.len() as u64);
            assert_eq!(summary.ops.as_deref(), Some(&ops[..]), "{dialect}");
        }
    }

    #[test]
    fn plain_scan_agrees_with_the_legacy_strict_parser() {
        let text = b"# header\n3 0x1000 4096\n0 512\n\n7 0x40 0x80\n1 0x99\n";
        let summary = scan_chunked(text, Materialize::All).unwrap();
        assert_eq!(summary.dialect, TraceDialect::Text);
        let mut legacy = FileTrace::parse_bytes_strict(text).unwrap();
        let legacy_ops: Vec<TraceOp> = (0..legacy.len()).map(|_| legacy.next_op()).collect();
        assert_eq!(summary.entries, legacy_ops.len());
        assert_eq!(summary.ops.unwrap(), legacy_ops);
        // And the content hash is the campaign's byte-wise FNV fold.
        assert_eq!(summary.hash, hash_trace_bytes(TraceDialect::Text, text));
        let mut byte_fold = Fnv128::new();
        byte_fold.update(text);
        assert_eq!(summary.hash, byte_fold.finish());
    }

    #[test]
    fn dialect_labels_round_trip() {
        for d in [TraceDialect::Text, TraceDialect::TextExt, TraceDialect::Bin] {
            assert_eq!(TraceDialect::parse(d.label()), Some(d));
            assert_eq!(d.to_string(), d.label());
        }
        assert_eq!(TraceDialect::parse("binary"), None);
        assert!(TraceDialect::Bin.lossless() && TraceDialect::TextExt.lossless());
        assert!(!TraceDialect::Text.lossless());
        assert_eq!(TraceDialect::Bin.extension(), "dtrace");
        assert_eq!(TraceDialect::TextExt.extension(), "trace");
    }

    #[test]
    fn torn_tails_are_rejected_in_every_dialect() {
        let ops = awkward_ops();
        // Text-ext: strip the trailing newline.
        let bytes = emit(&ops, TraceDialect::TextExt);
        let torn = &bytes[..bytes.len() - 3];
        assert!(matches!(
            scan_chunked(torn, Materialize::No),
            Err(TraceFileError::Truncated)
        ));
        let plain = b"3 0x1000\n1 0x4";
        assert!(matches!(
            scan_chunked(plain, Materialize::No),
            Err(TraceFileError::Truncated)
        ));
        // Binary: any cut (mid-record or on a record boundary) is torn,
        // because the header pins the record count.
        let bytes = emit(&ops, TraceDialect::Bin);
        for cut in [
            bytes.len() - 5,
            bytes.len() - BIN_RECORD_LEN,
            BIN_HEADER_LEN,
            7,
        ] {
            assert!(
                matches!(
                    scan_chunked(&bytes[..cut], Materialize::No),
                    Err(TraceFileError::Truncated)
                ),
                "cut at {cut}"
            );
        }
        // Trailing garbage beyond the declared count is structural, too.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; BIN_RECORD_LEN]);
        assert!(matches!(
            scan_chunked(&padded, Materialize::No),
            Err(TraceFileError::Binary { .. })
        ));
    }

    #[test]
    fn invalid_records_are_rejected_with_their_location() {
        // Ext: a bad flags token.
        let bad = b"#!dsarp-trace v1\n3 0x40 L\n1 0x80 X\n";
        let err = scan_chunked(bad, Materialize::No).unwrap_err();
        assert!(
            matches!(&err, TraceFileError::Parse { line: 3, .. }),
            "{err}"
        );
        // An unknown header version must not silently parse as comments.
        let future = b"#!dsarp-trace v2\n3 0x40\n";
        assert!(matches!(
            scan_chunked(future, Materialize::No),
            Err(TraceFileError::Parse { line: 1, .. })
        ));
        // Bin: flip a high bit in record 1's flags field.
        let mut bytes = emit(&awkward_ops(), TraceDialect::Bin);
        let off = BIN_HEADER_LEN + BIN_RECORD_LEN + 15;
        bytes[off] ^= 0x80;
        let err = scan_chunked(&bytes, Materialize::No).unwrap_err();
        match err {
            TraceFileError::Binary { offset, ref what } => {
                assert_eq!(offset, (BIN_HEADER_LEN + BIN_RECORD_LEN + 12) as u64);
                assert!(what.contains("record 1"), "{what}");
            }
            other => panic!("expected Binary error, got {other}"),
        }
        // A zero-record binary file is empty, not torn.
        let mut hdr = BIN_MAGIC.to_vec();
        hdr.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            scan_chunked(&hdr, Materialize::No),
            Err(TraceFileError::Empty)
        ));
        assert!(matches!(
            scan_chunked(b"", Materialize::No),
            Err(TraceFileError::Empty)
        ));
        // Sub-magic-length files still parse as text.
        let tiny = b"1 2\n";
        let s = scan_chunked(tiny, Materialize::All).unwrap();
        assert_eq!((s.dialect, s.entries), (TraceDialect::Text, 1));
    }

    #[test]
    fn lossless_conversions_are_byte_stable() {
        let ops = awkward_ops();
        let ext = emit(&ops, TraceDialect::TextExt);
        let bin = emit(&ops, TraceDialect::Bin);
        // ext -> bin -> ext reproduces the canonical ext bytes exactly.
        let (s1, to_bin) = convert_bytes(&ext, TraceDialect::Bin).unwrap();
        assert_eq!(s1.dialect, TraceDialect::TextExt);
        assert_eq!(to_bin, bin);
        let (s2, back) = convert_bytes(&to_bin, TraceDialect::TextExt).unwrap();
        assert_eq!(s2.dialect, TraceDialect::Bin);
        assert_eq!(back, ext);
        // Plain text converts losslessly *into* the v1 dialects (its parsed
        // stream is the ground truth).
        let plain = b"3 0x1000 0x2000\n0 0x40\n".to_vec();
        let (s3, plain_bin) = convert_bytes(&plain, TraceDialect::Bin).unwrap();
        assert_eq!((s3.dialect, s3.entries), (TraceDialect::Text, 3));
        let round = scan_trace_bytes(&plain_bin, Materialize::All).unwrap();
        assert_eq!(
            round.ops.unwrap(),
            vec![ld(3, 0x1000), st(0, 0x2000), ld(0, 0x40)]
        );
    }

    #[test]
    fn materialize_modes_control_op_buffers() {
        let ops = awkward_ops();
        let bin = emit(&ops, TraceDialect::Bin);
        let ext = emit(&ops, TraceDialect::TextExt);
        assert!(scan_trace_bytes(&bin, Materialize::No)
            .unwrap()
            .ops
            .is_none());
        assert!(scan_trace_bytes(&bin, Materialize::TextOnly)
            .unwrap()
            .ops
            .is_none());
        assert!(scan_trace_bytes(&bin, Materialize::All)
            .unwrap()
            .ops
            .is_some());
        assert!(scan_trace_bytes(&ext, Materialize::TextOnly)
            .unwrap()
            .ops
            .is_some());
    }

    fn tmpfile(tag: &str, bytes: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join("dsarp-trace-v1-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{}.dtrace", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn bin_source_streams_cyclically_with_bounded_memory() {
        let ops = awkward_ops();
        let bytes = emit(&ops, TraceDialect::Bin);
        let hash = hash_trace_bytes(TraceDialect::Bin, &bytes);
        let path = tmpfile("stream", &bytes);
        let summary = read_trace_path(&path, Materialize::No).unwrap();
        assert_eq!(summary.hash, hash);
        let mut src = BinTraceSource::open(&path, hash).unwrap();
        assert_eq!(src.len(), ops.len() as u64);
        assert!(!src.is_empty());
        // Three full passes: the wrap re-reads and re-verifies the file.
        for pass in 0..3 {
            for (i, want) in ops.iter().enumerate() {
                assert_eq!(src.next_op(), *want, "pass {pass} op {i}");
            }
        }
        assert!(src.buffer_capacity() <= READ_CHUNK);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bin_source_wrap_detects_mid_campaign_edits() {
        let ops = awkward_ops();
        let bytes = emit(&ops, TraceDialect::Bin);
        let hash = hash_trace_bytes(TraceDialect::Bin, &bytes);
        let path = tmpfile("edit", &bytes);
        let mut src = BinTraceSource::open(&path, hash).unwrap();
        for _ in 0..ops.len() {
            src.next_op();
        }
        // Same-length edit: the wrap verifies the hash of the bytes it
        // just streamed, so the pass that reads the edited file is the
        // one whose completing wrap panics.
        let mut edited = bytes.clone();
        edited[BIN_HEADER_LEN] ^= 1;
        std::fs::write(&path, &edited).unwrap();
        for _ in 0..ops.len() {
            src.next_op();
        }
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| src.next_op()));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("changed while the campaign was running"),
            "{msg}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bin_source_open_rejects_structural_damage() {
        let bytes = emit(&awkward_ops(), TraceDialect::Bin);
        let hash = hash_trace_bytes(TraceDialect::Bin, &bytes);
        let torn = tmpfile("torn", &bytes[..bytes.len() - 4]);
        assert!(matches!(
            BinTraceSource::open(&torn, hash),
            Err(TraceFileError::Truncated)
        ));
        let mut garbled = bytes.clone();
        garbled[3] ^= 0xff;
        let bad = tmpfile("magic", &garbled);
        assert!(matches!(
            BinTraceSource::open(&bad, hash),
            Err(TraceFileError::Binary { offset: 0, .. })
        ));
        for p in [torn, bad] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn word_hash_changes_on_any_single_byte_flip() {
        let bytes = emit(&awkward_ops(), TraceDialect::Bin);
        let base = hash_trace_bytes(TraceDialect::Bin, &bytes);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert_ne!(
                hash_trace_bytes(TraceDialect::Bin, &flipped),
                base,
                "byte {i}"
            );
        }
    }

    #[test]
    fn shared_cyclic_trace_matches_cyclic_trace() {
        let ops = awkward_ops();
        let mut a = CyclicTrace::new(ops.clone());
        let mut b = crate::trace::SharedCyclicTrace::new(ops.clone().into());
        for _ in 0..2 * ops.len() + 3 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
