//! The instruction-trace abstraction feeding each core.
//!
//! A trace is an infinite stream of [`TraceOp`]s — the standard
//! `(bubble count, memory operation)` format used by trace-driven CPU
//! front ends. The `dsarp-workloads` crate provides statistical generators
//! that realize SPEC/STREAM/TPC/RandomAccess-like behaviour.

use serde::{Deserialize, Serialize};

/// Kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// A load: holds its window slot until data returns.
    Load,
    /// A store: retires immediately (write buffers), but still exercises the
    /// cache (allocation + dirtying) and MSHRs.
    Store,
}

/// One trace entry: `bubbles` non-memory instructions followed by one memory
/// operation at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Non-memory instructions preceding the memory operation. Use a huge
    /// value for compute-only phases.
    pub bubbles: u32,
    /// Load or store.
    pub kind: MemKind,
    /// Byte address touched (the core accesses the containing line).
    pub addr: u64,
    /// If `true`, this operation cannot issue until the previous load has
    /// completed (models pointer-chasing dependence, limiting MLP).
    pub dependent: bool,
}

/// An infinite instruction stream.
pub trait TraceSource {
    /// Produces the next trace entry. Must never end; wrap around or keep
    /// generating statistically.
    fn next_op(&mut self) -> TraceOp;
}

/// A fixed cyclic trace, convenient for tests.
#[derive(Debug, Clone)]
pub struct CyclicTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl CyclicTrace {
    /// Creates a trace repeating `ops` forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "cyclic trace needs at least one op");
        Self { ops, pos: 0 }
    }
}

impl TraceSource for CyclicTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

/// A cyclic trace over shared ops: many sources (alone + grid cells of
/// the same captured file) replay one parsed snapshot without cloning
/// the `Vec<TraceOp>` per job.
#[derive(Debug, Clone)]
pub struct SharedCyclicTrace {
    ops: std::sync::Arc<[TraceOp]>,
    pos: usize,
}

impl SharedCyclicTrace {
    /// Creates a trace repeating the shared `ops` forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: std::sync::Arc<[TraceOp]>) -> Self {
        assert!(!ops.is_empty(), "cyclic trace needs at least one op");
        Self { ops, pos: 0 }
    }
}

impl TraceSource for SharedCyclicTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_trace_wraps() {
        let a = TraceOp {
            bubbles: 1,
            kind: MemKind::Load,
            addr: 0,
            dependent: false,
        };
        let b = TraceOp {
            bubbles: 2,
            kind: MemKind::Store,
            addr: 64,
            dependent: false,
        };
        let mut t = CyclicTrace::new(vec![a, b]);
        assert_eq!(t.next_op(), a);
        assert_eq!(t.next_op(), b);
        assert_eq!(t.next_op(), a);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_cyclic_trace_panics() {
        let _ = CyclicTrace::new(vec![]);
    }
}
