//! Shared last-level cache: set-associative, writeback, write-allocate.
//!
//! Dirty evictions are the only source of DRAM writes in the paper's system
//! (§4.2.2: "DRAM writes are writebacks from the last-level cache"), which
//! is what gives write-refresh parallelization its batched write stream.

use serde::{Deserialize, Serialize};

/// LLC shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcParams {
    /// Total capacity in bytes (the paper: 512 KB × number of cores).
    pub capacity_bytes: usize,
    /// Associativity (16 in the paper).
    pub assoc: usize,
    /// Line size in bytes (64 in the paper).
    pub line_bytes: usize,
}

impl LlcParams {
    /// The paper's LLC for `cores` cores: 512 KB 16-way slice per core.
    pub fn paper_default(cores: usize) -> Self {
        Self {
            capacity_bytes: 512 * 1024 * cores,
            assoc: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.assoc * self.line_bytes)
    }
}

/// Outcome of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed; if the victim was dirty,
    /// its address must be written back to DRAM.
    Miss {
        /// Line-aligned address of the dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcStats {
    /// Hits served.
    pub hits: u64,
    /// Misses (fills from DRAM).
    pub misses: u64,
    /// Dirty evictions sent to DRAM.
    pub writebacks: u64,
}

impl LlcStats {
    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Per-way state other than the tag. Tags live in a separate dense array
/// (`Llc::tags`) so the hit scan — the hottest loop in the CPU model —
/// touches 16 contiguous `u64`s (two cache lines per set) instead of
/// striding across full way records.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Tag value no line can produce (addresses are < 2^58 lines); marks an
/// invalid way in the tag array so the hit scan needs no `valid` check.
const INVALID_TAG: u64 = u64::MAX;

/// The shared LLC. Addresses are hashed to sets by their line index, which
/// spreads each core's partitioned address space across all slices —
/// matching the "512 KB private cache-slice per core" organization.
#[derive(Debug, Clone)]
pub struct Llc {
    params: LlcParams,
    /// Way tags, set-major; `INVALID_TAG` for invalid ways.
    tags: Vec<u64>,
    ways: Vec<Way>,
    stats: LlcStats,
    tick: u64,
    /// `log2(line_bytes)` — the access path runs once per retired memory
    /// instruction, so the line/set math must be shifts and masks, not
    /// divisions by runtime parameters.
    line_shift: u32,
    set_mask: u64,
}

impl Llc {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a power-of-two set count or
    /// line size.
    pub fn new(params: LlcParams) -> Self {
        let sets = params.sets();
        assert!(
            sets.is_power_of_two(),
            "LLC set count must be a power of two, got {sets}"
        );
        assert!(
            params.line_bytes.is_power_of_two(),
            "LLC line size must be a power of two, got {}",
            params.line_bytes
        );
        Self {
            params,
            tags: vec![INVALID_TAG; sets * params.assoc],
            ways: vec![Way::default(); sets * params.assoc],
            stats: LlcStats::default(),
            tick: 0,
            line_shift: params.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Shape parameters.
    pub fn params(&self) -> &LlcParams {
        &self.params
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    /// Zeroes the counters (used after functional warmup).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }

    fn set_of(&self, line: u64) -> usize {
        // Mix the upper bits so strided streams spread across sets.
        let h = line ^ (line >> 13) ^ (line >> 29);
        (h & self.set_mask) as usize
    }

    /// Accesses the line containing `addr`; `is_store` marks it dirty.
    pub fn access(&mut self, addr: u64, is_store: bool) -> LlcResult {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let base = set * self.params.assoc;
        let tags = &self.tags[base..base + self.params.assoc];

        if let Some(i) = tags.iter().position(|&t| t == line) {
            let w = &mut self.ways[base + i];
            w.lru = self.tick;
            w.dirty |= is_store;
            self.stats.hits += 1;
            return LlcResult::Hit;
        }

        // Miss: choose an invalid way or the LRU victim.
        self.stats.misses += 1;
        let ways = &mut self.ways[base..base + self.params.assoc];
        let (i, victim) = ways
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru } else { 0 })
            .expect("associativity > 0");
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(self.tags[base + i] * self.params.line_bytes as u64)
        } else {
            None
        };
        *victim = Way {
            valid: true,
            dirty: is_store,
            lru: self.tick,
        };
        self.tags[base + i] = line;
        LlcResult::Miss { writeback }
    }

    /// Whether `addr`'s line is currently cached (for tests).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let base = set * self.params.assoc;
        self.tags[base..base + self.params.assoc].contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        // 4 sets x 2 ways x 64B = 512B.
        Llc::new(LlcParams {
            capacity_bytes: 512,
            assoc: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(matches!(
            c.access(0x1000, false),
            LlcResult::Miss { writeback: None }
        ));
        assert_eq!(c.access(0x1000, false), LlcResult::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = small();
        c.access(0x1000, false);
        assert_eq!(c.access(0x103f, false), LlcResult::Hit);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        // Find three lines mapping to the same set to force an eviction.
        let base = 0x1000u64;
        let set = {
            let probe = Llc::new(*c.params());
            probe.set_of(base / 64)
        };
        let mut same_set = vec![base];
        let mut a = base + 64;
        while same_set.len() < 3 {
            let probe = Llc::new(*c.params());
            if probe.set_of(a / 64) == set {
                same_set.push(a);
            }
            a += 64;
        }
        c.access(same_set[0], true); // dirty
        c.access(same_set[1], false);
        // Third fill to the same set evicts the LRU (the dirty first line).
        match c.access(same_set[2], false) {
            LlcResult::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, same_set[0]),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = small();
        c.access(0x2000, false);
        c.access(0x2000, true); // hit, now dirty
                                // Evict it by filling the set.
        let set = {
            let probe = Llc::new(*c.params());
            probe.set_of(0x2000 / 64)
        };
        let mut filled = 0;
        let mut a = 0x4000u64;
        let mut saw_writeback = false;
        while filled < 2 {
            let probe = Llc::new(*c.params());
            if probe.set_of(a / 64) == set {
                if let LlcResult::Miss { writeback: Some(w) } = c.access(a, false) {
                    assert_eq!(w, 0x2000);
                    saw_writeback = true;
                }
                filled += 1;
            }
            a += 64;
        }
        assert!(saw_writeback);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = small();
        c.access(0x0, false);
        let set0 = {
            let probe = Llc::new(*c.params());
            probe.set_of(0)
        };
        // Touch line 0 repeatedly while filling its set: it must survive.
        let mut a = 0x1000u64;
        let mut fills = 0;
        while fills < 4 {
            let probe = Llc::new(*c.params());
            if probe.set_of(a / 64) == set0 {
                c.access(0x0, false); // refresh LRU
                c.access(a, false);
                fills += 1;
            }
            a += 64;
        }
        assert!(c.contains(0x0));
    }

    #[test]
    fn miss_ratio_math() {
        let s = LlcStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(LlcStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn paper_default_shape() {
        let p = LlcParams::paper_default(8);
        assert_eq!(p.capacity_bytes, 4 * 1024 * 1024);
        assert_eq!(p.sets(), 4096);
    }
}
