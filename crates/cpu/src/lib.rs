//! Trace-driven multicore front end for the DSARP reproduction.
//!
//! Models the paper's processor side (Table 1): 8 cores at 4 GHz, 3-wide
//! issue, 128-entry instruction window, 8 MSHRs per core, and a shared
//! 16-way 64 B-line last-level cache (512 KB slice per core) whose dirty
//! evictions become the DRAM write stream.
//!
//! The abstraction level matches the front ends used with DRAMSim2 and
//! Ramulator: instruction traces are `(bubbles, memory-op)` pairs; non-memory
//! instructions retire from the window at the issue width, memory
//! instructions hold their window slot until the cache hierarchy answers.
//! This captures exactly what refresh interference perturbs — stalls on a
//! full window or exhausted MSHRs while a request waits behind a refreshing
//! bank.
//!
//! # Example
//!
//! ```
//! use dsarp_cpu::{AccessResult, Core, CoreParams, MemKind, MemoryInterface, TraceOp, TraceSource};
//!
//! /// A trace that never touches memory.
//! struct ComputeOnly;
//! impl TraceSource for ComputeOnly {
//!     fn next_op(&mut self) -> TraceOp {
//!         TraceOp { bubbles: 1_000_000, kind: MemKind::Load, addr: 0, dependent: false }
//!     }
//! }
//!
//! /// A memory system that always hits.
//! struct AlwaysHit;
//! impl MemoryInterface for AlwaysHit {
//!     fn access(&mut self, _core: usize, _addr: u64, _store: bool) -> AccessResult {
//!         AccessResult::Hit
//!     }
//! }
//!
//! let mut core = Core::new(0, CoreParams::paper_default(), Box::new(ComputeOnly));
//! let mut mem = AlwaysHit;
//! for _ in 0..1000 {
//!     core.step(&mut mem);
//! }
//! // A pure-compute trace retires at nearly the full issue width.
//! assert!(core.ipc() > 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod llc;
pub mod mshr;
pub mod trace;
pub mod trace_file;
pub mod trace_v1;

pub use crate::core::{Core, CoreIdle, CoreParams, CoreStats, StallKind};
pub use llc::{Llc, LlcParams, LlcResult, LlcStats};
pub use mshr::{MshrTable, ReqToken};
pub use trace::{CyclicTrace, MemKind, SharedCyclicTrace, TraceOp, TraceSource};
pub use trace_file::{FileTrace, TraceFileError};
pub use trace_v1::{
    read_trace_path, scan_trace_bytes, BinTraceSource, Materialize, TraceDialect, TraceSummary,
};

/// Result of asking the memory hierarchy for a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// LLC hit: data available after the LLC hit latency.
    Hit,
    /// LLC miss: a DRAM request was created; [`Core::complete`] will be
    /// called with this token when the line arrives.
    Miss(ReqToken),
    /// The memory system cannot accept the request right now (queue full).
    /// The core must retry next cycle.
    Busy,
}

/// The memory hierarchy as seen by one core: the full system glue
/// (LLC + memory controllers) implements this in the `dsarp-sim` crate.
pub trait MemoryInterface {
    /// Requests the cache line containing `addr` on behalf of `core`.
    /// `is_store` marks the line dirty on fill/hit.
    fn access(&mut self, core: usize, addr: u64, is_store: bool) -> AccessResult;
}
