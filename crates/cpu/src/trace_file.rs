//! Trace file I/O in the Ramulator CPU-trace text format.
//!
//! Each line is `<bubbles> <read-addr> [<write-addr>]`:
//! `bubbles` non-memory instructions, then a load of `read-addr`; if a
//! third column is present, a store to `write-addr` follows the load.
//! Comment lines start with `#`. This lets the simulator consume traces
//! captured elsewhere (or exchange its synthetic streams with Ramulator-
//! based setups), instead of only statistical generators.

use crate::trace::{MemKind, TraceOp, TraceSource};
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and content).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending text.
        text: String,
    },
    /// The file contained no trace entries.
    Empty,
    /// The file ends mid-record: a text file without a trailing newline,
    /// or a `.dtrace` file shorter than its header's record count — it
    /// was torn by a crashed or still-running writer. Rejected by the
    /// strict parser because the cut can leave a *shorter but still
    /// parseable* final line — silently replaying it would be a wrong
    /// simulation, not an error.
    Truncated,
    /// A malformed `.dtrace` structure (bad magic, invalid record flags,
    /// or bytes beyond the declared record count).
    Binary {
        /// Byte offset of the fault.
        offset: u64,
        /// What was wrong there.
        what: String,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceFileError::Parse { line, text } => {
                write!(f, "malformed trace line {line}: `{text}`")
            }
            TraceFileError::Empty => write!(f, "trace file has no entries"),
            TraceFileError::Truncated => {
                write!(f, "trace file is truncated (torn mid-record tail)")
            }
            TraceFileError::Binary { offset, what } => {
                write!(f, "malformed binary trace at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// A trace loaded from a file, replayed cyclically (the standard convention
/// for fixed-length trace files driving longer simulations).
#[derive(Debug, Clone)]
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

fn parse_addr(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

impl FileTrace {
    /// Parses a Ramulator-format trace from a reader.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError`] on I/O failures, malformed lines, or an
    /// empty trace.
    pub fn parse(reader: impl BufRead) -> Result<Self, TraceFileError> {
        let mut ops = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let mut toks = text.split_whitespace();
            let err = || TraceFileError::Parse {
                line: i + 1,
                text: text.to_string(),
            };
            let bubbles: u32 = toks.next().and_then(|t| t.parse().ok()).ok_or_else(err)?;
            let rd = toks.next().and_then(parse_addr).ok_or_else(err)?;
            ops.push(TraceOp {
                bubbles,
                kind: MemKind::Load,
                addr: rd,
                dependent: false,
            });
            if let Some(tok) = toks.next() {
                let wr = parse_addr(tok).ok_or_else(err)?;
                ops.push(TraceOp {
                    bubbles: 0,
                    kind: MemKind::Store,
                    addr: wr,
                    dependent: false,
                });
            }
            if toks.next().is_some() {
                return Err(err());
            }
        }
        if ops.is_empty() {
            return Err(TraceFileError::Empty);
        }
        Ok(Self { ops, pos: 0 })
    }

    /// Parses raw file bytes, additionally rejecting a truncated tail: a
    /// non-empty input whose final byte is not `\n` was cut mid-line
    /// (crashed writer, partial copy), and the cut can leave a shorter
    /// but still parseable address — a silently *wrong* trace. The
    /// campaign layer loads traces through this.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Truncated`] for a torn tail, otherwise as
    /// [`FileTrace::parse`].
    pub fn parse_bytes_strict(bytes: &[u8]) -> Result<Self, TraceFileError> {
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            return Err(TraceFileError::Truncated);
        }
        Self::parse(bytes)
    }

    /// Loads a trace file from disk.
    ///
    /// # Errors
    ///
    /// See [`FileTrace::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let f = std::fs::File::open(path)?;
        Self::parse(std::io::BufReader::new(f))
    }

    /// Number of trace entries (stores count separately).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true for a parsed trace).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

/// Writes `n` entries of any [`TraceSource`] in the Ramulator text format.
///
/// A zero-bubble store directly following a load is attached to that
/// load's line as the third column (the format's two-address convention),
/// so streams produced by [`FileTrace::parse`] round-trip to an identical
/// op stream. A store that cannot be attached (leading, repeated, or
/// carrying bubbles) has no exact representation and is written as a
/// self-addressed load+store line, which parses back as a zero-bubble
/// load/store pair at its address.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn export(source: &mut dyn TraceSource, n: usize, mut out: impl Write) -> std::io::Result<()> {
    writeln!(
        out,
        "# dsarp trace export, Ramulator CPU format: bubbles rd_addr [wr_addr]"
    )?;
    let mut pending: Option<TraceOp> = None;
    for _ in 0..n {
        let op = source.next_op();
        match op.kind {
            MemKind::Load => {
                if let Some(ld) = pending.take() {
                    writeln!(out, "{} 0x{:x}", ld.bubbles, ld.addr)?;
                }
                pending = Some(op);
            }
            MemKind::Store => {
                if op.bubbles == 0 {
                    if let Some(ld) = pending.take() {
                        writeln!(out, "{} 0x{:x} 0x{:x}", ld.bubbles, ld.addr, op.addr)?;
                        continue;
                    }
                }
                if let Some(ld) = pending.take() {
                    writeln!(out, "{} 0x{:x}", ld.bubbles, ld.addr)?;
                }
                writeln!(out, "{} 0x{:x} 0x{:x}", op.bubbles, op.addr, op.addr)?;
            }
        }
    }
    if let Some(ld) = pending.take() {
        writeln!(out, "{} 0x{:x}", ld.bubbles, ld.addr)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_loads_and_stores() {
        let text = "# comment\n3 0x1000\n0 4096 0x2000\n\n7 0x40\n";
        let t = FileTrace::parse(std::io::Cursor::new(text)).unwrap();
        assert_eq!(t.len(), 4); // 3 loads + 1 store
        let mut t = t;
        let a = t.next_op();
        assert_eq!((a.bubbles, a.addr, a.kind), (3, 0x1000, MemKind::Load));
        let b = t.next_op();
        assert_eq!((b.bubbles, b.addr, b.kind), (0, 4096, MemKind::Load));
        let c = t.next_op();
        assert_eq!((c.bubbles, c.addr, c.kind), (0, 0x2000, MemKind::Store));
        let d = t.next_op();
        assert_eq!(d.addr, 0x40);
        // Wraps around.
        assert_eq!(t.next_op().addr, 0x1000);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["xyz 0x10", "3", "1 0x10 0x20 0x30", "1 zz"] {
            let e = FileTrace::parse(std::io::Cursor::new(bad)).unwrap_err();
            assert!(
                matches!(e, TraceFileError::Parse { line: 1, .. }),
                "{bad}: {e}"
            );
        }
    }

    #[test]
    fn rejects_empty() {
        let e = FileTrace::parse(std::io::Cursor::new("# only comments\n")).unwrap_err();
        assert!(matches!(e, TraceFileError::Empty));
    }

    fn ld(bubbles: u32, addr: u64) -> TraceOp {
        TraceOp {
            bubbles,
            kind: MemKind::Load,
            addr,
            dependent: false,
        }
    }

    fn st(bubbles: u32, addr: u64) -> TraceOp {
        TraceOp {
            bubbles,
            kind: MemKind::Store,
            addr,
            dependent: false,
        }
    }

    fn collect(t: &mut FileTrace) -> Vec<TraceOp> {
        (0..t.len()).map(|_| t.next_op()).collect()
    }

    fn roundtrip(ops: &[TraceOp]) -> Vec<TraceOp> {
        let mut src = crate::trace::CyclicTrace::new(ops.to_vec());
        let mut buf = Vec::new();
        export(&mut src, ops.len(), &mut buf).unwrap();
        collect(&mut FileTrace::parse(std::io::Cursor::new(buf)).unwrap())
    }

    #[test]
    fn export_import_roundtrip_is_identity_for_conforming_streams() {
        // Zero-bubble stores following loads are exactly the streams the
        // Ramulator format can express; write -> read must be identical.
        let ops = vec![
            ld(5, 0x100),
            st(0, 0x200),
            ld(0, 0x40),
            ld(9, 0x1000),
            st(0, 0x1040),
            ld(2, 0x80),
        ];
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn export_import_roundtrip_long_synthetic_stream() {
        // A deterministic pseudo-random format-conforming stream.
        let mut state = 0x2014_5EEDu64;
        let mut ops = Vec::new();
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (state >> 20) & !63;
            let bubbles = (state >> 7) as u32 % 50;
            ops.push(ld(bubbles, addr));
            if state.is_multiple_of(3) {
                ops.push(st(0, addr ^ 0x40));
            }
        }
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn parse_export_parse_is_idempotent() {
        // Arbitrary parsed streams re-export to the same stream even when
        // the original text used mixed radix and comments.
        let text = "# header\n3 0x1000 4096\n0 512\n7 0x40 0x80\n1 0x99\n";
        let mut first = FileTrace::parse(std::io::Cursor::new(text)).unwrap();
        let ops = collect(&mut first);
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn unattachable_stores_fall_back_to_paired_lines() {
        // A leading store and a store with bubbles cannot be represented
        // exactly; they become zero-bubble load+store pairs at their
        // address.
        let ops = vec![st(0, 0x200), ld(1, 0x40), st(3, 0x300)];
        let got = roundtrip(&ops);
        assert_eq!(
            got,
            vec![
                ld(0, 0x200),
                st(0, 0x200),
                ld(1, 0x40),
                ld(3, 0x300),
                st(0, 0x300)
            ]
        );
    }

    #[test]
    fn strict_parse_rejects_torn_tails_lenient_parse_does_not() {
        // Cutting `1 0x4000\n...` anywhere mid-line can leave `1 0x4`,
        // which still parses — to a different address. The strict parser
        // refuses the whole file instead.
        let torn = b"3 0x1000\n1 0x4";
        assert!(matches!(
            FileTrace::parse_bytes_strict(torn),
            Err(TraceFileError::Truncated)
        ));
        // The lenient reader accepts it (documented Ramulator-compat
        // behaviour); the strict one is what campaigns use.
        assert_eq!(FileTrace::parse(&torn[..]).unwrap().len(), 2);
        let whole = b"3 0x1000\n1 0x4000\n";
        assert_eq!(FileTrace::parse_bytes_strict(whole).unwrap().len(), 2);
        assert!(matches!(
            FileTrace::parse_bytes_strict(b""),
            Err(TraceFileError::Empty)
        ));
    }

    #[test]
    fn rejects_zero_byte_file() {
        let e = FileTrace::parse(std::io::Cursor::new("")).unwrap_err();
        assert!(matches!(e, TraceFileError::Empty));
        assert!(e.to_string().contains("no entries"));
    }

    #[test]
    fn load_from_disk() {
        let dir = std::env::temp_dir().join("dsarp_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        std::fs::write(&path, "1 0x40\n2 0x80 0xc0\n").unwrap();
        let t = FileTrace::load(&path).unwrap();
        assert_eq!(t.len(), 3);
        assert!(FileTrace::load(dir.join("missing.trace")).is_err());
    }
}
