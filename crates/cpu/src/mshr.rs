//! Miss-status holding registers (MSHRs): per-core outstanding-miss tracking
//! with same-line merging.

/// Identifies one in-flight DRAM request; allocated by the system glue,
/// returned to the core via [`crate::AccessResult::Miss`].
pub type ReqToken = u64;

#[derive(Debug, Clone)]
struct Entry {
    line: u64,
    token: ReqToken,
    /// Window sequence numbers waiting on this line.
    waiters: Vec<u64>,
}

/// A per-core MSHR table with a fixed number of entries (8 in the paper).
#[derive(Debug, Clone)]
pub struct MshrTable {
    entries: Vec<Option<Entry>>,
}

impl MshrTable {
    /// Creates a table with `n` registers.
    pub fn new(n: usize) -> Self {
        Self {
            entries: vec![None; n],
        }
    }

    /// Number of allocated registers.
    pub fn occupied(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether every register is allocated.
    pub fn is_full(&self) -> bool {
        self.entries.iter().all(Option::is_some)
    }

    /// Whether an in-flight entry for `line` exists (a [`Self::merge`] for
    /// it would succeed). Non-mutating probe for the idle detector.
    pub fn contains_line(&self, line: u64) -> bool {
        self.entries.iter().flatten().any(|e| e.line == line)
    }

    /// Finds the in-flight entry for `line`, if any, and attaches `waiter`.
    /// Returns `true` when the miss was merged.
    pub fn merge(&mut self, line: u64, waiter: Option<u64>) -> bool {
        for e in self.entries.iter_mut().flatten() {
            if e.line == line {
                if let Some(w) = waiter {
                    e.waiters.push(w);
                }
                return true;
            }
        }
        false
    }

    /// Allocates a register for `line` with request `token`.
    /// Returns `false` when the table is full (nothing is changed).
    pub fn allocate(&mut self, line: u64, token: ReqToken, waiter: Option<u64>) -> bool {
        debug_assert!(
            !self.entries.iter().flatten().any(|e| e.line == line),
            "allocate called for a line already in flight; use merge"
        );
        for slot in &mut self.entries {
            if slot.is_none() {
                *slot = Some(Entry {
                    line,
                    token,
                    waiters: waiter.into_iter().collect(),
                });
                return true;
            }
        }
        false
    }

    /// Completes the request `token`: frees the register and returns the
    /// waiting window sequence numbers. Returns `None` if the token is
    /// unknown (e.g. a store-only fill with no waiters was already freed).
    pub fn complete(&mut self, token: ReqToken) -> Option<Vec<u64>> {
        for slot in &mut self.entries {
            if slot.as_ref().is_some_and(|e| e.token == token) {
                let e = slot.take().expect("checked above");
                return Some(e.waiters);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrTable::new(2);
        assert!(m.allocate(0x100, 1, Some(10)));
        assert!(m.allocate(0x200, 2, None));
        assert!(m.is_full());
        assert!(!m.allocate(0x300, 3, None));
        assert_eq!(m.occupied(), 2);
    }

    #[test]
    fn merge_attaches_waiters() {
        let mut m = MshrTable::new(2);
        m.allocate(0x100, 1, Some(10));
        assert!(m.merge(0x100, Some(11)));
        assert!(!m.merge(0x999, None));
        let waiters = m.complete(1).unwrap();
        assert_eq!(waiters, vec![10, 11]);
        assert_eq!(m.occupied(), 0);
    }

    #[test]
    fn complete_unknown_token_is_none() {
        let mut m = MshrTable::new(1);
        m.allocate(0x100, 7, None);
        assert!(m.complete(8).is_none());
        assert_eq!(m.complete(7).unwrap(), Vec::<u64>::new());
    }
}
